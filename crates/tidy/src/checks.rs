//! The repo-specific checks.
//!
//! Every check consumes the [`SourceFile`]/[`Manifest`] models and emits
//! [`Diagnostic`]s in the `file:line: tidy(<check-id>): message` format.
//! Checks that inspect source text only ever look at the lexed *code*
//! view, so nothing fires inside strings or comments.
//!
//! Checks emit *raw* findings without consulting `tidy:allow` comments;
//! the runner filters suppressed findings centrally so it can also tell
//! which suppressions were actually used (a `tidy:allow` that suppresses
//! nothing is itself a finding, `allow-dangling`).

use std::fmt;

use crate::manifest::Manifest;
use crate::source::{FileRole, SourceFile};

/// Identifier of one check family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckId {
    /// Crate dependency DAG conformance.
    Layering,
    /// No `unwrap`/`expect`/`panic!`/`todo!` in library code.
    Panic,
    /// No `std::sync` locks where the vendored `parking_lot` is mandated.
    LockStd,
    /// No lock guard held across step/observer/sink callbacks.
    LockSpan,
    /// Metrics calls must sit behind an `is_enabled()` guard.
    TelemetryGuard,
    /// No ambient clocks outside telemetry/bench.
    Time,
    /// Tabs, trailing whitespace, `dbg!`, unreferenced `TODO`s, lint headers.
    Hygiene,
    /// No cycle in the interprocedural lock-order graph.
    LockOrder,
    /// Every `Ordering::*` use matches the field's declared discipline.
    AtomicOrdering,
    /// No guard held across a blocking call (send/recv/join/file I/O).
    GuardBlocking,
    /// Every `tidy:allow` must suppress at least one finding.
    AllowDangling,
}

/// All checks, in reporting order.
pub const ALL_CHECKS: [CheckId; 11] = [
    CheckId::Layering,
    CheckId::Panic,
    CheckId::LockStd,
    CheckId::LockSpan,
    CheckId::TelemetryGuard,
    CheckId::Time,
    CheckId::Hygiene,
    CheckId::LockOrder,
    CheckId::AtomicOrdering,
    CheckId::GuardBlocking,
    CheckId::AllowDangling,
];

impl CheckId {
    /// The stable id used on the CLI, in ratchet files, and in
    /// `tidy:allow(...)` comments.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Layering => "layering",
            Self::Panic => "panic",
            Self::LockStd => "lock-std",
            Self::LockSpan => "lock-span",
            Self::TelemetryGuard => "telemetry-guard",
            Self::Time => "time",
            Self::Hygiene => "hygiene",
            Self::LockOrder => "lock-order",
            Self::AtomicOrdering => "atomic-ordering",
            Self::GuardBlocking => "guard-blocking",
            Self::AllowDangling => "allow-dangling",
        }
    }

    /// Parses a check id as written on the CLI.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        ALL_CHECKS.into_iter().find(|c| c.as_str() == s)
    }

    /// One-line description for `--list-checks`.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Self::Layering => "crate dependency DAG matches the documented architecture",
            Self::Panic => "no unwrap()/expect()/panic!/todo! in library code",
            Self::LockStd => "no std::sync::Mutex/RwLock where parking_lot is mandated",
            Self::LockSpan => "no lock guard held across step/observer/sink callbacks",
            Self::TelemetryGuard => "metrics calls sit behind an is_enabled() guard",
            Self::Time => "no Instant::now()/SystemTime outside telemetry and bench",
            Self::Hygiene => "tabs, trailing whitespace, dbg!, TODO refs, lint headers",
            Self::LockOrder => "no cycle in the interprocedural lock-order graph",
            Self::AtomicOrdering => "atomic Ordering uses match the declared per-field discipline",
            Self::GuardBlocking => "no guard held across a blocking call (send/recv/join/file I/O)",
            Self::AllowDangling => "every tidy:allow suppresses at least one finding",
        }
    }
}

impl fmt::Display for CheckId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, displayed as `file:line: tidy(<check>): message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The check that fired.
    pub check: CheckId,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: tidy({}): {}",
            self.path, self.line, self.check, self.message
        )
    }
}

/// Internal crates (prefix match for `smartflux`) and their permitted
/// internal dependencies — the documented architecture. Crates absent from
/// this table may depend on every internal crate (leaf consumers).
const LAYERING: [(&str, &[&str]); 13] = [
    ("smartflux-telemetry", &[]),
    ("smartflux-obs", &["smartflux-telemetry"]),
    ("smartflux-datastore", &[]),
    ("smartflux-ml", &[]),
    ("smartflux-tidy", &[]),
    (
        "smartflux-wms",
        &["smartflux-datastore", "smartflux-telemetry"],
    ),
    (
        "smartflux-durability",
        &["smartflux-datastore", "smartflux-telemetry"],
    ),
    (
        "smartflux",
        &[
            "smartflux-datastore",
            "smartflux-wms",
            "smartflux-ml",
            "smartflux-telemetry",
            "smartflux-durability",
        ],
    ),
    (
        "smartflux-net",
        &[
            "smartflux",
            "smartflux-obs",
            "smartflux-telemetry",
            "smartflux-wms",
            "smartflux-datastore",
            "smartflux-durability",
        ],
    ),
    (
        "smartflux-sim",
        &[
            "smartflux",
            "smartflux-wms",
            "smartflux-datastore",
            "smartflux-durability",
            "smartflux-telemetry",
            "smartflux-net",
        ],
    ),
    // The root package, workloads and bench may depend on everything.
    ("smartflux-repro", LEAF),
    ("smartflux-workloads", LEAF),
    ("smartflux-bench", LEAF),
];

const LEAF: &[&str] = &["*"];

fn is_internal(name: &str) -> bool {
    name == "smartflux" || name.starts_with("smartflux-")
}

/// Checks one manifest against the layering table. `vendored` marks
/// `vendor/*` stand-ins, which must never depend on internal crates.
#[must_use]
pub fn check_layering(manifest: &Manifest, vendored: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let path = manifest.path.display().to_string();
    let name = manifest.name.clone().unwrap_or_default();
    for dep in &manifest.deps {
        if !is_internal(&dep.name) {
            continue;
        }
        // Dev-dependencies may reach wider (tests want the full stack);
        // cargo itself rejects the cycles that would actually hurt.
        if dep.dev {
            continue;
        }
        let allowed: Option<&[&str]> = if vendored {
            Some(&[]) // vendor stand-ins: no internal deps at all
        } else {
            LAYERING
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, a)| *a)
                .or(Some(LEAF)) // leaf consumers (workloads, bench, examples)
        };
        let allowed = allowed.unwrap_or(&[]);
        if allowed == LEAF || allowed.contains(&dep.name.as_str()) {
            continue;
        }
        out.push(Diagnostic {
            path: path.clone(),
            line: dep.line,
            check: CheckId::Layering,
            message: format!(
                "`{name}` must not depend on `{}` (documented layering: {})",
                dep.name,
                if allowed.is_empty() {
                    "no internal dependencies".to_owned()
                } else {
                    allowed.join(", ")
                }
            ),
        });
    }
    out
}

const PANIC_TOKENS: [&str; 5] = [".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"];

/// Library code must not contain panicking shortcuts (`tests`, benches,
/// bins and `#[cfg(test)]` modules are exempt).
#[must_use]
pub fn check_panic(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if file.role != FileRole::Lib {
        return out;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        let ln = idx + 1;
        if file.is_test_line(ln) {
            continue;
        }
        for token in PANIC_TOKENS {
            if let Some(pos) = line.code.find(token) {
                // `debug_assert!`/`assert!` are fine; make sure `panic!`
                // does not match inside a wider identifier.
                if token.ends_with('!')
                    && line.code[..pos]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    continue;
                }
                out.push(Diagnostic {
                    path: file.path.display().to_string(),
                    line: ln,
                    check: CheckId::Panic,
                    message: format!(
                        "`{token}` in library code — propagate a Result or annotate \
                         `// tidy:allow(panic): <reason>`",
                        token = token.trim_end_matches('(')
                    ),
                });
                break; // one diagnostic per line is enough
            }
        }
    }
    out
}

/// Crates that must use the vendored `parking_lot` instead of `std::sync`
/// locks.
pub const PARKING_LOT_CRATES: [&str; 8] = [
    "smartflux",
    "smartflux-wms",
    "smartflux-datastore",
    "smartflux-telemetry",
    "smartflux-durability",
    "smartflux-obs",
    "smartflux-net",
    "smartflux-sim",
];

/// Flags `std::sync::Mutex`/`RwLock` usage in parking_lot crates.
#[must_use]
pub fn check_lock_std(file: &SourceFile, crate_name: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !PARKING_LOT_CRATES.contains(&crate_name) || file.role != FileRole::Lib {
        return out;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        let ln = idx + 1;
        if file.is_test_line(ln) {
            continue;
        }
        let code = &line.code;
        let hit = code.contains("std::sync::Mutex")
            || code.contains("std::sync::RwLock")
            || (code.contains("std::sync::") && {
                let after = &code[code.find("std::sync::").unwrap_or(0)..];
                after.contains("Mutex") || after.contains("RwLock")
            });
        if hit {
            out.push(Diagnostic {
                path: file.path.display().to_string(),
                line: ln,
                check: CheckId::LockStd,
                message: format!(
                    "`{crate_name}` must use the vendored `parking_lot` locks, not `std::sync`"
                ),
            });
        }
    }
    out
}

/// Method calls that hand control to user/step/observer/sink code; holding
/// a lock guard across one risks re-entrancy deadlocks and unbounded lock
/// hold times mid-wave.
const CALLBACK_TOKENS: [&str; 12] = [
    ".execute(",
    ".on_write(",
    ".on_op(",
    ".begin_wave(",
    ".end_wave(",
    ".should_trigger(",
    ".step_completed(",
    ".step_skipped(",
    ".step_deferred(",
    ".step_failed(",
    ".record(",
    ".flush(",
];

/// Crates whose lib code is checked for guards spanning callbacks.
pub const LOCK_SPAN_CRATES: [&str; 3] = ["smartflux", "smartflux-wms", "smartflux-datastore"];

fn guard_binding(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    // Only a chain *ending* in the acquire call binds a guard;
    // `let v = m.lock().get(k);` drops its temporary at the semicolon.
    let end = code.trim_end();
    if !(end.ends_with(".lock();") || end.ends_with(".read();") || end.ends_with(".write();")) {
        return None;
    }
    let name_end = rest.find(['=', ':'])?;
    let name = rest[..name_end]
        .trim()
        .trim_start_matches("mut ")
        .trim()
        .to_owned();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    Some(name)
}

/// Flags lock guards that stay live across a callback invocation: either a
/// `let g = x.lock();` binding whose scope contains a callback call, a
/// `for x in y.lock()...` loop (the guard temporary lives for the whole
/// loop body), or a single-statement chain `x.lock().callback(...)`.
#[must_use]
pub fn check_lock_span(file: &SourceFile, crate_name: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !LOCK_SPAN_CRATES.contains(&crate_name) || file.role != FileRole::Lib {
        return out;
    }
    let n = file.lines.len();
    let diag = |ln: usize, what: &str| Diagnostic {
        path: file.path.display().to_string(),
        line: ln,
        check: CheckId::LockSpan,
        message: format!(
            "{what} — drop or scope the guard before handing control to \
             step/observer/sink code"
        ),
    };

    for idx in 0..n {
        let ln = idx + 1;
        if file.is_test_line(ln) {
            continue;
        }
        let code = &file.lines[idx].code;

        // Detection 1 + 2: a named guard binding, or a `for` loop whose
        // iterator expression keeps the guard temporary alive for the body.
        let has_lock_call =
            code.contains(".lock()") || code.contains(".read()") || code.contains(".write()");
        let binding = guard_binding(code);
        let for_loop = code.trim_start().starts_with("for ") && has_lock_call;
        if binding.is_some() || for_loop {
            let scope_depth = file.depth_at(ln);
            for j in idx + 1..n {
                let jln = j + 1;
                let d = file.depth_at(jln);
                // A `for` guard temporary dies when the loop body closes; a
                // named binding lives to the end of its enclosing block.
                let live = if for_loop {
                    d > scope_depth
                } else {
                    d >= scope_depth
                };
                if !live {
                    break;
                }
                let jcode = &file.lines[j].code;
                if let Some(name) = &binding {
                    if jcode.contains(&format!("drop({name})")) {
                        break;
                    }
                }
                if CALLBACK_TOKENS.iter().any(|t| jcode.contains(t)) {
                    out.push(diag(
                        jln,
                        if for_loop {
                            "callback invoked while the loop's lock guard temporary is live"
                        } else {
                            "callback invoked while a lock guard is in scope"
                        },
                    ));
                }
            }
        }

        // Detection 3: `.lock().callback(...)` single-statement chains.
        for acquire in [".lock().", ".read().", ".write()."] {
            if let Some(pos) = code.find(acquire) {
                let after = &code[pos + acquire.len() - 1..]; // keep the dot
                if CALLBACK_TOKENS.iter().any(|t| after.starts_with(t)) {
                    out.push(diag(ln, "callback invoked directly on a fresh lock guard"));
                    break;
                }
            }
        }
    }
    out
}

/// Crates whose telemetry call sites must be guard-checked.
pub const TELEMETRY_GUARD_CRATES: [&str; 7] = [
    "smartflux",
    "smartflux-wms",
    "smartflux-datastore",
    "smartflux-durability",
    "smartflux-obs",
    "smartflux-net",
    "smartflux-sim",
];

const METRIC_TOKENS: [&str; 3] = [".counter(", ".histogram(", ".gauge("];

/// Metrics registry calls in hot-path crates must be behind an
/// `is_enabled()` guard (either a wrapping `if`, or an early `return`),
/// so the disabled path costs one atomic load. `Telemetry::span` and
/// `Telemetry::journal` check the flag internally and are exempt.
#[must_use]
pub fn check_telemetry_guard(file: &SourceFile, crate_name: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !TELEMETRY_GUARD_CRATES.contains(&crate_name) || file.role != FileRole::Lib {
        return out;
    }
    // `if`-blocks whose condition contains is_enabled(): lines strictly
    // inside are guarded. A negated early-return form guards the rest of
    // the enclosing block.
    let mut if_guards: Vec<usize> = Vec::new(); // open-depth stack
    let mut early_guards: Vec<usize> = Vec::new(); // active-while depth >= d
    let mut pending_if: Option<(usize, bool)> = None; // (depth, negated)
    let mut negated_block: Option<(usize, bool)> = None; // (depth, saw return)

    for (idx, line) in file.lines.iter().enumerate() {
        let ln = idx + 1;
        let code = &line.code;
        let depth = file.depth_at(ln);

        early_guards.retain(|&d| depth >= d);
        if_guards.retain(|&d| depth > d);

        // A negated early-return block protects the remainder of its
        // enclosing scope once control is back at the `if`'s depth.
        if let Some((d, true)) = negated_block {
            if depth == d {
                early_guards.push(d);
                negated_block = None;
            }
        }

        // Treat a same-line `is_enabled()` as a guard (single-line bodies).
        let guarded =
            !if_guards.is_empty() || !early_guards.is_empty() || code.contains("is_enabled()");
        if !file.is_test_line(ln) && !guarded {
            for token in METRIC_TOKENS {
                if code.contains(token) {
                    out.push(Diagnostic {
                        path: file.path.display().to_string(),
                        line: ln,
                        check: CheckId::TelemetryGuard,
                        message: format!(
                            "`{}` call outside an `is_enabled()` guard — the disabled \
                             path must cost one atomic load",
                            token.trim_start_matches('.').trim_end_matches('(')
                        ),
                    });
                    break;
                }
            }
        }

        // Track guard structure *after* checking the current line: the
        // `if ...is_enabled()` line itself is not guarded, its body is.
        if code.trim_start().starts_with("if ") && code.contains("is_enabled()") {
            let bang = code.find('!');
            let en = code.find("is_enabled()").unwrap_or(0);
            let negated = bang.is_some_and(|b| b < en);
            pending_if = Some((depth, negated));
        }
        if code.contains('{') {
            if let Some((d, negated)) = pending_if.take() {
                if negated {
                    negated_block = Some((d, false));
                } else {
                    if_guards.push(d);
                }
            }
        }
        if let Some((_, saw_return)) = &mut negated_block {
            if code.contains("return") {
                *saw_return = true;
            }
        }
    }
    out
}

/// Crates allowed to read ambient clocks freely.
pub const CLOCK_CRATES: [&str; 2] = ["smartflux-telemetry", "smartflux-bench"];

/// Replayed waves must be deterministic: ambient clock reads are confined
/// to the telemetry crate, the bench harness, and explicitly annotated
/// measurement sites.
#[must_use]
pub fn check_time(file: &SourceFile, crate_name: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if CLOCK_CRATES.contains(&crate_name) || file.role != FileRole::Lib {
        return out;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        let ln = idx + 1;
        if file.is_test_line(ln) {
            continue;
        }
        for token in ["Instant::now()", "SystemTime::now()", "SystemTime"] {
            if line.code.contains(token) {
                out.push(Diagnostic {
                    path: file.path.display().to_string(),
                    line: ln,
                    check: CheckId::Time,
                    message: format!(
                        "`{token}` outside telemetry/bench — wave replay must be \
                         deterministic; annotate measurement sites with \
                         `// tidy:allow(time): <reason>`"
                    ),
                });
                break;
            }
        }
    }
    out
}

/// Crates whose `src/lib.rs` must carry `#![warn(missing_docs)]` (every
/// internal crate except the bench harness opts in).
pub const MISSING_DOCS_OPT_IN: [&str; 11] = [
    "smartflux",
    "smartflux-datastore",
    "smartflux-wms",
    "smartflux-ml",
    "smartflux-telemetry",
    "smartflux-workloads",
    "smartflux-tidy",
    "smartflux-durability",
    "smartflux-obs",
    "smartflux-net",
    "smartflux-sim",
];

/// Tabs, trailing whitespace, `dbg!`, `TODO`/`FIXME` without an issue
/// reference, malformed `tidy:allow` comments, and missing lint headers.
#[must_use]
pub fn check_hygiene(file: &SourceFile, crate_name: &str, is_lib_root: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let path = file.path.display().to_string();
    let mut push = |line: usize, message: String| {
        out.push(Diagnostic {
            path: path.clone(),
            line,
            check: CheckId::Hygiene,
            message,
        });
    };

    for (idx, line) in file.lines.iter().enumerate() {
        let ln = idx + 1;
        if line.raw.contains('\t') {
            push(ln, "tab character (use spaces)".into());
        }
        if line.raw.ends_with(' ') || line.raw.ends_with('\t') {
            push(ln, "trailing whitespace".into());
        }
        if line.code.contains("dbg!(") {
            push(ln, "`dbg!` left in source".into());
        }
        for marker in ["TODO", "FIXME"] {
            if let Some(pos) = line.comment.find(marker) {
                let after = &line.comment[pos + marker.len()..];
                // A backticked mention (`TODO`) documents the marker rather
                // than leaving work behind; only bare markers count.
                let code_font = line.comment[..pos].ends_with('`');
                if !after.starts_with("(#") && !code_font {
                    push(
                        ln,
                        format!("`{marker}` without an issue reference (use `{marker}(#NNN)`)"),
                    );
                }
            }
        }
    }
    for &ln in &file.malformed_allows {
        push(
            ln,
            "malformed `tidy:allow` — expected `tidy:allow(<check-id>): <reason>`".into(),
        );
    }
    if is_lib_root && is_internal(crate_name) {
        let has = |marker: &str| file.lines.iter().any(|l| l.code.contains(marker));
        if !has("#![forbid(unsafe_code)]") {
            push(
                1,
                "crate root must declare `#![forbid(unsafe_code)]`".into(),
            );
        }
        if MISSING_DOCS_OPT_IN.contains(&crate_name) && !has("#![warn(missing_docs)]") {
            push(
                1,
                format!(
                    "`{crate_name}` opts into `#![warn(missing_docs)]` but the header is missing"
                ),
            );
        }
    }
    out
}

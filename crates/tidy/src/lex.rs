//! A minimal, purpose-built Rust lexer.
//!
//! The checks in this crate are substring-based, so the one job of the
//! lexer is to make sure those substrings are only ever searched in *code*:
//! it splits a source file into per-line code text (string/char-literal
//! contents blanked out, comments removed) and per-line comment text (where
//! `tidy:allow` annotations and `TODO` markers live). It understands line and
//! nested block comments, regular/byte/raw string literals, character
//! literals, and tells lifetimes apart from character literals.

/// One source line, split into its code and comment parts.
#[derive(Debug, Clone, Default)]
pub struct LexedLine {
    /// The raw line as it appears on disk (without the trailing newline).
    pub raw: String,
    /// Code text: comments stripped, string and char literal contents
    /// replaced by spaces (the delimiting quotes are kept so token
    /// boundaries survive).
    pub code: String,
    /// Comment text appearing on this line (line, block, and doc comments,
    /// without their `//` / `/*` markers).
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
}

/// Lexes `source` into per-line code/comment views.
#[must_use]
pub fn lex(source: &str) -> Vec<LexedLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<LexedLine> = Vec::new();
    let mut cur = LexedLine::default();
    let mut state = State::Code;
    let mut i = 0;

    let at = |i: usize| chars.get(i).copied();

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            cur.raw = String::new(); // filled below from source lines
            lines.push(std::mem::take(&mut cur));
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && at(i + 1) == Some('/') {
                    state = State::LineComment;
                    i += 2;
                    // Skip doc-comment markers so `comment` holds content.
                    if at(i) == Some('/') || at(i) == Some('!') {
                        i += 1;
                    }
                } else if c == '/' && at(i + 1) == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == 'r' && is_raw_string_start(&chars, i) {
                    let hashes = count_hashes(&chars, i + 1);
                    cur.code.push('"');
                    state = State::RawStr(hashes);
                    i += 1 + hashes + 1; // r, hashes, opening quote
                } else if c == 'b' && at(i + 1) == Some('r') && is_raw_string_start(&chars, i + 1) {
                    let hashes = count_hashes(&chars, i + 2);
                    cur.code.push('"');
                    state = State::RawStr(hashes);
                    i += 2 + hashes + 1;
                } else if c == 'b' && at(i + 1) == Some('"') {
                    cur.code.push('"');
                    state = State::Str;
                    i += 2;
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    if at(i + 1) == Some('\\') {
                        // Escaped char literal: scan to the closing quote.
                        cur.code.push('\'');
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        cur.code.push('\'');
                        i = j + 1;
                    } else if at(i + 2) == Some('\'') && at(i + 1) != Some('\'') {
                        cur.code.push('\'');
                        cur.code.push(' ');
                        cur.code.push('\'');
                        i += 3;
                    } else {
                        // A lifetime (or the label of a loop): plain code.
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && at(i + 1) == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && at(i + 1) == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    if at(i + 1).is_some_and(|n| n != '\n') {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !source.is_empty() && !source.ends_with('\n') {
        lines.push(cur);
    }

    // Attach the raw text per line.
    for (line, raw) in lines.iter_mut().zip(source.lines()) {
        line.raw = raw.to_owned();
    }
    lines
}

/// Does `chars[i] == 'r'` begin a raw string literal (`r"`, `r#"`, ...)?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Avoid treating identifiers ending in `r` (e.g. `var"`) as raw strings:
    // the previous char must not be part of an identifier.
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], mut i: usize) -> usize {
    let start = i;
    while chars.get(i) == Some(&'#') {
        i += 1;
    }
    i - start
}

/// Does the `"` at `chars[i]` close a raw string with `hashes` hashes?
fn closes_raw_string(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments() {
        let l = lex("let x = 1; // unwrap() here is fine\n");
        assert_eq!(l[0].code.trim_end(), "let x = 1;");
        assert!(l[0].comment.contains("unwrap()"));
    }

    #[test]
    fn blanks_string_contents() {
        let l = lex("let s = \".unwrap()\";\n");
        assert!(!l[0].code.contains("unwrap"));
        assert!(l[0].code.contains('"'));
    }

    #[test]
    fn handles_escapes_in_strings() {
        let l = lex("let s = \"a\\\"b.unwrap()\"; x.unwrap();\n");
        assert_eq!(l[0].code.matches(".unwrap()").count(), 1);
    }

    #[test]
    fn handles_raw_strings() {
        let l = lex("let s = r#\"panic!(\"no\")\"#; y\n");
        assert!(!l[0].code.contains("panic!"));
        assert!(l[0].code.ends_with(" y"));
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let l = lex("let s = \"line one\ntodo!()\nend\"; code();\n");
        assert!(!l[1].code.contains("todo!"));
        assert!(l[2].code.contains("code()"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* x /* y */ z */ b\n");
        assert_eq!(l[0].code.replace(' ', ""), "ab");
        assert!(l[0].comment.contains('y'));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; g(c) }\n");
        assert!(l[0].code.contains("&'a str"));
        assert!(!l[0].code.contains("'x'"));
        assert!(l[0].code.contains("g(c)"));
    }

    #[test]
    fn doc_comment_text_is_captured() {
        let l = lex("/// TODO fix me\nfn f() {}\n");
        assert!(l[0].comment.contains("TODO"));
        assert!(l[0].code.trim().is_empty());
        assert!(l[1].code.contains("fn f"));
    }
}

//! `smartflux-tidy`: dependency-free static analysis for the SmartFlux
//! workspace, in the spirit of rust-lang/rust's `tidy`.
//!
//! SmartFlux's value proposition is a correctness contract — skipped waves
//! keep output deviation under `maxε` with high confidence — so middleware
//! bugs that a general linter cannot know about (a panic mid-wave, a lock
//! held across a step callback, a telemetry call that costs time on the
//! disabled path, an architecture-violating crate edge) directly threaten
//! the guarantee. This crate machine-checks those repo-specific
//! invariants:
//!
//! | id                | invariant |
//! |-------------------|-----------|
//! | `layering`        | the crate dependency DAG matches the documented architecture |
//! | `panic`           | no `unwrap()`/`expect()`/`panic!`/`todo!` in library code |
//! | `lock-std`        | vendored `parking_lot` locks, never `std::sync`, in lock-adopting crates |
//! | `lock-span`       | no lock guard held across step/observer/sink callbacks |
//! | `telemetry-guard` | metrics calls sit behind an `is_enabled()` guard |
//! | `time`            | no ambient clock reads outside telemetry/bench |
//! | `hygiene`         | tabs, trailing whitespace, `dbg!`, `TODO` refs, lint headers |
//! | `lock-order`      | no cycle in the interprocedural lock-acquisition-order graph |
//! | `atomic-ordering` | every atomic field declares a `tidy:atomic` discipline and every `Ordering::*` use matches it |
//! | `guard-blocking`  | no guard held across a call that (transitively) reaches blocking I/O |
//! | `allow-dangling`  | every `tidy:allow` suppresses something; stale allows are errors |
//!
//! The first seven are lexical, line-at-a-time checks. The last three
//! come from the [`concurrency`] passes, which build a per-crate symbol
//! table and call graph on top of the same lexer and reason
//! interprocedurally (see that module's docs for the witness format and
//! documented exclusions).
//!
//! Checks are suppressed per line with a machine-readable
//! `// tidy:allow(<check-id>): <reason>` comment — and since checks emit
//! raw findings that the runner filters centrally, a suppression that no
//! longer fires is itself reported (`allow-dangling`). Pre-existing debt
//! is budgeted per `(check, crate)` in a committed ratchet file
//! (`tidy-ratchet.json`) that the pass forces to shrink monotonically: a
//! count above budget fails, and a count *below* budget also fails until
//! the file is tightened with `--write-ratchet`.
//!
//! Everything is hand-rolled (a comment/string-aware lexer, a minimal
//! `Cargo.toml` reader, a tiny JSON codec) so the binary builds offline
//! with zero external dependencies and runs in well under a second.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod concurrency;
pub mod lex;
pub mod manifest;
pub mod ratchet;
pub mod report;
pub mod runner;
pub mod source;

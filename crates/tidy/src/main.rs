//! CLI entry point: `cargo run -p smartflux-tidy -- --workspace`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use smartflux_tidy::checks::{CheckId, ALL_CHECKS};
use smartflux_tidy::ratchet;
use smartflux_tidy::report;
use smartflux_tidy::runner;

const USAGE: &str = "\
smartflux-tidy: repo-specific static analysis for the SmartFlux workspace

USAGE:
    cargo run -p smartflux-tidy -- --workspace [OPTIONS]

OPTIONS:
    --workspace          check every workspace member (required to run)
    --root <dir>         workspace root (default: found from the cwd)
    --only <check-id>    run one check family (repeatable)
    --ratchet <file>     compare counts against a committed budget file;
                         counts above budget fail, counts below budget
                         fail too until the file is tightened
    --write-ratchet      rewrite the --ratchet file with the live counts
    --json <file>        also write a machine-readable report (checks run,
                         per-crate counts, findings, lock-order graphs)
    --list-checks        print every check id and exit
    --help               print this help
";

struct Options {
    workspace: bool,
    root: Option<PathBuf>,
    only: Vec<CheckId>,
    ratchet: Option<PathBuf>,
    write_ratchet: bool,
    json: Option<PathBuf>,
    list_checks: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        root: None,
        only: Vec::new(),
        ratchet: None,
        write_ratchet: false,
        json: None,
        list_checks: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--only" => {
                let v = it.next().ok_or("--only needs a check id")?;
                let id = CheckId::parse(v)
                    .ok_or_else(|| format!("unknown check `{v}` (see --list-checks)"))?;
                opts.only.push(id);
            }
            "--ratchet" => {
                let v = it.next().ok_or("--ratchet needs a file path")?;
                opts.ratchet = Some(PathBuf::from(v));
            }
            "--write-ratchet" => opts.write_ratchet = true,
            "--json" => {
                let v = it.next().ok_or("--json needs a file path")?;
                opts.json = Some(PathBuf::from(v));
            }
            "--list-checks" => opts.list_checks = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_checks {
        for check in ALL_CHECKS {
            println!("{:<16} {}", check.as_str(), check.describe());
        }
        return ExitCode::SUCCESS;
    }
    if !opts.workspace {
        eprintln!("error: nothing to do — pass --workspace (or --list-checks)");
        return ExitCode::from(2);
    }

    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    let start = std::time::Instant::now();
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            runner::find_workspace_root(&cwd)?
        }
    };
    let selected: Vec<CheckId> = if opts.only.is_empty() {
        ALL_CHECKS.to_vec()
    } else {
        opts.only.clone()
    };

    let units = runner::load_workspace(&root)?;
    let run_report = runner::run_checks_full(&units, &selected);
    let diagnostics = &run_report.diagnostics;
    let live = runner::count_by_crate(&units, diagnostics);

    let mut ok = true;
    if let Some(ratchet_path) = &opts.ratchet {
        if opts.write_ratchet {
            std::fs::write(ratchet_path, ratchet::to_json(&live))
                .map_err(|e| format!("{}: {e}", ratchet_path.display()))?;
            println!(
                "tidy: wrote {} ({} live finding(s))",
                ratchet_path.display(),
                diagnostics.len()
            );
        } else {
            let text = std::fs::read_to_string(ratchet_path)
                .map_err(|e| format!("{}: {e}", ratchet_path.display()))?;
            let budget = ratchet::from_json(&text)
                .map_err(|e| format!("{}: {e}", ratchet_path.display()))?;
            let report = runner::compare_ratchet(&live, &budget, &selected);
            for (check, krate, l, b) in &report.over {
                // Print the offending diagnostics for over-budget cells.
                for d in diagnostics
                    .iter()
                    .filter(|d| d.check.as_str() == check)
                    .filter(|d| crate_of(&units, &d.path).as_deref() == Some(krate))
                {
                    println!("{d}");
                }
                eprintln!(
                    "tidy({check}): {krate}: {l} finding(s) exceed the ratchet budget of {b}"
                );
            }
            for (check, krate, l, b) in &report.stale {
                eprintln!(
                    "tidy({check}): {krate}: count improved to {l} but the ratchet still \
                     says {b} — run `cargo run -p smartflux-tidy -- --workspace --ratchet {p} \
                     --write-ratchet` and commit the tightened file",
                    p = ratchet_path.display()
                );
            }
            ok = report.is_clean();
        }
    } else {
        for d in diagnostics {
            println!("{d}");
        }
        ok = diagnostics.is_empty();
    }

    if let Some(json_path) = &opts.json {
        let doc = report::render(
            &selected,
            units.iter().map(|u| u.files.len()).sum::<usize>(),
            units.len(),
            start.elapsed().as_millis(),
            diagnostics,
            &live,
            &run_report.lock_graphs,
        );
        std::fs::write(json_path, doc).map_err(|e| format!("{}: {e}", json_path.display()))?;
        eprintln!("tidy: wrote report to {}", json_path.display());
    }

    eprintln!(
        "tidy: {} file(s) across {} crate(s), {} check(s), {} live finding(s), {:?}",
        units.iter().map(|u| u.files.len()).sum::<usize>(),
        units.len(),
        selected.len(),
        diagnostics.len(),
        start.elapsed()
    );
    Ok(ok)
}

/// The crate owning a workspace-relative diagnostic path.
fn crate_of(units: &[runner::CrateUnit], path: &str) -> Option<String> {
    let mut best: Option<(usize, String)> = None;
    for u in units {
        let prefix = u
            .manifest
            .path
            .parent()
            .map(|p| p.display().to_string())
            .unwrap_or_default();
        if prefix.is_empty() || path.starts_with(prefix.as_str()) {
            let len = prefix.len();
            if best.as_ref().is_none_or(|(l, _)| len > *l) {
                best = Some((len, u.name.clone()));
            }
        }
    }
    best.map(|(_, n)| n)
}

//! The per-file source model shared by all checks: lexed lines, brace
//! depth, `#[cfg(test)]` block marking, and `tidy:allow` annotations.

use std::collections::HashSet;
use std::path::PathBuf;

use crate::lex::{lex, LexedLine};

/// What kind of compilation target a file belongs to. Panic/lock/telemetry
/// checks only apply to [`FileRole::Lib`]; tests, benches, bins and
/// examples are allowed to fail loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library code (`src/**`, excluding `src/bin/`).
    Lib,
    /// Integration tests (`tests/**`).
    Test,
    /// Benchmarks (`benches/**`).
    Bench,
    /// Binary targets (`src/bin/**`).
    Bin,
    /// Examples (`examples/**`).
    Example,
}

impl FileRole {
    /// Infers the role from a path relative to the crate root.
    #[must_use]
    pub fn from_relative_path(rel: &str) -> Self {
        let rel = rel.replace('\\', "/");
        if rel.starts_with("tests/") {
            Self::Test
        } else if rel.starts_with("benches/") {
            Self::Bench
        } else if rel.starts_with("examples/") {
            Self::Example
        } else if rel.starts_with("src/bin/") || rel == "src/main.rs" {
            Self::Bin
        } else {
            Self::Lib
        }
    }
}

/// A lexed source file plus the derived facts checks need.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as reported in diagnostics (workspace-relative).
    pub path: PathBuf,
    /// Target kind this file compiles into.
    pub role: FileRole,
    /// The lexed lines.
    pub lines: Vec<LexedLine>,
    /// `true` for lines inside a `#[cfg(test)]` block.
    is_test: Vec<bool>,
    /// Brace depth (code braces only) at the start of each line.
    depth_at_start: Vec<usize>,
    /// Check ids suppressed on each line via `tidy:allow(<id>): reason`.
    allows: Vec<HashSet<String>>,
    /// Lines carrying a `tidy:allow` comment with a missing/empty reason.
    pub malformed_allows: Vec<usize>,
}

impl SourceFile {
    /// Lexes `source` and computes the derived line facts.
    #[must_use]
    pub fn parse(path: PathBuf, role: FileRole, source: &str) -> Self {
        let lines = lex(source);
        let n = lines.len();
        let mut is_test = vec![false; n];
        let mut depth_at_start = vec![0usize; n];

        // Brace depth + #[cfg(test)] block marking.
        let mut depth = 0usize;
        let mut pending_cfg_test = false;
        let mut test_until_depth: Option<usize> = None;
        for (idx, line) in lines.iter().enumerate() {
            depth_at_start[idx] = depth;
            if test_until_depth.is_some() || pending_cfg_test {
                is_test[idx] = true;
            }
            if test_until_depth.is_none() && line.code.contains("#[cfg(test)]") {
                pending_cfg_test = true;
                is_test[idx] = true;
            }
            for ch in line.code.chars() {
                match ch {
                    '{' => {
                        if pending_cfg_test && test_until_depth.is_none() {
                            test_until_depth = Some(depth);
                            pending_cfg_test = false;
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if test_until_depth == Some(depth) {
                            test_until_depth = None;
                        }
                    }
                    _ => {}
                }
            }
        }

        // tidy:allow annotations. A standalone comment line suppresses the
        // next line that has code; a trailing comment suppresses its own
        // line.
        let mut allows: Vec<HashSet<String>> = vec![HashSet::new(); n];
        let mut malformed_allows = Vec::new();
        let mut pending: HashSet<String> = HashSet::new();
        for (idx, line) in lines.iter().enumerate() {
            let mut here: HashSet<String> = HashSet::new();
            let mut rest = line.comment.as_str();
            while let Some(start) = rest.find("tidy:allow(") {
                // Ignore mentions inside backticked code spans — docs talk
                // about the syntax without invoking it.
                let abs = line.comment.len() - rest.len() + start;
                if line.comment[..abs].matches('`').count() % 2 == 1 {
                    rest = &rest[start + "tidy:allow(".len()..];
                    continue;
                }
                let after = &rest[start + "tidy:allow(".len()..];
                let Some(close) = after.find(')') else {
                    malformed_allows.push(idx + 1);
                    break;
                };
                let id = after[..close].trim();
                let tail = &after[close + 1..];
                let reason_ok = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
                if id.is_empty() || !reason_ok {
                    malformed_allows.push(idx + 1);
                } else {
                    here.insert(id.to_owned());
                }
                rest = tail;
            }
            let has_code = !line.code.trim().is_empty();
            if has_code {
                allows[idx].extend(pending.drain());
                allows[idx].extend(here);
            } else {
                pending.extend(here);
            }
        }

        Self {
            path,
            role,
            lines,
            is_test,
            depth_at_start,
            allows,
            malformed_allows,
        }
    }

    /// Whether 1-based `line` sits inside a `#[cfg(test)]` block.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.is_test.get(line - 1).copied().unwrap_or(false)
    }

    /// Brace depth at the start of 1-based `line`.
    #[must_use]
    pub fn depth_at(&self, line: usize) -> usize {
        self.depth_at_start.get(line - 1).copied().unwrap_or(0)
    }

    /// Whether `check` is suppressed on 1-based `line`.
    #[must_use]
    pub fn is_allowed(&self, line: usize, check: &str) -> bool {
        self.allows.get(line - 1).is_some_and(|s| s.contains(check))
    }

    /// Every `(line, check-id)` suppression in the file, in line order.
    /// The line is the code line the allow applies to (for standalone
    /// comment allows, the next code line), matching [`Self::is_allowed`].
    pub fn allow_entries(&self) -> impl Iterator<Item = (usize, &str)> + '_ {
        self.allows.iter().enumerate().flat_map(|(idx, set)| {
            let mut ids: Vec<&str> = set.iter().map(String::as_str).collect();
            ids.sort_unstable();
            ids.into_iter().map(move |id| (idx + 1, id))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("x.rs"), FileRole::Lib, src)
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let f = parse(
            "fn lib() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { x.unwrap(); }\n\
             }\n\
             fn lib2() {}\n",
        );
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn allow_applies_to_same_line_and_next_line() {
        let f = parse(
            "a(); // tidy:allow(panic): trailing form\n\
             // tidy:allow(time): standalone form\n\
             b();\n\
             c();\n",
        );
        assert!(f.is_allowed(1, "panic"));
        assert!(f.is_allowed(3, "time"));
        assert!(!f.is_allowed(4, "time"));
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let f = parse("x(); // tidy:allow(panic)\ny(); // tidy:allow(panic):   \n");
        assert_eq!(f.malformed_allows, vec![1, 2]);
        assert!(!f.is_allowed(1, "panic"));
    }

    #[test]
    fn depth_tracking() {
        let f = parse("fn f() {\n    if x {\n        y();\n    }\n}\n");
        assert_eq!(f.depth_at(1), 0);
        assert_eq!(f.depth_at(3), 2);
        assert_eq!(f.depth_at(5), 1);
    }

    #[test]
    fn file_roles_from_paths() {
        assert_eq!(FileRole::from_relative_path("src/lib.rs"), FileRole::Lib);
        assert_eq!(FileRole::from_relative_path("src/bin/x.rs"), FileRole::Bin);
        assert_eq!(FileRole::from_relative_path("tests/t.rs"), FileRole::Test);
        assert_eq!(
            FileRole::from_relative_path("benches/b.rs"),
            FileRole::Bench
        );
        assert_eq!(
            FileRole::from_relative_path("examples/e.rs"),
            FileRole::Example
        );
    }
}

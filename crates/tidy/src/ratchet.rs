//! The ratchet file: per-check, per-crate counts of tolerated violations.
//!
//! The ratchet makes legacy debt explicit and monotonically decreasing:
//! a `(check, crate)` cell may hold at most the committed count, and when
//! the real count drops below it the run *fails* until the file is
//! tightened (`--write-ratchet`), so improvements are locked in by every
//! PR that makes them. The format is a two-level JSON object with sorted
//! keys, written and parsed by this module alone (no external JSON crate).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// `check id → crate name → tolerated violation count`.
pub type Counts = BTreeMap<String, BTreeMap<String, usize>>;

/// Serialises `counts` in the committed format (sorted, 2-space indent,
/// trailing newline). Zero cells are omitted.
#[must_use]
pub fn to_json(counts: &Counts) -> String {
    let mut out = String::from("{\n");
    let non_empty: Vec<_> = counts
        .iter()
        .filter(|(_, per)| per.values().any(|&v| v > 0))
        .collect();
    for (ci, (check, per_crate)) in non_empty.iter().enumerate() {
        let _ = writeln!(out, "  \"{check}\": {{");
        let cells: Vec<_> = per_crate.iter().filter(|(_, &v)| v > 0).collect();
        for (ki, (krate, count)) in cells.iter().enumerate() {
            let comma = if ki + 1 < cells.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{krate}\": {count}{comma}");
        }
        let comma = if ci + 1 < non_empty.len() { "," } else { "" };
        let _ = writeln!(out, "  }}{comma}");
    }
    out.push_str("}\n");
    out
}

/// Parses the format written by [`to_json`] (tolerating arbitrary
/// whitespace). Returns `Err` with a human-readable message on malformed
/// input.
pub fn from_json(text: &str) -> Result<Counts, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    let counts = p.object(|p| {
        p.object(|p| p.number())
            .map(|inner| inner.into_iter().collect())
    })?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(counts.into_iter().collect())
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect_char(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.chars.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{c}` at offset {}, found {:?}",
                self.pos,
                self.chars.get(self.pos)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut s = String::new();
        loop {
            match self.chars.get(self.pos) {
                Some('"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some('\\') => {
                    self.pos += 1;
                    if let Some(&c) = self.chars.get(self.pos) {
                        s.push(c);
                        self.pos += 1;
                    }
                }
                Some(&c) => {
                    s.push(c);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<usize, String> {
        self.skip_ws();
        let start = self.pos;
        while self.chars.get(self.pos).is_some_and(char::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at offset {start}"));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse().map_err(|e| format!("bad number: {e}"))
    }

    /// Parses `{ "k": <value>, ... }` where each value comes from `value`.
    fn object<T>(
        &mut self,
        mut value: impl FnMut(&mut Self) -> Result<T, String>,
    ) -> Result<Vec<(String, T)>, String> {
        self.expect_char('{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.chars.get(self.pos) == Some(&'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.expect_char(':')?;
            out.push((key, value(self)?));
            self.skip_ws();
            match self.chars.get(self.pos) {
                Some(',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some('}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counts {
        let mut c = Counts::new();
        c.entry("panic".into())
            .or_default()
            .insert("smartflux-ml".into(), 3);
        c.entry("panic".into())
            .or_default()
            .insert("smartflux-bench".into(), 7);
        c.entry("time".into())
            .or_default()
            .insert("smartflux-workloads".into(), 1);
        c
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let text = to_json(&c);
        assert_eq!(from_json(&text).unwrap(), c);
    }

    #[test]
    fn zero_cells_are_dropped() {
        let mut c = sample();
        c.entry("lock-std".into())
            .or_default()
            .insert("smartflux".into(), 0);
        let text = to_json(&c);
        assert!(!text.contains("lock-std"));
    }

    #[test]
    fn empty_object() {
        assert!(from_json("{}\n").unwrap().is_empty());
        assert_eq!(to_json(&Counts::new()), "{\n}\n");
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_json("{").is_err());
        assert!(from_json("{\"a\": 1}").is_err()); // values must be objects
        assert!(from_json("{\"a\": {\"b\": true}}").is_err());
    }
}

//! Loopback soak: four concurrent clients each drive a full 200-wave
//! Linear Road run through the socket, and every one of them must match
//! the in-process reference decision-for-decision, store-byte-for-byte,
//! clock-tick-for-clock-tick. The `net.*` telemetry the run produces
//! must be visible through the observability plane's `/metrics`
//! endpoint.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use smartflux::eval::WorkloadFactory;
use smartflux::{DurabilityOptions, EngineConfig, SmartFluxSession, SyncPolicy, WaveDiagnostics};
use smartflux_datastore::{DataStore, StoreState};
use smartflux_net::{Client, EngineHost, HostConfig, NetServer, SessionSpec, WorkflowRegistry};
use smartflux_obs::{openmetrics, ObsServer, ObsSources};
use smartflux_telemetry::{names, Telemetry};
use smartflux_workloads::lrb::LrbFactory;

const TOTAL_WAVES: u64 = 200;
const CLIENTS: usize = 4;

fn lrb_config() -> EngineConfig {
    EngineConfig::new()
        .with_training_waves(30)
        .with_quality_gates(0.3, 0.3)
        .with_seed(11)
}

fn lrb_registry() -> WorkflowRegistry {
    let mut registry = WorkflowRegistry::new();
    registry.register("lrb", lrb_config(), |store| {
        LrbFactory::with_bound(0.1).build(store)
    });
    registry
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smartflux-net-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The uninterrupted in-process run every networked session must match.
fn reference_run(dir: &PathBuf) -> (Vec<WaveDiagnostics>, StoreState, u64) {
    let store = DataStore::new();
    let workflow = LrbFactory::with_bound(0.1).build(&store);
    let config = lrb_config().with_durability(
        DurabilityOptions::new(dir)
            .with_sync(SyncPolicy::Never)
            .with_checkpoint_interval(20),
    );
    let mut session = SmartFluxSession::new(workflow, store, config).expect("session builds");
    for _ in 0..TOTAL_WAVES {
        session.run_wave().expect("wave runs");
    }
    let diags = session.diagnostics();
    let store = session.scheduler().store().clone();
    drop(session);
    (diags, store.export_state(), store.clock())
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();
    match body.split_once("\r\n\r\n") {
        Some((_, payload)) => payload.to_owned(),
        None => body,
    }
}

#[test]
fn four_concurrent_clients_match_the_in_process_run_exactly() {
    let ref_dir = tmp_dir("ref");
    let (ref_diags, ref_state, ref_clock) = reference_run(&ref_dir);
    assert_eq!(ref_diags.len() as u64, TOTAL_WAVES);

    // One telemetry handle shared between the engine host and the
    // observability plane — exactly how a deployment wires them.
    let telemetry = Telemetry::enabled();
    let host = EngineHost::new(
        lrb_registry(),
        HostConfig::new().with_workers(4),
        telemetry.clone(),
    );
    let server = NetServer::start("127.0.0.1:0", host, CLIENTS + 1).unwrap();
    let addr = server.addr();
    let obs = ObsServer::start(
        "127.0.0.1:0",
        ObsSources {
            telemetry: telemetry.clone(),
            ..ObsSources::default()
        },
        1,
    )
    .unwrap();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let opened = client
                    .open_session(&SessionSpec {
                        workload: "lrb".into(),
                        ..SessionSpec::default()
                    })
                    .unwrap();
                assert!(!opened.resumed);
                assert_eq!(opened.next_wave, 1);
                let mut reports = Vec::new();
                for _ in 0..TOTAL_WAVES {
                    reports.push(client.submit_wave(opened.session, vec![]).unwrap());
                }
                assert_eq!(client.drain(opened.session).unwrap(), TOTAL_WAVES);
                let rows = client.query_decisions(opened.session, 0).unwrap();
                let (clock, state) = client.query_store(opened.session).unwrap();
                client.close_session(opened.session).unwrap();
                (reports, rows, clock, state)
            })
        })
        .collect();

    for handle in handles {
        let (reports, rows, clock, state) = handle.join().unwrap();
        assert_eq!(reports.len() as u64, TOTAL_WAVES);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.wave, i as u64 + 1);
        }
        // Decision-for-decision equivalence with the in-process run,
        // impacts bit-exact.
        assert_eq!(rows.len(), ref_diags.len());
        for (row, diag) in rows.iter().zip(&ref_diags) {
            assert_eq!(row.wave, diag.wave);
            assert_eq!(row.training, diag.training);
            assert_eq!(row.impacts, diag.impacts);
            assert_eq!(row.decisions, diag.decisions);
        }
        // Store-byte and clock-tick equivalence.
        assert_eq!(clock, ref_clock, "logical clocks diverged");
        assert_eq!(state, ref_state, "store contents diverged");
    }

    // The run's net.* telemetry is served by the observability plane.
    let metrics = http_get(obs.addr(), "/metrics");
    let parsed = openmetrics::parse(&metrics).unwrap();
    let frames_in = parsed.counter_total(names::NET_FRAMES_IN).unwrap();
    assert!(
        frames_in >= (CLIENTS as u64 * TOTAL_WAVES) as f64,
        "expected at least one inbound frame per wave per client, saw {frames_in}"
    );
    assert!(parsed.counter_total(names::NET_CONNECTIONS).unwrap() >= CLIENTS as f64);
    assert_eq!(parsed.counter_total(names::NET_FRAME_ERRORS), Some(0.0));

    obs.shutdown();
    // No session is durable here, so an orderly shutdown checkpoints none.
    let report = server.shutdown();
    assert_eq!(report.checkpointed, 0);
    assert!(report.checkpoint_failures.is_empty());
}

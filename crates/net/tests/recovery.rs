//! Durable networked sessions survive both kinds of host death.
//!
//! A crash ([`NetServer::kill`]) mid-submission must never hang or panic
//! a client, and a fresh host over the same durability root must resume
//! the session from its last checkpoint and finish the 200-wave Linear
//! Road run with decisions, store state, and logical clock identical to
//! the uninterrupted in-process reference. An orderly
//! [`NetServer::shutdown`] is stronger: it checkpoints at the exact wave,
//! so the resumed session loses nothing.

use std::path::PathBuf;
use std::time::Duration;

use smartflux::eval::WorkloadFactory;
use smartflux::{DurabilityOptions, EngineConfig, SmartFluxSession, SyncPolicy, WaveDiagnostics};
use smartflux_datastore::{DataStore, StoreState};
use smartflux_net::{
    Client, DecisionRow, EngineHost, HostConfig, NetServer, SessionSpec, WorkflowRegistry,
};
use smartflux_telemetry::Telemetry;
use smartflux_workloads::lrb::LrbFactory;

const TOTAL_WAVES: u64 = 200;
const CHECKPOINT_INTERVAL: u64 = 20;

fn lrb_config() -> EngineConfig {
    EngineConfig::new()
        .with_training_waves(30)
        .with_quality_gates(0.3, 0.3)
        .with_seed(11)
}

fn lrb_registry() -> WorkflowRegistry {
    let mut registry = WorkflowRegistry::new();
    registry.register("lrb", lrb_config(), |store| {
        LrbFactory::with_bound(0.1).build(store)
    });
    registry
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "smartflux-net-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_host(root: &PathBuf) -> NetServer {
    let host = EngineHost::new(
        lrb_registry(),
        HostConfig::new()
            .with_durability_root(root)
            .with_checkpoint_interval(CHECKPOINT_INTERVAL),
        Telemetry::disabled(),
    );
    NetServer::start("127.0.0.1:0", host, 4).unwrap()
}

/// The uninterrupted in-process run the resumed session must match.
fn reference_run(dir: &PathBuf) -> (Vec<WaveDiagnostics>, StoreState, u64) {
    let store = DataStore::new();
    let workflow = LrbFactory::with_bound(0.1).build(&store);
    let config = lrb_config().with_durability(
        DurabilityOptions::new(dir)
            .with_sync(SyncPolicy::Never)
            .with_checkpoint_interval(CHECKPOINT_INTERVAL),
    );
    let mut session = SmartFluxSession::new(workflow, store, config).expect("session builds");
    for _ in 0..TOTAL_WAVES {
        session.run_wave().expect("wave runs");
    }
    let diags = session.diagnostics();
    let store = session.scheduler().store().clone();
    drop(session);
    (diags, store.export_state(), store.clock())
}

fn assert_rows_match_reference(rows: &[DecisionRow], reference: &[WaveDiagnostics]) {
    for row in rows {
        let diag = &reference[usize::try_from(row.wave).unwrap() - 1];
        assert_eq!(row.wave, diag.wave);
        assert_eq!(row.training, diag.training);
        assert_eq!(row.impacts, diag.impacts, "wave {} impacts", row.wave);
        assert_eq!(row.decisions, diag.decisions, "wave {} decisions", row.wave);
    }
}

#[test]
fn kill_mid_submit_then_resume_matches_the_reference() {
    let ref_dir = tmp_dir("kill-ref");
    let (ref_diags, ref_state, ref_clock) = reference_run(&ref_dir);

    let root = tmp_dir("kill-root");
    let server = start_host(&root);
    let addr = server.addr();

    let spec = SessionSpec {
        workload: "lrb".into(),
        durable_key: Some("feeder-a".into()),
        resume: true,
        ..SessionSpec::default()
    };

    let mut client = Client::connect(addr).unwrap();
    let opened = client.open_session(&spec).unwrap();
    assert!(!opened.resumed, "first boot has no checkpoint to resume");
    assert_eq!(opened.next_wave, 1);
    let session = opened.session;
    for _ in 0..105 {
        client.submit_wave(session, vec![]).unwrap();
    }

    // A second connection keeps hammering the same session while the
    // host dies under it. The submits that land before the kill succeed;
    // the first one after it must fail *promptly and typed* — no hang,
    // no panic, no torn session state.
    let victim = std::thread::spawn(move || {
        let mut feeder = Client::connect(addr).unwrap();
        let mut submitted = 0u64;
        loop {
            match feeder.submit_wave(session, vec![]) {
                Ok(_) => submitted += 1,
                Err(e) => return (submitted, e.to_string()),
            }
        }
    });
    std::thread::sleep(Duration::from_millis(25));
    server.kill();
    let (extra, error) = victim.join().unwrap();
    assert!(!error.is_empty(), "the interrupted submit reports an error");
    let waves_before_kill = 105 + extra;
    assert!(
        waves_before_kill < TOTAL_WAVES,
        "the kill must land mid-run for this test to mean anything"
    );

    // Fresh host over the same root: the session resumes from the last
    // durable checkpoint (a multiple of the interval; the WAL tail past
    // it is deliberately discarded, crash-recovery style).
    let server = start_host(&root);
    let mut client = Client::connect(server.addr()).unwrap();
    let reopened = client.open_session(&spec).unwrap();
    assert!(reopened.resumed, "second boot resumes the checkpoint");
    let checkpoint_wave = reopened.next_wave - 1;
    assert_eq!(checkpoint_wave % CHECKPOINT_INTERVAL, 0);
    assert!((100..=waves_before_kill).contains(&checkpoint_wave));

    for _ in checkpoint_wave..TOTAL_WAVES {
        client.submit_wave(reopened.session, vec![]).unwrap();
    }
    let rows = client.query_decisions(reopened.session, 0).unwrap();
    assert_eq!(rows.len() as u64, TOTAL_WAVES - checkpoint_wave);
    assert_eq!(rows.first().unwrap().wave, checkpoint_wave + 1);
    assert_rows_match_reference(&rows, &ref_diags);

    let (clock, state) = client.query_store(reopened.session).unwrap();
    assert_eq!(clock, ref_clock, "logical clocks diverged after recovery");
    assert_eq!(state, ref_state, "store contents diverged after recovery");

    client.close_session(reopened.session).unwrap();
    server.shutdown();
}

#[test]
fn orderly_shutdown_checkpoints_at_the_exact_wave() {
    let ref_dir = tmp_dir("orderly-ref");
    let (ref_diags, ref_state, ref_clock) = reference_run(&ref_dir);

    let root = tmp_dir("orderly-root");
    let server = start_host(&root);
    let spec = SessionSpec {
        workload: "lrb".into(),
        durable_key: Some("feeder-b".into()),
        resume: true,
        ..SessionSpec::default()
    };

    let mut client = Client::connect(server.addr()).unwrap();
    let opened = client.open_session(&spec).unwrap();
    // 87 is deliberately not a checkpoint multiple: only the orderly
    // shutdown's final checkpoint can make wave 88 the resume point.
    for _ in 0..87 {
        client.submit_wave(opened.session, vec![]).unwrap();
    }
    drop(client);
    let report = server.shutdown();
    assert_eq!(report.checkpointed, 1, "one durable session checkpointed");
    assert!(report.checkpoint_failures.is_empty());

    let server = start_host(&root);
    let mut client = Client::connect(server.addr()).unwrap();
    let reopened = client.open_session(&spec).unwrap();
    assert!(reopened.resumed);
    assert_eq!(reopened.next_wave, 88, "orderly shutdown loses nothing");

    for _ in 87..TOTAL_WAVES {
        client.submit_wave(reopened.session, vec![]).unwrap();
    }
    let rows = client.query_decisions(reopened.session, 88).unwrap();
    assert_eq!(rows.len() as u64, TOTAL_WAVES - 87);
    assert_rows_match_reference(&rows, &ref_diags);

    let (clock, state) = client.query_store(reopened.session).unwrap();
    assert_eq!(clock, ref_clock);
    assert_eq!(state, ref_state);

    client.close_session(reopened.session).unwrap();
    server.shutdown();
}

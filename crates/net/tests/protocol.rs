//! Wire-level robustness: damaged SFNP frames at every byte offset must
//! earn a typed error (never a panic), close the connection cleanly, and
//! leave session state untouched.

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use smartflux::EngineConfig;
use smartflux_datastore::{ContainerRef, DataStore, Value};
use smartflux_net::wire::{self, FrameIn};
use smartflux_net::{
    Client, ContainerWrite, EngineHost, ErrorCode, HostConfig, NetError, NetServer, Request,
    Response, SessionSpec, WorkflowRegistry, MAX_FRAME, VERSION,
};
use smartflux_sim::faults::wire as damage;
use smartflux_telemetry::Telemetry;
use smartflux_wms::{FnStep, GraphBuilder, StepContext, Workflow};

fn ramp_workflow(store: &DataStore) -> Workflow {
    let raw = ContainerRef::family("t", "raw");
    let out = ContainerRef::family("t", "out");
    store.ensure_container(&raw).unwrap();
    store.ensure_container(&out).unwrap();
    let mut g = GraphBuilder::new("ramp");
    let feed = g.add_step("feed");
    let agg = g.add_step("agg");
    g.add_edge(feed, agg).unwrap();
    let mut wf = Workflow::new(g.build().unwrap());
    wf.bind(
        feed,
        FnStep::new(|ctx: &StepContext| {
            let w = ctx.wave() as f64;
            ctx.put("t", "raw", "r", "v", Value::from(100.0 + w))?;
            Ok(())
        }),
    )
    .source()
    .writes(raw.clone());
    wf.bind(
        agg,
        FnStep::new(|ctx: &StepContext| {
            let v = ctx.get_f64("t", "raw", "r", "v", 0.0)?;
            ctx.put("t", "out", "r", "v", Value::from(v))?;
            Ok(())
        }),
    )
    .reads(raw)
    .writes(out)
    .error_bound(0.05);
    wf
}

fn start_server() -> NetServer {
    let mut registry = WorkflowRegistry::new();
    registry.register(
        "ramp",
        EngineConfig::new()
            .with_training_waves(10)
            .with_quality_gates(0.3, 0.3)
            .with_seed(1),
        ramp_workflow,
    );
    let host = EngineHost::new(registry, HostConfig::new(), Telemetry::disabled());
    NetServer::start("127.0.0.1:0", host, 4).unwrap()
}

/// Encodes `request` as one complete frame (header + payload).
fn frame(request: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    wire::write_frame_to(&mut out, &wire::encode_request(request)).unwrap();
    out
}

/// Reads the next response frame, or `None` if the server hung up.
fn read_reply(stream: &mut TcpStream) -> Option<Response> {
    match wire::read_frame_from(stream) {
        Ok(FrameIn::Frame(payload)) => Some(wire::decode_response(&payload).unwrap()),
        Ok(FrameIn::Closed) => None,
        Ok(FrameIn::Idle) => panic!("server sent nothing within the read timeout"),
        Err(e) => panic!("reply was not a clean frame or close: {e}"),
    }
}

/// Like [`read_reply`], but for damage injection, which races with the
/// server's close: a reset connection (the error frame discarded by the
/// kernel) counts as the server hanging up.
fn read_damage_reply(stream: &mut TcpStream) -> Option<Response> {
    match wire::read_frame_from(stream) {
        Ok(FrameIn::Frame(payload)) => Some(wire::decode_response(&payload).unwrap()),
        Ok(FrameIn::Closed) | Err(_) => None,
        Ok(FrameIn::Idle) => panic!("server sent nothing within the read timeout"),
    }
}

fn raw_connection(server: &NetServer) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// Connects and completes the Hello handshake.
fn handshaken(server: &NetServer) -> TcpStream {
    let mut stream = raw_connection(server);
    stream
        .write_all(&frame(&Request::Hello { version: VERSION }))
        .unwrap();
    match read_reply(&mut stream) {
        Some(Response::HelloOk { version }) => assert_eq!(version, VERSION),
        other => panic!("handshake failed: {other:?}"),
    }
    stream
}

#[test]
fn wrong_version_is_rejected_with_a_typed_frame() {
    let server = start_server();
    let mut stream = raw_connection(&server);
    stream
        .write_all(&frame(&Request::Hello { version: 99 }))
        .unwrap();
    match read_reply(&mut stream) {
        Some(Response::Error { code, message }) => {
            assert_eq!(code, ErrorCode::UnsupportedVersion);
            assert!(message.contains("99"));
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    // The server closes the connection after rejecting the handshake.
    assert!(read_reply(&mut stream).is_none());
    server.shutdown();
}

#[test]
fn first_frame_must_be_the_handshake() {
    let server = start_server();
    let mut stream = raw_connection(&server);
    stream
        .write_all(&frame(&Request::Drain { session: 1 }))
        .unwrap();
    match read_reply(&mut stream) {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    assert!(read_reply(&mut stream).is_none());
    server.shutdown();
}

#[test]
fn damage_at_every_byte_offset_is_rejected_and_sessions_survive() {
    let server = start_server();

    // A live session the damaged frames will (fail to) reference.
    let mut client = Client::connect(server.addr()).unwrap();
    let opened = client
        .open_session(&SessionSpec {
            workload: "ramp".into(),
            ..SessionSpec::default()
        })
        .unwrap();
    let session = opened.session;
    for _ in 0..3 {
        client.submit_wave(session, vec![]).unwrap();
    }

    let good = frame(&Request::SubmitWave {
        session,
        writes: vec![ContainerWrite {
            table: "t".into(),
            family: "raw".into(),
            row: "x".into(),
            qualifier: "q".into(),
            value: Value::from(1.0),
        }],
        run_wave: true,
    });

    // One flipped byte anywhere in the frame: either the CRC catches it,
    // the declared length collapses, or the stream tears at EOF — always
    // a typed error or a clean close, never a panic, never a mutation.
    // The exhaustive variants come from the shared sim mutator so this
    // battery and the scenario-driven harness damage the same way.
    for (offset, damaged) in damage::flips(&good).enumerate() {
        let mut stream = handshaken(&server);
        // Best-effort: the server may reject and hang up before the
        // write or half-close lands — that's a pass, not a failure.
        if stream.write_all(&damaged).is_err() {
            continue;
        }
        let _ = stream.shutdown(Shutdown::Write);
        match read_damage_reply(&mut stream) {
            Some(Response::Error { .. }) | None => {}
            other => panic!("flip at byte {offset} produced {other:?}"),
        }
    }

    // Every truncation point mid-frame tears cleanly too.
    for (cut, damaged) in damage::truncations(&good) {
        let mut stream = handshaken(&server);
        if stream.write_all(&damaged).is_err() {
            continue;
        }
        let _ = stream.shutdown(Shutdown::Write);
        match read_damage_reply(&mut stream) {
            Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::BadFrame),
            None => {}
            other => panic!("cut at byte {cut} produced {other:?}"),
        }
    }

    // The session neither saw a wave nor a stray write from any of the
    // damaged frames, and keeps working.
    let rows = client.query_decisions(session, 0).unwrap();
    assert_eq!(rows.len(), 3, "damaged frames must not reach the session");
    let report = client.submit_wave(session, vec![]).unwrap();
    assert_eq!(report.wave, 4);
    client.close_session(session).unwrap();
    server.shutdown();
}

#[test]
fn oversized_declared_length_is_rejected_before_allocation() {
    let server = start_server();
    let mut stream = handshaken(&server);
    let mut header = Vec::new();
    header.extend_from_slice(&u32::try_from(MAX_FRAME + 1).unwrap().to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    stream.write_all(&header).unwrap();
    match read_reply(&mut stream) {
        Some(Response::Error { code, message }) => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("exceeds"));
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn client_surfaces_remote_errors_as_typed_values() {
    let server = start_server();
    let mut client = Client::connect(server.addr()).unwrap();
    match client.open_session(&SessionSpec {
        workload: "nope".into(),
        ..SessionSpec::default()
    }) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownWorkload),
        other => panic!("expected unknown-workload, got {other:?}"),
    }
    match client.submit_wave(77, vec![]) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected unknown-session, got {other:?}"),
    }
    // The connection stays usable after typed errors.
    let opened = client
        .open_session(&SessionSpec {
            workload: "ramp".into(),
            ..SessionSpec::default()
        })
        .unwrap();
    assert_eq!(opened.next_wave, 1);
    server.shutdown();
}

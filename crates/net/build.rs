fn main() {
    // `--cfg sim_mutation` builds deliberately reintroduce the fixed
    // close-vs-submit race in `host.rs` so the simulation harness can
    // prove it catches it; declare the cfg so `unexpected_cfgs` stays
    // quiet on both build flavours.
    println!("cargo::rustc-check-cfg=cfg(sim_mutation)");
}

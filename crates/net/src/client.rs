//! The blocking SFNP client library.
//!
//! One [`Client`] wraps one TCP connection and speaks strictly
//! request/response, so it is deliberately `&mut self` throughout — to
//! submit from several threads, open one client (and usually one
//! session) per thread; sessions on the same host are fully independent.
//!
//! ```no_run
//! use smartflux_net::{Client, SessionSpec};
//!
//! # fn main() -> Result<(), smartflux_net::NetError> {
//! let mut client = Client::connect("127.0.0.1:7171")?;
//! let opened = client.open_session(&SessionSpec {
//!     workload: "lrb".into(),
//!     ..SessionSpec::default()
//! })?;
//! for _ in 0..200 {
//!     let report = client.submit_wave(opened.session, vec![])?;
//!     println!("wave {} executed {:?}", report.wave, report.executed);
//! }
//! client.close_session(opened.session)?;
//! # Ok(())
//! # }
//! ```

use std::net::{TcpStream, ToSocketAddrs};

use smartflux_datastore::StoreState;
use smartflux_durability::decode_store_state;

use crate::error::NetError;
use crate::wire::{
    self, ContainerWrite, DecisionRow, FrameIn, Request, Response, SessionSpec, WaveReport, VERSION,
};

/// What [`Client::open_session`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenedSession {
    /// The session id for subsequent calls.
    pub session: u64,
    /// Whether a durable checkpoint was resumed (`false` on first boot).
    pub resumed: bool,
    /// The wave the session will run next.
    pub next_wave: u64,
}

/// Receipt for an ingest-only submission ([`Client::ingest`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Writes applied.
    pub count: u32,
    /// Store logical clock after the batch.
    pub clock: u64,
}

/// A blocking SFNP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` and performs the versioned handshake.
    ///
    /// No read timeout is set: calls block until the server answers
    /// (waves can be slow); a dead server surfaces as
    /// [`NetError::Closed`] or an I/O error when the TCP connection
    /// drops.
    ///
    /// # Errors
    ///
    /// Connection failures, or a typed rejection when the server does
    /// not speak [`VERSION`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        let mut client = Self { stream };
        match client.roundtrip(&Request::Hello { version: VERSION })? {
            Response::HelloOk { version: VERSION } => Ok(client),
            Response::HelloOk { version } => Err(NetError::UnsupportedVersion { found: version }),
            other => Err(fail(other)),
        }
    }

    /// Sends one request frame and reads one response frame. The typed
    /// methods below are usually more convenient; this escape hatch
    /// exists for protocol tests and tooling.
    ///
    /// # Errors
    ///
    /// I/O failures, a torn/corrupt response frame, or
    /// [`NetError::Closed`] if the server hung up.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, NetError> {
        wire::write_frame_to(&mut self.stream, &wire::encode_request(request))?;
        self.read_response()
    }

    /// Reads one response frame without sending anything first (tooling
    /// support; the protocol itself never sends unsolicited frames).
    ///
    /// # Errors
    ///
    /// Same as [`roundtrip`](Self::roundtrip).
    pub fn read_response(&mut self) -> Result<Response, NetError> {
        match wire::read_frame_from(&mut self.stream)? {
            FrameIn::Frame(payload) => wire::decode_response(&payload),
            FrameIn::Closed | FrameIn::Idle => Err(NetError::Closed),
        }
    }

    /// Opens (or resumes) a session.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed server rejection
    /// ([`NetError::Remote`] — e.g. `unknown-workload`).
    pub fn open_session(&mut self, spec: &SessionSpec) -> Result<OpenedSession, NetError> {
        match self.roundtrip(&Request::OpenSession(spec.clone()))? {
            Response::SessionOpened {
                session,
                resumed,
                next_wave,
            } => Ok(OpenedSession {
                session,
                resumed,
                next_wave,
            }),
            other => Err(fail(other)),
        }
    }

    /// Applies `writes` and triggers one wave, blocking until the wave
    /// completes on the host.
    ///
    /// # Errors
    ///
    /// [`NetError::Busy`] when the session's queue is full (retry after
    /// backoff), transport failures, or a typed server error.
    pub fn submit_wave(
        &mut self,
        session: u64,
        writes: Vec<ContainerWrite>,
    ) -> Result<WaveReport, NetError> {
        match self.roundtrip(&Request::SubmitWave {
            session,
            writes,
            run_wave: true,
        })? {
            Response::WaveResult(report) => Ok(report),
            other => Err(fail(other)),
        }
    }

    /// Applies `writes` without triggering a wave.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`submit_wave`](Self::submit_wave).
    pub fn ingest(
        &mut self,
        session: u64,
        writes: Vec<ContainerWrite>,
    ) -> Result<IngestReceipt, NetError> {
        match self.roundtrip(&Request::SubmitWave {
            session,
            writes,
            run_wave: false,
        })? {
            Response::Ingested { count, clock } => Ok(IngestReceipt { count, clock }),
            other => Err(fail(other)),
        }
    }

    /// Reads per-wave decision rows from `from_wave` onward (0 = all).
    ///
    /// # Errors
    ///
    /// Transport failures or a typed server error.
    pub fn query_decisions(
        &mut self,
        session: u64,
        from_wave: u64,
    ) -> Result<Vec<DecisionRow>, NetError> {
        match self.roundtrip(&Request::QueryDecisions { session, from_wave })? {
            Response::Decisions { rows } => Ok(rows),
            other => Err(fail(other)),
        }
    }

    /// Reads the session's full store state and logical clock.
    ///
    /// # Errors
    ///
    /// Transport failures, a typed server error, or
    /// [`NetError::Corrupt`] if the returned image fails to decode.
    pub fn query_store(&mut self, session: u64) -> Result<(u64, StoreState), NetError> {
        match self.roundtrip(&Request::QueryStore { session })? {
            Response::StoreImage { clock, bytes } => {
                let state = decode_store_state(&bytes)?;
                Ok((clock, state))
            }
            other => Err(fail(other)),
        }
    }

    /// Blocks until every submission queued before this call executed.
    /// Returns the session's lifetime executed-wave count.
    ///
    /// # Errors
    ///
    /// Transport failures or a typed server error.
    pub fn drain(&mut self, session: u64) -> Result<u64, NetError> {
        match self.roundtrip(&Request::Drain { session })? {
            Response::Drained { executed_waves, .. } => Ok(executed_waves),
            other => Err(fail(other)),
        }
    }

    /// Closes the session (checkpointing it first when durable).
    ///
    /// # Errors
    ///
    /// Transport failures or a typed server error.
    pub fn close_session(&mut self, session: u64) -> Result<(), NetError> {
        match self.roundtrip(&Request::Close { session })? {
            Response::Closed { .. } => Ok(()),
            other => Err(fail(other)),
        }
    }
}

/// Maps a non-matching response to the right error: server error frames
/// become [`NetError::Remote`], `Busy` becomes [`NetError::Busy`], and
/// anything else is a protocol violation.
fn fail(response: Response) -> NetError {
    match response {
        Response::Busy { .. } => NetError::Busy,
        Response::Error { code, message } => NetError::Remote { code, message },
        other => NetError::Corrupt {
            context: format!("unexpected response: {other:?}"),
        },
    }
}

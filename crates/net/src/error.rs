//! Typed errors for the network plane.

use std::fmt;

use smartflux_durability::DurabilityError;

use crate::wire::ErrorCode;

/// Everything that can go wrong speaking SFNP.
#[derive(Debug)]
pub enum NetError {
    /// A socket-level failure (connect, read, write).
    Io(std::io::Error),
    /// The stream ended in the middle of a frame — the peer died or the
    /// connection was cut mid-write.
    Torn,
    /// A complete frame failed validation: CRC mismatch, oversized
    /// declared length, or a malformed body.
    Corrupt {
        /// What failed to decode.
        context: String,
    },
    /// An outbound payload exceeds [`MAX_FRAME`] and was refused before
    /// a single byte hit the stream — the peer would reject the frame
    /// as corrupt, so it is never sent.
    ///
    /// [`MAX_FRAME`]: crate::wire::MAX_FRAME
    FrameTooLarge {
        /// The payload length that was refused.
        len: usize,
    },
    /// The peer's handshake advertised a protocol version this build
    /// does not speak.
    UnsupportedVersion {
        /// The version the peer offered.
        found: u16,
    },
    /// The server rejected the submission because the session's bounded
    /// queue is full; retry after draining in-flight work.
    Busy,
    /// The peer closed the connection where a response was expected.
    Closed,
    /// A typed error frame received from the peer.
    Remote {
        /// The machine-readable error class.
        code: ErrorCode,
        /// Human-readable context from the peer.
        message: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network I/O error: {e}"),
            NetError::Torn => f.write_str("connection ended mid-frame"),
            NetError::Corrupt { context } => write!(f, "corrupt frame: {context}"),
            NetError::FrameTooLarge { len } => write!(
                f,
                "payload of {len} bytes exceeds the {} byte frame limit",
                crate::wire::MAX_FRAME
            ),
            NetError::UnsupportedVersion { found } => {
                write!(f, "unsupported protocol version {found}")
            }
            NetError::Busy => f.write_str("session queue is full (busy)"),
            NetError::Closed => f.write_str("connection closed before a response arrived"),
            NetError::Remote { code, message } => {
                write!(f, "peer error ({}): {message}", code.as_str())
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<DurabilityError> for NetError {
    fn from(e: DurabilityError) -> Self {
        // The durability codec's failures are all decode failures from
        // this crate's point of view (its I/O never runs here).
        NetError::Corrupt {
            context: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(NetError::Torn.to_string().contains("mid-frame"));
        assert!(NetError::Busy.to_string().contains("busy"));
        let oversized = NetError::FrameTooLarge { len: 17_000_000 };
        assert!(oversized.to_string().contains("17000000"));
        assert!(oversized.to_string().contains("frame limit"));
        let remote = NetError::Remote {
            code: ErrorCode::UnknownSession,
            message: "no session 9".into(),
        };
        assert!(remote.to_string().contains("unknown-session"));
        assert!(remote.to_string().contains("no session 9"));
    }
}

//! The SFNP server: [`ListenerPool`] connections driving an [`EngineHost`].
//!
//! Each accepted connection is served by one pool worker for its whole
//! lifetime (the protocol is strictly request/response, so a connection
//! never needs more than one thread). The handler enforces the
//! handshake-first rule, then loops: read one frame, dispatch to the
//! host, write one response frame. Between frames it polls the pool's
//! [`StopFlag`] on a short read timeout so [`NetServer::shutdown`]
//! completes in bounded time even with idle clients connected.
//!
//! Damage never propagates: a torn or corrupt inbound frame bumps
//! `net.frame_errors`, earns a best-effort typed error frame, and closes
//! the connection — the host and its sessions are untouched, because a
//! request is only dispatched after its frame fully decoded.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use smartflux_obs::{ListenerPool, StopFlag};

use crate::error::NetError;
use crate::host::{EngineHost, ShutdownReport};
use crate::wire::{self, ErrorCode, FrameIn, Request, Response, VERSION};

/// How long a connection read blocks before the handler re-checks the
/// stop flag. Bounds shutdown latency for idle connections.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Write timeout: a peer that stops draining its socket for this long
/// forfeits the connection instead of wedging a pool worker.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// A listening SFNP endpoint bound to an [`EngineHost`].
#[derive(Debug)]
pub struct NetServer {
    pool: ListenerPool,
    host: EngineHost,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `host` over
    /// `workers` concurrent connections.
    ///
    /// # Errors
    ///
    /// Returns binding errors (address in use, permission denied, ...).
    pub fn start(addr: &str, host: EngineHost, workers: usize) -> io::Result<Self> {
        let handler_host = host.clone();
        let pool = ListenerPool::start(addr, workers, move |mut stream, stop| {
            serve_connection(&mut stream, &handler_host, stop);
        })?;
        Ok(Self { pool, host })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.pool.addr()
    }

    /// The host this server fronts.
    #[must_use]
    pub fn host(&self) -> &EngineHost {
        &self.host
    }

    /// Orderly shutdown: closes the listeners (waking idle connections
    /// via the stop flag), then drains and checkpoints the host
    /// ([`EngineHost::shutdown`]). In-flight waves finish first; the
    /// host worker pool stays alive until every connection handler has
    /// returned, so no blocked request is stranded. The report counts
    /// checkpoints written and lists any that failed (whose sessions'
    /// WAL tails may be unsynced).
    pub fn shutdown(self) -> ShutdownReport {
        self.pool.shutdown();
        self.host.shutdown()
    }

    /// Simulated crash: aborts the host first ([`EngineHost::kill`] —
    /// queued jobs get `shutting-down` errors, nothing is checkpointed),
    /// then closes the listeners.
    pub fn kill(self) {
        self.host.kill();
        self.pool.shutdown();
    }
}

fn serve_connection(stream: &mut TcpStream, host: &EngineHost, stop: &StopFlag) {
    if let Some(m) = host.metrics() {
        m.connections.incr();
        m.active_connections.add(1);
    }
    drive_connection(stream, host, stop);
    if let Some(m) = host.metrics() {
        m.active_connections.add(-1);
    }
}

/// Runs one connection to completion. Every exit path has already sent
/// whatever goodbye frame it could; errors never escape to the pool.
fn drive_connection(stream: &mut TcpStream, host: &EngineHost, stop: &StopFlag) {
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err()
        || stream.set_write_timeout(Some(WRITE_TIMEOUT)).is_err()
    {
        return;
    }
    let mut hello_done = false;
    loop {
        let payload = match wire::read_frame_from(stream) {
            Ok(FrameIn::Frame(payload)) => payload,
            Ok(FrameIn::Idle) => {
                if stop.is_set() {
                    return;
                }
                continue;
            }
            Ok(FrameIn::Closed) => return,
            Err(e) => {
                note_frame_error(host);
                let (code, message) = match &e {
                    NetError::Torn => (ErrorCode::BadFrame, "torn frame".to_owned()),
                    NetError::Corrupt { context } => {
                        (ErrorCode::BadFrame, format!("corrupt frame: {context}"))
                    }
                    other => (ErrorCode::Internal, other.to_string()),
                };
                // Best effort: the peer that sent garbage may be gone.
                let _ = send_response(stream, host, &Response::Error { code, message });
                return;
            }
        };
        if let Some(m) = host.metrics() {
            m.frames_in.incr();
        }
        let request = match wire::decode_request(&payload) {
            Ok(request) => request,
            Err(e) => {
                note_frame_error(host);
                let _ = send_response(
                    stream,
                    host,
                    &Response::Error {
                        code: ErrorCode::BadFrame,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        if !hello_done {
            match request {
                Request::Hello { version: VERSION } => {
                    if send_response(stream, host, &Response::HelloOk { version: VERSION }).is_err()
                    {
                        return;
                    }
                    hello_done = true;
                    continue;
                }
                Request::Hello { version } => {
                    let _ = send_response(
                        stream,
                        host,
                        &Response::Error {
                            code: ErrorCode::UnsupportedVersion,
                            message: format!(
                                "server speaks version {VERSION}, client offered {version}"
                            ),
                        },
                    );
                    return;
                }
                _ => {
                    note_frame_error(host);
                    let _ = send_response(
                        stream,
                        host,
                        &Response::Error {
                            code: ErrorCode::BadFrame,
                            message: "first frame must be the Hello handshake".to_owned(),
                        },
                    );
                    return;
                }
            }
        }
        let response = dispatch(host, request);
        if send_response(stream, host, &response).is_err() {
            return;
        }
    }
}

fn dispatch(host: &EngineHost, request: Request) -> Response {
    match request {
        Request::Hello { .. } => Response::Error {
            code: ErrorCode::BadFrame,
            message: "duplicate Hello handshake".to_owned(),
        },
        Request::OpenSession(spec) => host.open_session(&spec),
        Request::SubmitWave {
            session,
            writes,
            run_wave,
        } => host.submit(session, writes, run_wave),
        Request::QueryDecisions { session, from_wave } => host.query_decisions(session, from_wave),
        Request::QueryStore { session } => host.query_store(session),
        Request::Drain { session } => host.drain(session),
        Request::Close { session } => host.close(session),
    }
}

fn send_response(
    stream: &mut TcpStream,
    host: &EngineHost,
    response: &Response,
) -> Result<(), NetError> {
    match wire::write_frame_to(stream, &wire::encode_response(response)) {
        Ok(()) => {}
        // The response (e.g. a StoreImage past MAX_FRAME), not the
        // connection, is at fault — and nothing hit the stream, so the
        // client gets a diagnosable typed error on a connection that
        // stays alive instead of a corrupt-frame failure that kills it.
        Err(NetError::FrameTooLarge { len }) => {
            wire::write_frame_to(
                stream,
                &wire::encode_response(&Response::Error {
                    code: ErrorCode::SessionFailed,
                    message: format!(
                        "response of {len} bytes exceeds the {} byte frame limit",
                        wire::MAX_FRAME
                    ),
                }),
            )?;
        }
        Err(e) => return Err(e),
    }
    if let Some(m) = host.metrics() {
        m.frames_out.incr();
    }
    Ok(())
}

fn note_frame_error(host: &EngineHost) {
    if let Some(m) = host.metrics() {
        m.frame_errors.incr();
    }
}

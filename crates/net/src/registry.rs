//! The host's workload registry: name → workflow builder + base config.
//!
//! Clients never ship code over the wire; [`Request::OpenSession`] names
//! a workload the host operator registered up front. Each entry pairs a
//! builder closure (creates the containers on a fresh [`DataStore`] and
//! returns the bound [`Workflow`]) with the base [`EngineConfig`] for
//! sessions of that workload — the session spec may then override the
//! seed and training-phase length per session.
//!
//! [`Request::OpenSession`]: crate::wire::Request::OpenSession

use std::collections::HashMap;
use std::sync::Arc;

use smartflux::EngineConfig;
use smartflux_datastore::DataStore;
use smartflux_wms::Workflow;

/// A shareable workflow constructor. Must be deterministic: building the
/// same workload twice (on two fresh stores) must yield workflows that
/// behave identically over the same waves, which is what makes resumed
/// durable sessions and the net/in-process equivalence guarantee hold.
pub type WorkflowBuilder = Arc<dyn Fn(&DataStore) -> Workflow + Send + Sync>;

#[derive(Clone)]
struct Entry {
    config: EngineConfig,
    builder: WorkflowBuilder,
}

/// Named workloads an [`EngineHost`] can open sessions over.
///
/// [`EngineHost`]: crate::host::EngineHost
#[derive(Clone, Default)]
pub struct WorkflowRegistry {
    entries: HashMap<String, Entry>,
}

impl WorkflowRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name`, replacing any previous entry of the same name.
    pub fn register<F>(&mut self, name: impl Into<String>, config: EngineConfig, builder: F)
    where
        F: Fn(&DataStore) -> Workflow + Send + Sync + 'static,
    {
        self.entries.insert(
            name.into(),
            Entry {
                config,
                builder: Arc::new(builder),
            },
        );
    }

    /// Whether `name` is registered.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Registered workload names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.entries.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of registered workloads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The base config and builder for `name`.
    pub(crate) fn get(&self, name: &str) -> Option<(EngineConfig, WorkflowBuilder)> {
        self.entries
            .get(name)
            .map(|e| (e.config.clone(), Arc::clone(&e.builder)))
    }
}

impl std::fmt::Debug for WorkflowRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkflowRegistry")
            .field("workloads", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = WorkflowRegistry::new();
        assert!(reg.is_empty());
        reg.register("b", EngineConfig::new(), |_store| unreachable!());
        reg.register(
            "a",
            EngineConfig::new().with_seed(7),
            |_store| unreachable!(),
        );
        assert_eq!(reg.len(), 2);
        assert!(reg.contains("a"));
        assert!(!reg.contains("c"));
        assert_eq!(reg.names(), vec!["a", "b"]);
        assert!(reg.get("a").is_some());
        assert!(reg.get("c").is_none());
    }
}

//! The multi-session engine host.
//!
//! An [`EngineHost`] multiplexes N independent SmartFlux sessions — each
//! with its own [`SmartFluxSession`] (engine + sharded store + optional
//! WAL) — over a fixed pool of worker threads. Mutating requests
//! (submissions, drain, close) are queued per session and executed
//! strictly FIFO by whichever worker wins the session's mutex, so one
//! slow session never blocks the others while each individual session
//! stays single-threaded and deterministic. Queues are bounded: a
//! submission that arrives with the queue full is rejected immediately
//! with [`Response::Busy`] instead of absorbing unbounded memory.
//!
//! Scheduling works on tickets: a job enqueued onto an *idle* session
//! sends that session's slot down one shared unbounded channel; the
//! ticket wakes one worker, which becomes the session's sole server —
//! it locks the session, pops jobs FIFO, and after each job either
//! parks the session (queue empty) or re-sends the ticket so other
//! sessions' work interleaves fairly across the pool. At most one
//! worker ever serves a given session, so a slow session costs the
//! pool exactly one thread, and every queued job is answered either by
//! its session's server or by the close/kill drain paths — never
//! stranded.
//!
//! Shutdown comes in two flavours:
//!
//! - [`shutdown`](EngineHost::shutdown) — orderly drain: stop admitting,
//!   let the workers finish every queued job, join them, then checkpoint
//!   every durable session so [`SmartFluxSession::recover`] resumes
//!   exactly where processing stopped.
//! - [`kill`](EngineHost::kill) — simulated crash: queued jobs are
//!   answered with a `shutting-down` error and **no** checkpoint is
//!   written, leaving recovery to the periodic checkpoint + WAL exactly
//!   as a real crash would.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use smartflux::{CoreError, DurabilityError, DurabilityOptions, SmartFluxSession, SyncPolicy};
use smartflux_datastore::DataStore;
use smartflux_durability::encode_store_state;
use smartflux_telemetry::{names, Counter, Gauge, Telemetry};
use smartflux_wms::StepId;

use crate::registry::WorkflowRegistry;
use crate::wire::{ContainerWrite, DecisionRow, ErrorCode, Response, SessionSpec, WaveReport};

/// Tuning knobs for an [`EngineHost`].
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Worker threads executing queued session jobs.
    pub workers: usize,
    /// Per-session bound on queued (not yet executing) jobs; a
    /// submission beyond it is answered with [`Response::Busy`].
    pub queue_capacity: usize,
    /// Root directory for durable sessions; each session's
    /// `durable_key` becomes a subdirectory. `None` refuses durable
    /// session specs.
    pub durability_root: Option<PathBuf>,
    /// Checkpoint cadence (in waves) for durable sessions.
    pub checkpoint_interval: u64,
}

impl Default for HostConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 16,
            durability_root: None,
            checkpoint_interval: 20,
        }
    }
}

impl HostConfig {
    /// Default knobs.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-session queue bound.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Enables durable sessions under `root`.
    #[must_use]
    pub fn with_durability_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.durability_root = Some(root.into());
        self
    }

    /// Sets the durable sessions' checkpoint cadence.
    #[must_use]
    pub fn with_checkpoint_interval(mut self, waves: u64) -> Self {
        self.checkpoint_interval = waves;
        self
    }
}

/// Cached metric handles so the hot paths never re-resolve names and the
/// whole registry walk happens once, behind a single enabled check.
pub(crate) struct NetMetrics {
    pub(crate) connections: Arc<Counter>,
    pub(crate) active_connections: Arc<Gauge>,
    pub(crate) frames_in: Arc<Counter>,
    pub(crate) frames_out: Arc<Counter>,
    pub(crate) frame_errors: Arc<Counter>,
    busy_rejections: Arc<Counter>,
    sessions_open: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
}

impl NetMetrics {
    fn build(telemetry: &Telemetry) -> Option<Self> {
        if !telemetry.is_enabled() {
            return None;
        }
        Some(Self {
            connections: telemetry.counter(names::NET_CONNECTIONS),
            active_connections: telemetry.gauge(names::NET_ACTIVE_CONNECTIONS),
            frames_in: telemetry.counter(names::NET_FRAMES_IN),
            frames_out: telemetry.counter(names::NET_FRAMES_OUT),
            frame_errors: telemetry.counter(names::NET_FRAME_ERRORS),
            busy_rejections: telemetry.counter(names::NET_BUSY_REJECTIONS),
            sessions_open: telemetry.gauge(names::NET_SESSIONS_OPEN),
            queue_depth: telemetry.gauge(names::NET_QUEUE_DEPTH),
        })
    }
}

enum JobRequest {
    Submit {
        writes: Vec<ContainerWrite>,
        run_wave: bool,
    },
    Drain,
    Close,
}

struct Job {
    request: JobRequest,
    reply: Sender<Response>,
}

/// Queue state behind one mutex, so admission, close, and the serving
/// hand-off all agree on a single interleaving.
#[derive(Default)]
struct SessionQueue {
    /// Pending jobs, strictly FIFO.
    jobs: VecDeque<Job>,
    /// True while a ticket for this session is in flight or a worker is
    /// serving it. [`EngineHost::enqueue`] sends a ticket only on the
    /// idle→serving transition; the server clears the flag only after
    /// observing an empty queue under this mutex.
    serving: bool,
    /// Set (under this mutex) by the Close job *before* it drains
    /// leftovers; `enqueue` checks it under the same lock, so no job
    /// can slip in after the drain and sit in a queue nothing serves.
    closed: bool,
}

struct SessionSlot {
    id: u64,
    durable: bool,
    /// `None` once the session is closed. Lock order: this mutex is
    /// always acquired *before* `queue` and before the host-wide
    /// `sessions` map lock; never the other way around.
    session: Mutex<Option<SmartFluxSession>>,
    queue: Mutex<SessionQueue>,
}

struct HostInner {
    registry: WorkflowRegistry,
    config: HostConfig,
    telemetry: Telemetry,
    metrics: Option<NetMetrics>,
    sessions: RwLock<HashMap<u64, Arc<SessionSlot>>>,
    // tidy:atomic(next_id: relaxed): id allocator — only uniqueness matters, no ordering with other state
    next_id: AtomicU64,
    /// `None` once shutdown begins; cloned out (single statement) before
    /// each send so the channel is never used under the mutex.
    tickets: Mutex<Option<Sender<Arc<SessionSlot>>>>,
    /// Workers share the single receiver; `recv` under the mutex *is*
    /// the dispatch protocol (the holder parks until a ticket arrives,
    /// takes it, and releases before executing). The receiver lives
    /// here for the host's whole lifetime, so a ticket send through a
    /// live sender clone can never fail.
    ticket_rx: Mutex<Receiver<Arc<SessionSlot>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    // tidy:atomic(accepting: acq-rel): admission flag — the release store at shutdown publishes the decision, acquire loads in request paths observe it; no total order needed
    accepting: AtomicBool,
    // tidy:atomic(abort: acq-rel): kill switch — release store in kill(), acquire loads in workers skip queued jobs after it
    abort: AtomicBool,
}

/// Outcome of an orderly [`EngineHost::shutdown`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Durable sessions whose close-time checkpoint was written.
    pub checkpointed: usize,
    /// Close-time checkpoint failures, one `session <id>: <error>` line
    /// each. Durable sessions run under `SyncPolicy::Never`, so a
    /// session listed here may have an unsynced WAL tail — an orderly
    /// shutdown with failures must not be treated as clean.
    pub checkpoint_failures: Vec<String>,
}

/// The multi-session engine host (cheaply cloneable handle).
///
/// Dropping the last handle without calling [`shutdown`](Self::shutdown)
/// or [`kill`](Self::kill) leaves the worker threads parked until
/// process exit (they hold their own references); orderly teardown is
/// the caller's job, exactly like [`ListenerPool`].
///
/// [`ListenerPool`]: smartflux_obs::ListenerPool
#[derive(Clone)]
pub struct EngineHost {
    inner: Arc<HostInner>,
}

impl EngineHost {
    /// Starts the host's worker pool over `registry`.
    ///
    /// `telemetry` receives the `net.*` counters, gauges, and the
    /// submit-latency histogram when enabled; pass
    /// [`Telemetry::disabled`] to make every instrumentation site
    /// short-circuit.
    #[must_use]
    pub fn new(registry: WorkflowRegistry, config: HostConfig, telemetry: Telemetry) -> Self {
        let (ticket_tx, ticket_rx) = unbounded();
        let inner = Arc::new(HostInner {
            registry,
            metrics: NetMetrics::build(&telemetry),
            telemetry,
            sessions: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            tickets: Mutex::new(Some(ticket_tx)),
            ticket_rx: Mutex::new(ticket_rx),
            workers: Mutex::new(Vec::new()),
            accepting: AtomicBool::new(true),
            abort: AtomicBool::new(false),
            config: inner_config(config),
        });
        let workers: Vec<JoinHandle<()>> = (0..inner.config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        *inner.workers.lock() = workers;
        Self { inner }
    }

    /// The host's telemetry handle (where `net.*` metrics land).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    pub(crate) fn metrics(&self) -> Option<&NetMetrics> {
        self.inner.metrics.as_ref()
    }

    /// Number of currently open sessions.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.inner.sessions.read().len()
    }

    /// Opens (or, with `spec.resume`, resumes) a session.
    ///
    /// Overrides from the spec (seed, training waves) are applied on top
    /// of the registered base config. A durable spec whose key has no
    /// checkpoint yet falls back to a fresh session with
    /// `resumed = false` — first boot and restart then share one client
    /// code path.
    #[must_use]
    pub fn open_session(&self, spec: &SessionSpec) -> Response {
        let inner = &self.inner;
        if !inner.accepting.load(Ordering::Acquire) {
            return error_response(ErrorCode::ShuttingDown, "host is shutting down");
        }
        let Some((mut config, builder)) = inner.registry.get(&spec.workload) else {
            return error_response(
                ErrorCode::UnknownWorkload,
                &format!("no workload `{}` is registered", spec.workload),
            );
        };
        if let Some(seed) = spec.seed {
            config = config.with_seed(seed);
        }
        if let Some(waves) = spec.training_waves {
            config = config.with_training_waves(waves as usize);
        }
        let mut durable = false;
        if let Some(key) = &spec.durable_key {
            let Some(root) = &inner.config.durability_root else {
                return error_response(
                    ErrorCode::Internal,
                    "host has no durability root; durable sessions are unavailable",
                );
            };
            if key.is_empty() || key.contains(['/', '\\', '.']) {
                return error_response(
                    ErrorCode::Internal,
                    &format!("durable key `{key}` must be a plain directory name"),
                );
            }
            config = config.with_durability(
                DurabilityOptions::new(root.join(key))
                    .with_sync(SyncPolicy::Never)
                    .with_checkpoint_interval(inner.config.checkpoint_interval),
            );
            durable = true;
        }

        let mut resumed = false;
        let session = if durable && spec.resume {
            // Recovery builds the store itself from the checkpoint; the
            // builder only runs to reconstruct the (stateless) workflow
            // graph, so it gets a throwaway store.
            let throwaway = DataStore::new();
            let workflow = builder(&throwaway);
            match SmartFluxSession::recover(workflow, config.clone()) {
                Ok(session) => {
                    resumed = true;
                    Ok(session)
                }
                Err(CoreError::Durability(DurabilityError::NoCheckpoint(_))) => {
                    fresh_session(&builder, config)
                }
                Err(e) => Err(e),
            }
        } else {
            fresh_session(&builder, config)
        };
        let session = match session {
            Ok(session) => session,
            Err(e) => {
                return error_response(
                    ErrorCode::SessionFailed,
                    &format!("session construction failed: {e}"),
                )
            }
        };

        let next_wave = session.scheduler().next_wave();
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(SessionSlot {
            id,
            durable,
            session: Mutex::new(Some(session)),
            queue: Mutex::new(SessionQueue::default()),
        });
        inner.sessions.write().insert(id, slot);
        if let Some(m) = &inner.metrics {
            m.sessions_open.add(1);
        }
        Response::SessionOpened {
            session: id,
            resumed,
            next_wave,
        }
    }

    /// Queues a batch of container writes (plus, with `run_wave`, one
    /// wave trigger) and blocks until the worker pool executes it.
    ///
    /// Returns [`Response::Busy`] immediately — without queueing — when
    /// the session's queue is at capacity.
    #[must_use]
    pub fn submit(&self, session: u64, writes: Vec<ContainerWrite>, run_wave: bool) -> Response {
        self.enqueue(session, JobRequest::Submit { writes, run_wave }, false)
    }

    /// Blocks until every job queued before this call has executed.
    /// Control jobs bypass the queue-capacity bound.
    #[must_use]
    pub fn drain(&self, session: u64) -> Response {
        self.enqueue(session, JobRequest::Drain, true)
    }

    /// Closes `session` after the jobs already queued ahead of it,
    /// checkpointing first when the session is durable.
    #[must_use]
    pub fn close(&self, session: u64) -> Response {
        self.enqueue(session, JobRequest::Close, true)
    }

    /// Reads per-wave decision rows from `from_wave` onward. Runs on the
    /// caller's thread (it only waits for the session mutex, not for the
    /// session's queue to drain).
    #[must_use]
    pub fn query_decisions(&self, session: u64, from_wave: u64) -> Response {
        let Some(slot) = self.slot(session) else {
            return unknown_session(session);
        };
        let guard = slot.session.lock();
        let Some(live) = guard.as_ref() else {
            return unknown_session(session);
        };
        let rows = live.engine().with(|e| {
            e.diagnostics()
                .iter()
                .filter(|d| d.wave >= from_wave)
                .map(|d| DecisionRow {
                    wave: d.wave,
                    training: d.training,
                    impacts: d.impacts.clone(),
                    decisions: d.decisions.clone(),
                })
                .collect()
        });
        Response::Decisions { rows }
    }

    /// Reads the session's full store image (durability encoding) and
    /// logical clock. Runs on the caller's thread.
    #[must_use]
    pub fn query_store(&self, session: u64) -> Response {
        let Some(slot) = self.slot(session) else {
            return unknown_session(session);
        };
        let guard = slot.session.lock();
        let Some(live) = guard.as_ref() else {
            return unknown_session(session);
        };
        let store = live.scheduler().store();
        let bytes = encode_store_state(&store.export_state());
        Response::StoreImage {
            clock: store.clock(),
            bytes,
        }
    }

    /// Orderly shutdown: stops admitting requests, lets the workers
    /// finish every queued job, joins them, then checkpoints and closes
    /// every durable session. The report counts the checkpoints written
    /// and lists every checkpoint that *failed* — a failure means the
    /// session's WAL tail may be unsynced, so callers must not fold it
    /// into "nothing to checkpoint". Idempotent.
    pub fn shutdown(&self) -> ShutdownReport {
        let inner = &self.inner;
        inner.accepting.store(false, Ordering::Release);
        drop(inner.tickets.lock().take());
        let workers = std::mem::take(&mut *inner.workers.lock());
        for worker in workers {
            let _ = worker.join();
        }
        let slots: Vec<Arc<SessionSlot>> = inner
            .sessions
            .write()
            .drain()
            .map(|(_, slot)| slot)
            .collect();
        let mut report = ShutdownReport::default();
        for slot in slots {
            let taken = slot.session.lock().take();
            if let Some(mut session) = taken {
                if let Some(m) = &inner.metrics {
                    m.sessions_open.add(-1);
                }
                if slot.durable {
                    match session.checkpoint() {
                        Ok(true) => report.checkpointed += 1,
                        Ok(false) => {}
                        Err(e) => report
                            .checkpoint_failures
                            .push(format!("session {}: {e}", slot.id)),
                    }
                }
            }
        }
        report
    }

    /// Simulated crash: queued jobs are answered with a
    /// `shutting-down` error, workers are joined, and **no** checkpoint
    /// is written — durable sessions must come back through
    /// [`SmartFluxSession::recover`] from their last periodic
    /// checkpoint, exactly as after a real crash. Idempotent.
    pub fn kill(&self) {
        let inner = &self.inner;
        inner.accepting.store(false, Ordering::Release);
        inner.abort.store(true, Ordering::Release);
        drop(inner.tickets.lock().take());
        let workers = std::mem::take(&mut *inner.workers.lock());
        for worker in workers {
            let _ = worker.join();
        }
        let slots: Vec<Arc<SessionSlot>> = inner
            .sessions
            .write()
            .drain()
            .map(|(_, slot)| slot)
            .collect();
        for slot in slots {
            // Belt and braces: the abort path drained every served
            // session, but any straggler still queued gets a typed
            // reply rather than a hang.
            let leftovers = std::mem::take(&mut slot.queue.lock().jobs);
            for job in leftovers {
                if let Some(m) = &inner.metrics {
                    m.queue_depth.add(-1);
                }
                let _ = job
                    .reply
                    .send(error_response(ErrorCode::ShuttingDown, "host killed"));
            }
            let taken = slot.session.lock().take();
            if taken.is_some() {
                if let Some(m) = &inner.metrics {
                    m.sessions_open.add(-1);
                }
            }
        }
    }

    fn slot(&self, id: u64) -> Option<Arc<SessionSlot>> {
        self.inner.sessions.read().get(&id).cloned()
    }

    fn enqueue(&self, id: u64, request: JobRequest, control: bool) -> Response {
        let inner = &self.inner;
        if !inner.accepting.load(Ordering::Acquire) {
            return error_response(ErrorCode::ShuttingDown, "host is shutting down");
        }
        let Some(slot) = self.slot(id) else {
            return unknown_session(id);
        };
        // Clone the sender out first: holding a clone keeps the channel
        // alive, so a ticket sent below is guaranteed to be drained by a
        // worker even if shutdown takes the original concurrently.
        let ticket_tx = inner.tickets.lock().clone();
        let Some(ticket_tx) = ticket_tx else {
            return error_response(ErrorCode::ShuttingDown, "host is shutting down");
        };
        let (reply_tx, reply_rx) = unbounded();
        // Simulation mutation: reintroduce the PR 9 close-vs-submit race
        // for the harness to catch — widen the window between the map
        // lookup above and the queue admission below, so a concurrent
        // close can complete in between.
        if cfg!(sim_mutation) && !control {
            std::thread::sleep(std::time::Duration::from_millis(4));
        }
        let schedule = {
            let mut queue = slot.queue.lock();
            // Checked under the queue mutex the Close drain also holds:
            // either this job lands before the drain (and is answered by
            // it), or it observes `closed` — it can never be pushed into
            // a queue nothing will ever serve again. (Skipped under the
            // sim mutation: the reintroduced bug admits jobs to a closed
            // queue.)
            if cfg!(not(sim_mutation)) && queue.closed {
                return unknown_session(id);
            }
            if !control && queue.jobs.len() >= inner.config.queue_capacity {
                let depth = queue.jobs.len() as u32;
                drop(queue);
                if let Some(m) = &inner.metrics {
                    m.busy_rejections.incr();
                }
                return Response::Busy { session: id, depth };
            }
            queue.jobs.push_back(Job {
                request,
                reply: reply_tx,
            });
            !std::mem::replace(&mut queue.serving, true)
        };
        if let Some(m) = &inner.metrics {
            m.queue_depth.add(1);
        }
        if schedule {
            // Idle→serving transition: wake one worker for this session.
            // The receiver lives in `HostInner` for the host's lifetime,
            // so this send cannot fail while we hold a sender clone.
            let _ = ticket_tx.send(Arc::clone(&slot));
        }
        match reply_rx.recv() {
            Ok(response) => response,
            Err(_) => error_response(ErrorCode::ShuttingDown, "host shut down before replying"),
        }
    }
}

impl std::fmt::Debug for EngineHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHost")
            .field("sessions", &self.session_count())
            .field("workloads", &self.inner.registry.names())
            .finish()
    }
}

fn inner_config(mut config: HostConfig) -> HostConfig {
    config.workers = config.workers.max(1);
    config.queue_capacity = config.queue_capacity.max(1);
    config.checkpoint_interval = config.checkpoint_interval.max(1);
    config
}

fn fresh_session(
    builder: &crate::registry::WorkflowBuilder,
    config: smartflux::EngineConfig,
) -> Result<SmartFluxSession, CoreError> {
    let store = DataStore::new();
    let workflow = builder(&store);
    SmartFluxSession::new(workflow, store, config)
}

fn error_response(code: ErrorCode, message: &str) -> Response {
    Response::Error {
        code,
        message: message.to_owned(),
    }
}

fn unknown_session(id: u64) -> Response {
    error_response(ErrorCode::UnknownSession, &format!("no open session {id}"))
}

fn worker_loop(inner: &HostInner) {
    loop {
        // The receiver is shared through the mutex: the holder parks in
        // recv until a ticket arrives, then releases the guard (end of
        // statement) before executing, so dispatch stays concurrent.
        let ticket = inner.ticket_rx.lock().recv();
        match ticket {
            Ok(slot) => run_one(inner, &slot),
            // All senders gone: shutdown drained every buffered ticket.
            Err(_) => return,
        }
    }
}

/// Serves queued jobs of one session. The ticket carries the slot
/// itself (never a map lookup — a job stays reachable even after its
/// session leaves the map), and the `serving` flag guarantees at most
/// one worker is in here per session, so a slow session occupies
/// exactly one pool thread. After each job the remaining work is
/// handed back through the ticket channel so other sessions interleave
/// fairly; once shutdown has taken the channel, the drain finishes
/// inline instead.
fn run_one(inner: &HostInner, slot: &Arc<SessionSlot>) {
    let id = slot.id;
    loop {
        let mut session_guard = slot.session.lock();
        let job = {
            let mut queue = slot.queue.lock();
            match queue.jobs.pop_front() {
                Some(job) => job,
                None => {
                    queue.serving = false;
                    return;
                }
            }
        };
        if let Some(m) = &inner.metrics {
            m.queue_depth.add(-1);
        }
        if inner.abort.load(Ordering::Acquire) {
            drop(session_guard);
            let _ = job
                .reply
                .send(error_response(ErrorCode::ShuttingDown, "host killed"));
        } else {
            match job.request {
                JobRequest::Submit { writes, run_wave } => {
                    let response = match session_guard.as_mut() {
                        Some(session) => execute_submit(inner, session, &writes, run_wave),
                        None => unknown_session(id),
                    };
                    drop(session_guard);
                    let _ = job.reply.send(response);
                }
                JobRequest::Drain => {
                    let response = match session_guard.as_ref() {
                        Some(session) => Response::Drained {
                            session: id,
                            executed_waves: session.executed_waves(),
                        },
                        None => unknown_session(id),
                    };
                    drop(session_guard);
                    let _ = job.reply.send(response);
                }
                JobRequest::Close => {
                    let taken = session_guard.take();
                    // Jobs enqueued after the close (FIFO) die with the
                    // session: `closed` flips under the queue mutex, so
                    // every concurrent enqueue either landed in these
                    // leftovers or observes the flag and is refused.
                    let leftovers = {
                        let mut queue = slot.queue.lock();
                        queue.closed = true;
                        std::mem::take(&mut queue.jobs)
                    };
                    inner.sessions.write().remove(&id);
                    drop(session_guard);
                    let response = match taken {
                        None => unknown_session(id),
                        Some(mut session) => {
                            if let Some(m) = &inner.metrics {
                                m.sessions_open.add(-1);
                            }
                            if slot.durable {
                                match session.checkpoint() {
                                    Ok(_) => Response::Closed { session: id },
                                    Err(e) => error_response(
                                        ErrorCode::SessionFailed,
                                        &format!("close-time checkpoint failed: {e}"),
                                    ),
                                }
                            } else {
                                Response::Closed { session: id }
                            }
                        }
                    };
                    for leftover in leftovers {
                        if let Some(m) = &inner.metrics {
                            m.queue_depth.add(-1);
                        }
                        let _ = leftover.reply.send(error_response(
                            ErrorCode::UnknownSession,
                            "session closed before the job ran",
                        ));
                    }
                    let _ = job.reply.send(response);
                    // Simulation mutation: the reintroduced PR 9 bug
                    // assumed the drain emptied the queue and stopped
                    // serving here without re-checking (or clearing
                    // `serving`), stranding any job the racing enqueue
                    // slipped in after the drain.
                    if cfg!(sim_mutation) {
                        return;
                    }
                }
            }
        }
        {
            let mut queue = slot.queue.lock();
            if queue.jobs.is_empty() {
                queue.serving = false;
                return;
            }
        }
        // More work queued: hand the session back through the channel so
        // other sessions' tickets get a turn on this thread. When
        // shutdown/kill already took the channel, keep draining inline —
        // every queued job must still be answered.
        let handoff = inner.tickets.lock().clone();
        match handoff {
            Some(tx) if tx.send(Arc::clone(slot)).is_ok() => return,
            _ => {}
        }
    }
}

fn execute_submit(
    inner: &HostInner,
    session: &mut SmartFluxSession,
    writes: &[ContainerWrite],
    run_wave: bool,
) -> Response {
    let store = session.scheduler().store().clone();
    for w in writes {
        if let Err(e) = store.put(&w.table, &w.family, &w.row, &w.qualifier, w.value.clone()) {
            return error_response(
                ErrorCode::SessionFailed,
                &format!("write to {}/{}/{} failed: {e}", w.table, w.family, w.row),
            );
        }
    }
    if !run_wave {
        return Response::Ingested {
            count: writes.len() as u32,
            clock: store.clock(),
        };
    }
    let wave = session.scheduler().next_wave();
    // Server-side submit→result latency; the span records into the
    // `net.submit` histogram on drop (and is inert when telemetry is
    // off). Client-perceived latency is the bench harness's job — this
    // crate never reads a clock itself.
    let span = inner.telemetry.span(names::NET_SUBMIT_LATENCY, wave);
    let outcome = session.run_wave();
    drop(span);
    match outcome {
        Ok(outcome) => {
            let training = session
                .engine()
                .with(|e| e.diagnostics().last().map(|d| d.training))
                .unwrap_or(false);
            let graph_names = |ids: &[StepId]| -> Vec<String> {
                let graph = session.scheduler().workflow().graph();
                ids.iter().map(|s| graph.step_name(*s).to_owned()).collect()
            };
            Response::WaveResult(WaveReport {
                wave: outcome.wave,
                training,
                clock: store.clock(),
                executed: graph_names(&outcome.executed),
                skipped: graph_names(&outcome.skipped),
                deferred: graph_names(&outcome.deferred),
            })
        }
        Err(e) => error_response(ErrorCode::SessionFailed, &format!("wave failed: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartflux::EngineConfig;
    use smartflux_datastore::{ContainerRef, Value};
    use smartflux_wms::{FnStep, GraphBuilder, StepContext, Workflow};

    fn ramp_workflow(store: &DataStore) -> Workflow {
        let raw = ContainerRef::family("t", "raw");
        let out = ContainerRef::family("t", "out");
        store.ensure_container(&raw).unwrap();
        store.ensure_container(&out).unwrap();
        let mut g = GraphBuilder::new("ramp");
        let feed = g.add_step("feed");
        let agg = g.add_step("agg");
        g.add_edge(feed, agg).unwrap();
        let mut wf = Workflow::new(g.build().unwrap());
        wf.bind(
            feed,
            FnStep::new(|ctx: &StepContext| {
                let w = ctx.wave() as f64;
                ctx.put("t", "raw", "r", "v", Value::from(100.0 + w))?;
                Ok(())
            }),
        )
        .source()
        .writes(raw.clone());
        wf.bind(
            agg,
            FnStep::new(|ctx: &StepContext| {
                let v = ctx.get_f64("t", "raw", "r", "v", 0.0)?;
                ctx.put("t", "out", "r", "v", Value::from(v))?;
                Ok(())
            }),
        )
        .reads(raw)
        .writes(out)
        .error_bound(0.05);
        wf
    }

    fn test_registry() -> WorkflowRegistry {
        let mut registry = WorkflowRegistry::new();
        registry.register(
            "ramp",
            EngineConfig::new()
                .with_training_waves(10)
                .with_quality_gates(0.3, 0.3)
                .with_seed(1),
            ramp_workflow,
        );
        registry
    }

    fn open(host: &EngineHost, spec: &SessionSpec) -> u64 {
        match host.open_session(spec) {
            Response::SessionOpened { session, .. } => session,
            other => panic!("open failed: {other:?}"),
        }
    }

    #[test]
    fn open_submit_query_drain_close() {
        let host = EngineHost::new(test_registry(), HostConfig::new(), Telemetry::disabled());
        let id = open(
            &host,
            &SessionSpec {
                workload: "ramp".into(),
                ..SessionSpec::default()
            },
        );
        assert_eq!(host.session_count(), 1);

        for wave in 1..=12u64 {
            match host.submit(id, vec![], true) {
                Response::WaveResult(report) => {
                    assert_eq!(report.wave, wave);
                    assert_eq!(report.training, wave <= 10);
                    assert!(report.clock > 0);
                    assert_eq!(report.executed.len() + report.skipped.len(), 2);
                }
                other => panic!("submit failed: {other:?}"),
            }
        }

        match host.query_decisions(id, 11) {
            Response::Decisions { rows } => {
                assert_eq!(rows.len(), 2);
                assert!(rows.iter().all(|r| !r.training));
            }
            other => panic!("query failed: {other:?}"),
        }
        match host.query_store(id) {
            Response::StoreImage { clock, bytes } => {
                assert!(clock > 0);
                let state = smartflux_durability::decode_store_state(&bytes).unwrap();
                let restored = DataStore::from_state(state).unwrap();
                assert_eq!(restored.clock(), clock);
            }
            other => panic!("store query failed: {other:?}"),
        }
        assert!(matches!(
            host.drain(id),
            Response::Drained {
                executed_waves: 12,
                ..
            }
        ));
        assert!(matches!(host.close(id), Response::Closed { .. }));
        assert_eq!(host.session_count(), 0);
        assert!(matches!(
            host.submit(id, vec![], true),
            Response::Error {
                code: ErrorCode::UnknownSession,
                ..
            }
        ));
        host.shutdown();
    }

    #[test]
    fn ingest_only_writes_are_visible_to_steps() {
        let host = EngineHost::new(test_registry(), HostConfig::new(), Telemetry::disabled());
        let id = open(
            &host,
            &SessionSpec {
                workload: "ramp".into(),
                ..SessionSpec::default()
            },
        );
        let write = ContainerWrite {
            table: "t".into(),
            family: "raw".into(),
            row: "extern".into(),
            qualifier: "v".into(),
            value: Value::from(3.5),
        };
        match host.submit(id, vec![write], false) {
            Response::Ingested { count, clock } => {
                assert_eq!(count, 1);
                assert!(clock > 0);
            }
            other => panic!("ingest failed: {other:?}"),
        }
        host.shutdown();
    }

    #[test]
    fn unknown_workload_and_session_are_typed() {
        let host = EngineHost::new(test_registry(), HostConfig::new(), Telemetry::disabled());
        assert!(matches!(
            host.open_session(&SessionSpec {
                workload: "nope".into(),
                ..SessionSpec::default()
            }),
            Response::Error {
                code: ErrorCode::UnknownWorkload,
                ..
            }
        ));
        assert!(matches!(
            host.submit(999, vec![], true),
            Response::Error {
                code: ErrorCode::UnknownSession,
                ..
            }
        ));
        // Durable spec without a durability root is refused up front.
        assert!(matches!(
            host.open_session(&SessionSpec {
                workload: "ramp".into(),
                durable_key: Some("k".into()),
                ..SessionSpec::default()
            }),
            Response::Error {
                code: ErrorCode::Internal,
                ..
            }
        ));
        host.shutdown();
    }

    #[test]
    fn full_queue_answers_busy_without_blocking() {
        let host = EngineHost::new(
            test_registry(),
            HostConfig::new().with_queue_capacity(2),
            Telemetry::disabled(),
        );
        let id = open(
            &host,
            &SessionSpec {
                workload: "ramp".into(),
                ..SessionSpec::default()
            },
        );
        let slot = host.slot(id).unwrap();

        // Hold the session mutex so no worker can pop jobs, fill the
        // queue from two threads, then watch the third submit bounce.
        let stall = slot.session.lock();
        let filler = |host: EngineHost| std::thread::spawn(move || host.submit(id, vec![], true));
        let a = filler(host.clone());
        let b = filler(host.clone());
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while slot.queue.lock().jobs.len() < 2 {
            assert!(std::time::Instant::now() < deadline, "queue never filled");
            std::thread::yield_now();
        }
        match host.submit(id, vec![], true) {
            Response::Busy { session, depth } => {
                assert_eq!(session, id);
                assert_eq!(depth, 2);
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        drop(stall);
        assert!(matches!(a.join().unwrap(), Response::WaveResult(_)));
        assert!(matches!(b.join().unwrap(), Response::WaveResult(_)));
        host.shutdown();
    }

    /// Regression: a submit racing a close used to be able to push its
    /// job after the close drain; the ticket then found no slot in the
    /// map and the caller hung forever on its reply channel. Every call
    /// below must return (with a typed answer), never hang.
    #[test]
    fn concurrent_close_and_submit_never_strand_a_caller() {
        for _ in 0..25 {
            let host = EngineHost::new(
                test_registry(),
                HostConfig::new().with_workers(2),
                Telemetry::disabled(),
            );
            let id = open(
                &host,
                &SessionSpec {
                    workload: "ramp".into(),
                    ..SessionSpec::default()
                },
            );
            let submitters: Vec<_> = (0..4)
                .map(|_| {
                    let host = host.clone();
                    std::thread::spawn(move || {
                        for _ in 0..8 {
                            // Every response shape is legal here; the
                            // invariant under test is that one arrives.
                            let _ = host.submit(id, vec![], true);
                        }
                    })
                })
                .collect();
            let closer = {
                let host = host.clone();
                std::thread::spawn(move || {
                    std::thread::yield_now();
                    let _ = host.close(id);
                })
            };
            for t in submitters {
                t.join().unwrap();
            }
            closer.join().unwrap();
            host.shutdown();
        }
    }

    /// A stalled session must occupy at most one worker: with two
    /// workers and several jobs queued on a blocked session, a second
    /// session's submit still completes.
    #[test]
    fn slow_session_never_absorbs_the_whole_pool() {
        let host = EngineHost::new(
            test_registry(),
            HostConfig::new().with_workers(2),
            Telemetry::disabled(),
        );
        let spec = SessionSpec {
            workload: "ramp".into(),
            ..SessionSpec::default()
        };
        let slow = open(&host, &spec);
        let fast = open(&host, &spec);
        let slow_slot = host.slot(slow).unwrap();

        // Stall the slow session and queue three jobs on it; under the
        // old ticket-per-job scheme each would wake (and wedge) its own
        // worker, leaving none for `fast`.
        let stall = slow_slot.session.lock();
        let blocked: Vec<_> = (0..3)
            .map(|_| {
                let host = host.clone();
                std::thread::spawn(move || host.submit(slow, vec![], true))
            })
            .collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while slow_slot.queue.lock().jobs.len() < 3 {
            assert!(std::time::Instant::now() < deadline, "queue never filled");
            std::thread::yield_now();
        }

        assert!(matches!(
            host.submit(fast, vec![], true),
            Response::WaveResult(_)
        ));

        drop(stall);
        for t in blocked {
            assert!(matches!(t.join().unwrap(), Response::WaveResult(_)));
        }
        host.shutdown();
    }

    #[test]
    fn kill_answers_queued_jobs_and_zeroes_queue_depth() {
        let telemetry = Telemetry::enabled();
        let host = EngineHost::new(
            test_registry(),
            HostConfig::new().with_workers(1),
            telemetry.clone(),
        );
        let id = open(
            &host,
            &SessionSpec {
                workload: "ramp".into(),
                ..SessionSpec::default()
            },
        );
        let slot = host.slot(id).unwrap();

        // Stall the session so three submits pile up in its queue, then
        // kill the host; once the stall lifts, every queued job must be
        // answered and the depth gauge must return to zero.
        let stall = slot.session.lock();
        let blocked: Vec<_> = (0..3)
            .map(|_| {
                let host = host.clone();
                std::thread::spawn(move || host.submit(id, vec![], true))
            })
            .collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while slot.queue.lock().jobs.len() < 3 {
            assert!(std::time::Instant::now() < deadline, "queue never filled");
            std::thread::yield_now();
        }
        let killer = {
            let host = host.clone();
            std::thread::spawn(move || host.kill())
        };
        while !host.inner.abort.load(Ordering::Acquire) {
            assert!(std::time::Instant::now() < deadline, "kill never aborted");
            std::thread::yield_now();
        }
        drop(stall);
        for t in blocked {
            assert!(matches!(
                t.join().unwrap(),
                Response::Error {
                    code: ErrorCode::ShuttingDown,
                    ..
                }
            ));
        }
        killer.join().unwrap();
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.gauge(names::NET_QUEUE_DEPTH), 0);
        assert_eq!(snapshot.gauge(names::NET_SESSIONS_OPEN), 0);
    }

    #[test]
    fn shutdown_rejects_new_work_and_is_idempotent() {
        let host = EngineHost::new(test_registry(), HostConfig::new(), Telemetry::disabled());
        let id = open(
            &host,
            &SessionSpec {
                workload: "ramp".into(),
                ..SessionSpec::default()
            },
        );
        assert!(matches!(
            host.submit(id, vec![], true),
            Response::WaveResult(_)
        ));
        host.shutdown();
        assert!(matches!(
            host.submit(id, vec![], true),
            Response::Error {
                code: ErrorCode::ShuttingDown,
                ..
            }
        ));
        assert!(matches!(
            host.open_session(&SessionSpec {
                workload: "ramp".into(),
                ..SessionSpec::default()
            }),
            Response::Error {
                code: ErrorCode::ShuttingDown,
                ..
            }
        ));
        host.shutdown(); // second call is a no-op
        host.kill(); // and so is a kill after shutdown
    }

    #[test]
    fn sessions_are_independent() {
        let host = EngineHost::new(test_registry(), HostConfig::new(), Telemetry::disabled());
        let a = open(
            &host,
            &SessionSpec {
                workload: "ramp".into(),
                seed: Some(5),
                ..SessionSpec::default()
            },
        );
        let b = open(
            &host,
            &SessionSpec {
                workload: "ramp".into(),
                seed: Some(6),
                ..SessionSpec::default()
            },
        );
        assert_ne!(a, b);
        for _ in 0..3 {
            assert!(matches!(
                host.submit(a, vec![], true),
                Response::WaveResult(_)
            ));
        }
        assert!(matches!(
            host.submit(b, vec![], true),
            Response::WaveResult(_)
        ));
        match (host.drain(a), host.drain(b)) {
            (
                Response::Drained {
                    executed_waves: wa, ..
                },
                Response::Drained {
                    executed_waves: wb, ..
                },
            ) => {
                assert_eq!(wa, 3);
                assert_eq!(wb, 1);
            }
            other => panic!("drain failed: {other:?}"),
        }
        host.shutdown();
    }

    #[test]
    fn net_metrics_land_on_the_host_telemetry() {
        let telemetry = Telemetry::enabled();
        let host = EngineHost::new(test_registry(), HostConfig::new(), telemetry.clone());
        let id = open(
            &host,
            &SessionSpec {
                workload: "ramp".into(),
                ..SessionSpec::default()
            },
        );
        assert!(matches!(
            host.submit(id, vec![], true),
            Response::WaveResult(_)
        ));
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.gauge(names::NET_SESSIONS_OPEN), 1);
        assert_eq!(snapshot.gauge(names::NET_QUEUE_DEPTH), 0);
        host.shutdown();
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.gauge(names::NET_SESSIONS_OPEN), 0);
    }
}

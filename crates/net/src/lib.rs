//! SmartFlux's networked ingestion & serving plane.
//!
//! Everything below `smartflux-net` runs in one process; this crate puts
//! the engine behind a socket so external feeders and dashboards can
//! drive it. It is dependency-free by design (blocking `std::net`, like
//! the observability plane's HTTP listener) and splits into:
//!
//! - [`wire`] — the SFNP v1 framed binary protocol: `len|crc|payload`
//!   envelopes reusing the durability codec's conventions, a versioned
//!   handshake, and typed error frames. Torn and corrupt frames are
//!   distinguished exactly like WAL damage and can never panic a peer.
//! - [`registry`] — named workload catalogue
//!   ([`WorkflowRegistry`]): clients open sessions by name; code never
//!   travels over the wire.
//! - [`host`] — the [`EngineHost`]: N independent SmartFlux sessions
//!   multiplexed over a fixed worker pool, per-session FIFO queues with
//!   an explicit [`Response::Busy`] overload answer, orderly
//!   checkpoint-on-shutdown and crash-style [`EngineHost::kill`].
//! - [`server`] — [`NetServer`], the TCP front end built on the shared
//!   [`ListenerPool`](smartflux_obs::ListenerPool).
//! - [`client`] — the blocking [`Client`] library.
//!
//! The plane is *equivalence-preserving*: a workload driven through the
//! socket makes bit-for-bit the same decisions, store state, and logical
//! clock as the same workload driven in-process (the soak suite proves
//! it over a 200-wave Linear Road run with four concurrent clients).
//! `net.*` telemetry lands on the host's [`Telemetry`] handle and is
//! served by the observability plane's `/metrics` endpoint.
//!
//! [`Telemetry`]: smartflux_telemetry::Telemetry

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod host;
pub mod registry;
pub mod server;
pub mod wire;

pub use client::{Client, IngestReceipt, OpenedSession};
pub use error::NetError;
pub use host::{EngineHost, HostConfig, ShutdownReport};
pub use registry::{WorkflowBuilder, WorkflowRegistry};
pub use server::NetServer;
pub use wire::{
    ContainerWrite, DecisionRow, ErrorCode, Request, Response, SessionSpec, WaveReport, MAGIC,
    MAX_FRAME, VERSION,
};

//! The SFNP v1 wire protocol: framing, message types, and their codec.
//!
//! Every message travels in one CRC-framed envelope reusing the
//! durability layer's conventions ([`smartflux_durability::codec`]):
//!
//! ```text
//! frame   := len:u32 | crc:u32 | payload[len]     (little-endian, CRC-32 of payload)
//! payload := tag:u8 | body
//! ```
//!
//! A connection opens with a versioned handshake — [`Request::Hello`]
//! carrying the `"SFNP"` magic and the protocol version, answered by
//! [`Response::HelloOk`] or a typed [`Response::Error`] frame — then
//! carries strictly one response frame per request frame.
//!
//! Damage classification follows the WAL precedent: a stream that ends
//! mid-frame is *torn* ([`NetError::Torn`]), a complete frame whose CRC
//! or body fails validation is *corrupt* ([`NetError::Corrupt`]). Both
//! close the connection with a typed error and neither ever touches
//! session state.

use std::io::{Read, Write};

use smartflux_datastore::Value;
use smartflux_durability::codec::{
    put_bytes, put_f64, put_str, put_u16, put_u32, put_u64, put_u8, put_value, Reader,
};
use smartflux_durability::crc32;

use crate::error::NetError;

/// Handshake magic carried by [`Request::Hello`].
pub const MAGIC: [u8; 4] = *b"SFNP";

/// The protocol version this build speaks.
pub const VERSION: u16 = 1;

/// Upper bound on a frame's declared payload length. A header
/// announcing more is rejected as corrupt before any allocation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// How many consecutive read timeouts mid-frame are tolerated before
/// the peer is declared dead and the frame torn.
const MAX_MID_FRAME_STALLS: u32 = 150;

/// Machine-readable error classes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The handshake offered a version this peer does not speak.
    UnsupportedVersion,
    /// `OpenSession` named a workload absent from the host registry.
    UnknownWorkload,
    /// A request referenced a session id that is not open.
    UnknownSession,
    /// The frame decoded to no valid request (bad tag or body).
    BadFrame,
    /// The session's engine failed executing the request.
    SessionFailed,
    /// The host is draining; no new work is accepted.
    ShuttingDown,
    /// Unclassified server-side failure.
    Internal,
}

impl ErrorCode {
    /// Stable kebab-case name (used in messages and logs).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::UnknownWorkload => "unknown-workload",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::SessionFailed => "session-failed",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::UnsupportedVersion => 1,
            ErrorCode::UnknownWorkload => 2,
            ErrorCode::UnknownSession => 3,
            ErrorCode::BadFrame => 4,
            ErrorCode::SessionFailed => 5,
            ErrorCode::ShuttingDown => 6,
            ErrorCode::Internal => 7,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::UnsupportedVersion),
            2 => Some(ErrorCode::UnknownWorkload),
            3 => Some(ErrorCode::UnknownSession),
            4 => Some(ErrorCode::BadFrame),
            5 => Some(ErrorCode::SessionFailed),
            6 => Some(ErrorCode::ShuttingDown),
            7 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// What a client asks for when opening a session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionSpec {
    /// Name of a workload registered on the host.
    pub workload: String,
    /// Overrides the registered config's RNG seed.
    pub seed: Option<u64>,
    /// Overrides the registered config's training-phase length.
    pub training_waves: Option<u32>,
    /// Keys this session's durability directory under the host's
    /// durability root; `None` runs the session without a WAL.
    pub durable_key: Option<String>,
    /// With a `durable_key`: resume from that key's checkpoint if one
    /// exists instead of starting fresh.
    pub resume: bool,
}

/// One container write inside a [`Request::SubmitWave`] batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerWrite {
    /// Target table.
    pub table: String,
    /// Target column family.
    pub family: String,
    /// Row key.
    pub row: String,
    /// Column qualifier.
    pub qualifier: String,
    /// The value to write.
    pub value: Value,
}

/// Per-wave decision row served by [`Response::Decisions`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRow {
    /// The wave the row describes.
    pub wave: u64,
    /// Whether the wave ran in the training phase.
    pub training: bool,
    /// Impact ι per QoD step, bit-exact.
    pub impacts: Vec<f64>,
    /// Trigger decision per QoD step.
    pub decisions: Vec<bool>,
}

/// The result of one triggered wave, served by [`Response::WaveResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveReport {
    /// The wave that ran.
    pub wave: u64,
    /// Whether it ran in the training phase.
    pub training: bool,
    /// Store logical clock after the wave.
    pub clock: u64,
    /// Step names that executed, in execution order.
    pub executed: Vec<String>,
    /// Step names the trigger policy skipped.
    pub skipped: Vec<String>,
    /// Step names deferred awaiting a first predecessor execution.
    pub deferred: Vec<String>,
}

/// Client→server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Versioned handshake; must be the first frame on a connection.
    Hello {
        /// The protocol version the client speaks.
        version: u16,
    },
    /// Opens (or resumes) a session.
    OpenSession(SessionSpec),
    /// Applies a batch of container writes and, when `run_wave` is set,
    /// triggers one wave.
    SubmitWave {
        /// Target session.
        session: u64,
        /// Writes applied before the wave trigger.
        writes: Vec<ContainerWrite>,
        /// `false` ingests only (answered by [`Response::Ingested`]).
        run_wave: bool,
    },
    /// Reads per-wave decision rows from `from_wave` onward.
    QueryDecisions {
        /// Target session.
        session: u64,
        /// First wave of interest (0 = everything).
        from_wave: u64,
    },
    /// Reads the session's full store image (durability encoding).
    QueryStore {
        /// Target session.
        session: u64,
    },
    /// Waits until every queued submission has executed.
    Drain {
        /// Target session.
        session: u64,
    },
    /// Closes the session (checkpointing it first when durable).
    Close {
        /// Target session.
        session: u64,
    },
}

/// Server→client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// The version the server will speak.
        version: u16,
    },
    /// Session created or resumed.
    SessionOpened {
        /// The session id for subsequent requests.
        session: u64,
        /// Whether a durable checkpoint was resumed.
        resumed: bool,
        /// The wave the session will run next.
        next_wave: u64,
    },
    /// One wave ran; its outcome.
    WaveResult(WaveReport),
    /// An ingest-only submission was applied.
    Ingested {
        /// Writes applied.
        count: u32,
        /// Store logical clock after the batch.
        clock: u64,
    },
    /// Decision rows for a [`Request::QueryDecisions`].
    Decisions {
        /// Matching rows in wave order.
        rows: Vec<DecisionRow>,
    },
    /// The full store image for a [`Request::QueryStore`].
    StoreImage {
        /// Store logical clock at capture.
        clock: u64,
        /// [`smartflux_durability::encode_store_state`] bytes.
        bytes: Vec<u8>,
    },
    /// Every previously queued submission has executed.
    Drained {
        /// The session that drained.
        session: u64,
        /// Waves executed over the session's lifetime.
        executed_waves: u64,
    },
    /// The session is closed.
    Closed {
        /// The session that closed.
        session: u64,
    },
    /// Submission rejected: the session's bounded queue is full.
    Busy {
        /// The overloaded session.
        session: u64,
        /// Jobs queued when the submission was rejected.
        depth: u32,
    },
    /// Typed failure.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable context.
        message: String,
    },
}

// Request tags (< 0x80).
const TAG_HELLO: u8 = 1;
const TAG_OPEN_SESSION: u8 = 2;
const TAG_SUBMIT_WAVE: u8 = 3;
const TAG_QUERY_DECISIONS: u8 = 4;
const TAG_QUERY_STORE: u8 = 5;
const TAG_DRAIN: u8 = 6;
const TAG_CLOSE: u8 = 7;

// Response tags (>= 0x80).
const TAG_HELLO_OK: u8 = 0x81;
const TAG_SESSION_OPENED: u8 = 0x82;
const TAG_WAVE_RESULT: u8 = 0x83;
const TAG_INGESTED: u8 = 0x84;
const TAG_DECISIONS: u8 = 0x85;
const TAG_STORE_IMAGE: u8 = 0x86;
const TAG_DRAINED: u8 = 0x87;
const TAG_CLOSED: u8 = 0x88;
const TAG_BUSY: u8 = 0x89;
const TAG_ERROR: u8 = 0x8A;

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            put_u8(out, 1);
            put_u64(out, v);
        }
        None => put_u8(out, 0),
    }
}

fn read_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, NetError> {
    Ok(match r.u8()? {
        0 => None,
        _ => Some(r.u64()?),
    })
}

fn put_opt_str(out: &mut Vec<u8>, v: Option<&str>) {
    match v {
        Some(s) => {
            put_u8(out, 1);
            put_str(out, s);
        }
        None => put_u8(out, 0),
    }
}

fn read_opt_str(r: &mut Reader<'_>) -> Result<Option<String>, NetError> {
    Ok(match r.u8()? {
        0 => None,
        _ => Some(r.str()?),
    })
}

fn put_str_list(out: &mut Vec<u8>, items: &[String]) {
    put_u32(out, items.len() as u32);
    for s in items {
        put_str(out, s);
    }
}

fn read_str_list(r: &mut Reader<'_>) -> Result<Vec<String>, NetError> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(r.str()?);
    }
    Ok(out)
}

/// Encodes `request` into a frame payload (tag + body).
#[must_use]
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match request {
        Request::Hello { version } => {
            put_u8(&mut out, TAG_HELLO);
            out.extend_from_slice(&MAGIC);
            put_u16(&mut out, *version);
        }
        Request::OpenSession(spec) => {
            put_u8(&mut out, TAG_OPEN_SESSION);
            put_str(&mut out, &spec.workload);
            put_opt_u64(&mut out, spec.seed);
            put_opt_u64(&mut out, spec.training_waves.map(u64::from));
            put_opt_str(&mut out, spec.durable_key.as_deref());
            put_u8(&mut out, u8::from(spec.resume));
        }
        Request::SubmitWave {
            session,
            writes,
            run_wave,
        } => {
            put_u8(&mut out, TAG_SUBMIT_WAVE);
            put_u64(&mut out, *session);
            put_u8(&mut out, u8::from(*run_wave));
            put_u32(&mut out, writes.len() as u32);
            for w in writes {
                put_str(&mut out, &w.table);
                put_str(&mut out, &w.family);
                put_str(&mut out, &w.row);
                put_str(&mut out, &w.qualifier);
                put_value(&mut out, &w.value);
            }
        }
        Request::QueryDecisions { session, from_wave } => {
            put_u8(&mut out, TAG_QUERY_DECISIONS);
            put_u64(&mut out, *session);
            put_u64(&mut out, *from_wave);
        }
        Request::QueryStore { session } => {
            put_u8(&mut out, TAG_QUERY_STORE);
            put_u64(&mut out, *session);
        }
        Request::Drain { session } => {
            put_u8(&mut out, TAG_DRAIN);
            put_u64(&mut out, *session);
        }
        Request::Close { session } => {
            put_u8(&mut out, TAG_CLOSE);
            put_u64(&mut out, *session);
        }
    }
    out
}

/// Decodes a frame payload into a [`Request`].
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] on an unknown tag, a truncated body, or
/// trailing bytes; never panics on malformed input.
pub fn decode_request(payload: &[u8]) -> Result<Request, NetError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    let request = match tag {
        TAG_HELLO => {
            let magic = [r.u8()?, r.u8()?, r.u8()?, r.u8()?];
            if magic != MAGIC {
                return Err(NetError::Corrupt {
                    context: "handshake magic mismatch".to_owned(),
                });
            }
            Request::Hello { version: r.u16()? }
        }
        TAG_OPEN_SESSION => Request::OpenSession(SessionSpec {
            workload: r.str()?,
            seed: read_opt_u64(&mut r)?,
            training_waves: read_opt_u64(&mut r)?.map(|v| v as u32),
            durable_key: read_opt_str(&mut r)?,
            resume: r.u8()? != 0,
        }),
        TAG_SUBMIT_WAVE => {
            let session = r.u64()?;
            let run_wave = r.u8()? != 0;
            let n = r.u32()? as usize;
            let mut writes = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                writes.push(ContainerWrite {
                    table: r.str()?,
                    family: r.str()?,
                    row: r.str()?,
                    qualifier: r.str()?,
                    value: r.value()?,
                });
            }
            Request::SubmitWave {
                session,
                writes,
                run_wave,
            }
        }
        TAG_QUERY_DECISIONS => Request::QueryDecisions {
            session: r.u64()?,
            from_wave: r.u64()?,
        },
        TAG_QUERY_STORE => Request::QueryStore { session: r.u64()? },
        TAG_DRAIN => Request::Drain { session: r.u64()? },
        TAG_CLOSE => Request::Close { session: r.u64()? },
        other => {
            return Err(NetError::Corrupt {
                context: format!("unknown request tag {other}"),
            })
        }
    };
    finish(&r)?;
    Ok(request)
}

/// Encodes `response` into a frame payload (tag + body).
#[must_use]
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match response {
        Response::HelloOk { version } => {
            put_u8(&mut out, TAG_HELLO_OK);
            put_u16(&mut out, *version);
        }
        Response::SessionOpened {
            session,
            resumed,
            next_wave,
        } => {
            put_u8(&mut out, TAG_SESSION_OPENED);
            put_u64(&mut out, *session);
            put_u8(&mut out, u8::from(*resumed));
            put_u64(&mut out, *next_wave);
        }
        Response::WaveResult(report) => {
            put_u8(&mut out, TAG_WAVE_RESULT);
            put_u64(&mut out, report.wave);
            put_u8(&mut out, u8::from(report.training));
            put_u64(&mut out, report.clock);
            put_str_list(&mut out, &report.executed);
            put_str_list(&mut out, &report.skipped);
            put_str_list(&mut out, &report.deferred);
        }
        Response::Ingested { count, clock } => {
            put_u8(&mut out, TAG_INGESTED);
            put_u32(&mut out, *count);
            put_u64(&mut out, *clock);
        }
        Response::Decisions { rows } => {
            put_u8(&mut out, TAG_DECISIONS);
            put_u32(&mut out, rows.len() as u32);
            for row in rows {
                put_u64(&mut out, row.wave);
                put_u8(&mut out, u8::from(row.training));
                put_u32(&mut out, row.impacts.len() as u32);
                for v in &row.impacts {
                    put_f64(&mut out, *v);
                }
                for d in &row.decisions {
                    put_u8(&mut out, u8::from(*d));
                }
            }
        }
        Response::StoreImage { clock, bytes } => {
            put_u8(&mut out, TAG_STORE_IMAGE);
            put_u64(&mut out, *clock);
            put_bytes(&mut out, bytes);
        }
        Response::Drained {
            session,
            executed_waves,
        } => {
            put_u8(&mut out, TAG_DRAINED);
            put_u64(&mut out, *session);
            put_u64(&mut out, *executed_waves);
        }
        Response::Closed { session } => {
            put_u8(&mut out, TAG_CLOSED);
            put_u64(&mut out, *session);
        }
        Response::Busy { session, depth } => {
            put_u8(&mut out, TAG_BUSY);
            put_u64(&mut out, *session);
            put_u32(&mut out, *depth);
        }
        Response::Error { code, message } => {
            put_u8(&mut out, TAG_ERROR);
            put_u8(&mut out, code.to_u8());
            put_str(&mut out, message);
        }
    }
    out
}

/// Decodes a frame payload into a [`Response`].
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] on an unknown tag, a truncated body, or
/// trailing bytes; never panics on malformed input.
pub fn decode_response(payload: &[u8]) -> Result<Response, NetError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    let response = match tag {
        TAG_HELLO_OK => Response::HelloOk { version: r.u16()? },
        TAG_SESSION_OPENED => Response::SessionOpened {
            session: r.u64()?,
            resumed: r.u8()? != 0,
            next_wave: r.u64()?,
        },
        TAG_WAVE_RESULT => Response::WaveResult(WaveReport {
            wave: r.u64()?,
            training: r.u8()? != 0,
            clock: r.u64()?,
            executed: read_str_list(&mut r)?,
            skipped: read_str_list(&mut r)?,
            deferred: read_str_list(&mut r)?,
        }),
        TAG_INGESTED => Response::Ingested {
            count: r.u32()?,
            clock: r.u64()?,
        },
        TAG_DECISIONS => {
            let n = r.u32()? as usize;
            let mut rows = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                let wave = r.u64()?;
                let training = r.u8()? != 0;
                let k = r.u32()? as usize;
                let mut impacts = Vec::with_capacity(k.min(4096));
                for _ in 0..k {
                    impacts.push(r.f64()?);
                }
                let mut decisions = Vec::with_capacity(k.min(4096));
                for _ in 0..k {
                    decisions.push(r.u8()? != 0);
                }
                rows.push(DecisionRow {
                    wave,
                    training,
                    impacts,
                    decisions,
                });
            }
            Response::Decisions { rows }
        }
        TAG_STORE_IMAGE => Response::StoreImage {
            clock: r.u64()?,
            bytes: r.bytes()?,
        },
        TAG_DRAINED => Response::Drained {
            session: r.u64()?,
            executed_waves: r.u64()?,
        },
        TAG_CLOSED => Response::Closed { session: r.u64()? },
        TAG_BUSY => Response::Busy {
            session: r.u64()?,
            depth: r.u32()?,
        },
        TAG_ERROR => {
            let raw = r.u8()?;
            let code = ErrorCode::from_u8(raw).ok_or_else(|| NetError::Corrupt {
                context: format!("unknown error code {raw}"),
            })?;
            Response::Error {
                code,
                message: r.str()?,
            }
        }
        other => {
            return Err(NetError::Corrupt {
                context: format!("unknown response tag {other}"),
            })
        }
    };
    finish(&r)?;
    Ok(response)
}

fn finish(r: &Reader<'_>) -> Result<(), NetError> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(NetError::Corrupt {
            context: format!("{} trailing bytes after message body", r.remaining()),
        })
    }
}

/// Writes one frame (header + payload) to `w`.
///
/// Enforces [`MAX_FRAME`] symmetrically with [`read_frame_from`]: a
/// payload the peer would reject as corrupt is refused here with
/// [`NetError::FrameTooLarge`] *before* any byte is written, so the
/// stream stays frame-aligned and the caller can still send a typed
/// error frame instead. (This also guards the `usize → u32` length
/// conversion, which would otherwise silently truncate.)
///
/// # Errors
///
/// Returns [`NetError::FrameTooLarge`] for payloads over [`MAX_FRAME`];
/// otherwise propagates the underlying write failure.
pub fn write_frame_to(w: &mut impl Write, payload: &[u8]) -> Result<(), NetError> {
    if payload.len() > MAX_FRAME {
        return Err(NetError::FrameTooLarge { len: payload.len() });
    }
    let mut buf = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut buf, payload.len() as u32);
    put_u32(&mut buf, crc32(payload));
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    Ok(())
}

/// Outcome of reading one frame from a stream.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameIn {
    /// A complete, CRC-valid frame payload.
    Frame(Vec<u8>),
    /// Clean end of stream before any byte of a new frame — the peer
    /// closed the connection between messages.
    Closed,
    /// The read timed out before any byte of a new frame arrived; the
    /// caller should check its stop condition and retry.
    Idle,
}

/// Reads one frame from `r`, classifying damage the durability way:
/// a stream that ends mid-frame is [`NetError::Torn`], a complete frame
/// with a bad CRC or an oversized declared length is
/// [`NetError::Corrupt`].
///
/// A read timeout *before* the first header byte yields
/// [`FrameIn::Idle`] so pollers can interleave stop-flag checks; a
/// timeout mid-frame retries a bounded number of times, then tears.
///
/// # Errors
///
/// Returns [`NetError::Torn`], [`NetError::Corrupt`], or the underlying
/// [`NetError::Io`] failure.
pub fn read_frame_from(r: &mut impl Read) -> Result<FrameIn, NetError> {
    let mut header = [0u8; 8];
    match read_exact_classified(r, &mut header, true)? {
        ReadOutcome::Done => {}
        ReadOutcome::ClosedAtStart => return Ok(FrameIn::Closed),
        ReadOutcome::IdleAtStart => return Ok(FrameIn::Idle),
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME {
        return Err(NetError::Corrupt {
            context: format!("declared frame length {len} exceeds {MAX_FRAME}"),
        });
    }
    let mut payload = vec![0u8; len];
    match read_exact_classified(r, &mut payload, false)? {
        ReadOutcome::Done => {}
        // Unreachable with allow_idle=false, but keep the typed answer.
        ReadOutcome::ClosedAtStart | ReadOutcome::IdleAtStart => return Err(NetError::Torn),
    }
    if crc32(&payload) != crc {
        return Err(NetError::Corrupt {
            context: "frame CRC mismatch".to_owned(),
        });
    }
    Ok(FrameIn::Frame(payload))
}

enum ReadOutcome {
    Done,
    ClosedAtStart,
    IdleAtStart,
}

/// Fills `buf` from `r`, distinguishing the boundary cases: EOF before
/// the first byte (peer closed cleanly), timeout before the first byte
/// (idle poll), EOF mid-buffer (torn), repeated timeouts mid-buffer
/// (stalled peer → torn).
fn read_exact_classified(
    r: &mut impl Read,
    buf: &mut [u8],
    allow_idle: bool,
) -> Result<ReadOutcome, NetError> {
    let mut filled = 0;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && allow_idle {
                    return Ok(ReadOutcome::ClosedAtStart);
                }
                return Err(NetError::Torn);
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if filled == 0 && allow_idle {
                    return Ok(ReadOutcome::IdleAtStart);
                }
                stalls += 1;
                if stalls > MAX_MID_FRAME_STALLS {
                    return Err(NetError::Torn);
                }
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(ReadOutcome::Done)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello { version: VERSION },
            Request::OpenSession(SessionSpec {
                workload: "lrb".into(),
                seed: Some(11),
                training_waves: Some(30),
                durable_key: Some("client-a".into()),
                resume: true,
            }),
            Request::OpenSession(SessionSpec {
                workload: "aqhi".into(),
                ..SessionSpec::default()
            }),
            Request::SubmitWave {
                session: 7,
                writes: vec![
                    ContainerWrite {
                        table: "t".into(),
                        family: "f".into(),
                        row: "r".into(),
                        qualifier: "q".into(),
                        value: Value::from(1.5),
                    },
                    ContainerWrite {
                        table: "t".into(),
                        family: "f".into(),
                        row: "r2".into(),
                        qualifier: "name".into(),
                        value: Value::from("x"),
                    },
                ],
                run_wave: true,
            },
            Request::SubmitWave {
                session: 7,
                writes: vec![],
                run_wave: false,
            },
            Request::QueryDecisions {
                session: 7,
                from_wave: 31,
            },
            Request::QueryStore { session: 7 },
            Request::Drain { session: 7 },
            Request::Close { session: 7 },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::HelloOk { version: VERSION },
            Response::SessionOpened {
                session: 7,
                resumed: true,
                next_wave: 41,
            },
            Response::WaveResult(WaveReport {
                wave: 12,
                training: false,
                clock: 999,
                executed: vec!["feed".into(), "agg".into()],
                skipped: vec!["classify".into()],
                deferred: vec![],
            }),
            Response::Ingested { count: 3, clock: 5 },
            Response::Decisions {
                rows: vec![DecisionRow {
                    wave: 12,
                    training: true,
                    impacts: vec![0.25, f64::NAN],
                    decisions: vec![true, false],
                }],
            },
            Response::StoreImage {
                clock: 77,
                bytes: vec![1, 2, 3, 4],
            },
            Response::Drained {
                session: 7,
                executed_waves: 200,
            },
            Response::Closed { session: 7 },
            Response::Busy {
                session: 7,
                depth: 16,
            },
            Response::Error {
                code: ErrorCode::UnknownWorkload,
                message: "no workload `nope`".into(),
            },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for req in sample_requests() {
            let payload = encode_request(&req);
            let back = decode_request(&payload).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in sample_responses() {
            let payload = encode_response(&resp);
            let back = decode_response(&payload).unwrap();
            // NaN impacts make PartialEq fail; compare via re-encoding
            // (the codec is bit-exact for f64).
            assert_eq!(encode_response(&back), payload);
        }
    }

    #[test]
    fn truncated_bodies_are_typed_corruption() {
        for req in sample_requests() {
            let payload = encode_request(&req);
            for cut in 0..payload.len() {
                match decode_request(&payload[..cut]) {
                    Err(NetError::Corrupt { .. }) => {}
                    other => panic!("cut at {cut} of {req:?}: got {other:?}"),
                }
            }
        }
        for resp in sample_responses() {
            let payload = encode_response(&resp);
            for cut in 0..payload.len() {
                match decode_response(&payload[..cut]) {
                    Err(NetError::Corrupt { .. }) => {}
                    other => panic!("cut at {cut} of {resp:?}: got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_rejected() {
        assert!(matches!(
            decode_request(&[0x7F]),
            Err(NetError::Corrupt { .. })
        ));
        assert!(matches!(
            decode_response(&[0x01]),
            Err(NetError::Corrupt { .. })
        ));
        let mut payload = encode_request(&Request::Drain { session: 1 });
        payload.push(0);
        assert!(matches!(
            decode_request(&payload),
            Err(NetError::Corrupt { .. })
        ));
    }

    #[test]
    fn bad_handshake_magic_is_rejected() {
        let mut payload = encode_request(&Request::Hello { version: VERSION });
        payload[1] = b'X';
        assert!(matches!(
            decode_request(&payload),
            Err(NetError::Corrupt { .. })
        ));
    }

    #[test]
    fn stream_framing_roundtrips_and_classifies_damage() {
        let payload = encode_request(&Request::QueryStore { session: 3 });
        let mut buf = Vec::new();
        write_frame_to(&mut buf, &payload).unwrap();
        write_frame_to(&mut buf, &payload).unwrap();

        let mut cursor = std::io::Cursor::new(buf.clone());
        assert_eq!(
            read_frame_from(&mut cursor).unwrap(),
            FrameIn::Frame(payload.clone())
        );
        assert_eq!(
            read_frame_from(&mut cursor).unwrap(),
            FrameIn::Frame(payload.clone())
        );
        assert_eq!(read_frame_from(&mut cursor).unwrap(), FrameIn::Closed);

        // Truncation anywhere inside a frame tears, never panics.
        let one_frame = &buf[..buf.len() / 2];
        for cut in 1..one_frame.len() {
            let mut cursor = std::io::Cursor::new(one_frame[..cut].to_vec());
            match read_frame_from(&mut cursor) {
                Err(NetError::Torn) => {}
                other => panic!("cut at {cut}: got {other:?}"),
            }
        }

        // A flipped payload byte in a complete frame is corruption.
        let mut damaged = buf.clone();
        damaged[9] ^= 0xFF;
        let mut cursor = std::io::Cursor::new(damaged);
        assert!(matches!(
            read_frame_from(&mut cursor),
            Err(NetError::Corrupt { .. })
        ));

        // An absurd declared length is rejected before allocation.
        let mut oversized = Vec::new();
        put_u32(&mut oversized, (MAX_FRAME + 1) as u32);
        put_u32(&mut oversized, 0);
        let mut cursor = std::io::Cursor::new(oversized);
        assert!(matches!(
            read_frame_from(&mut cursor),
            Err(NetError::Corrupt { .. })
        ));
    }

    #[test]
    fn oversized_payload_is_refused_before_any_byte_is_written() {
        let payload = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        match write_frame_to(&mut sink, &payload) {
            Err(NetError::FrameTooLarge { len }) => assert_eq!(len, MAX_FRAME + 1),
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // The stream stays frame-aligned: nothing was written, so a
        // typed error frame can still follow.
        assert!(sink.is_empty());
        let payload = vec![0u8; MAX_FRAME];
        write_frame_to(&mut sink, &payload).unwrap();
        assert_eq!(sink.len(), MAX_FRAME + 8);
    }

    #[test]
    fn error_codes_roundtrip() {
        for code in [
            ErrorCode::UnsupportedVersion,
            ErrorCode::UnknownWorkload,
            ErrorCode::UnknownSession,
            ErrorCode::BadFrame,
            ErrorCode::SessionFailed,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u8(code.to_u8()), Some(code));
            assert!(!code.as_str().is_empty());
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(200), None);
    }
}

//! The metrics registry: named counters, gauges, and latency histograms.
//!
//! Instruments are lock-free atomics; the registry itself is only locked on
//! instrument creation and on [`MetricsRegistry::snapshot`]. Hot paths should
//! obtain an instrument handle once and keep the [`Arc`] around — recording
//! is then a single atomic RMW.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    // tidy:atomic(value: relaxed): metrics cell — scrapes tolerate torn cross-metric views, and no other data is ordered by it
    value: AtomicU64,
}

impl Counter {
    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest observed value (signed).
#[derive(Debug, Default)]
pub struct Gauge {
    // tidy:atomic(value: relaxed): metrics cell — scrapes tolerate torn cross-metric views, and no other data is ordered by it
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Upper bucket boundaries in nanoseconds: a 1–2–5 progression from 1 µs to
/// 100 s, plus a catch-all overflow bucket. Fixed buckets keep recording a
/// single array index + atomic increment with no allocation. Public so
/// exposition layers (OpenMetrics `le` labels, trace exporters) can render
/// the buckets loss-free from a [`HistogramSnapshot`].
pub const BUCKET_BOUNDS_NS: [u64; 25] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    20_000_000_000,
    50_000_000_000,
    100_000_000_000,
];

/// Number of histogram buckets: one per bound in [`BUCKET_BOUNDS_NS`]
/// plus the overflow (`+Inf`) bucket.
pub const BUCKET_COUNT: usize = BUCKET_BOUNDS_NS.len() + 1;

/// A fixed-bucket latency histogram (nanosecond resolution).
#[derive(Debug)]
pub struct Histogram {
    // tidy:atomic(buckets: relaxed): metrics cells — a scrape may see a bucket bump before the count; consumers only ever aggregate
    buckets: [AtomicU64; BUCKET_COUNT],
    // tidy:atomic(count: relaxed): metrics cells — a scrape may see a bucket bump before the count; consumers only ever aggregate
    count: AtomicU64,
    // tidy:atomic(sum_ns: relaxed): metrics cells — a scrape may see a bucket bump before the count; consumers only ever aggregate
    sum_ns: AtomicU64,
    // tidy:atomic(max_ns: relaxed): metrics cells — a scrape may see a bucket bump before the count; consumers only ever aggregate
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one duration observation.
    pub fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.record_ns(ns);
    }

    /// Records one observation given directly in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS.partition_point(|&b| b < ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Captures a consistent-enough view of the histogram for reporting.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; BUCKET_COUNT] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count: u64 = buckets.iter().sum();
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum_ns,
            max_ns: self.max_ns.load(Ordering::Relaxed),
            p50_ns: percentile(&buckets, count, 0.50),
            p95_ns: percentile(&buckets, count, 0.95),
            p99_ns: percentile(&buckets, count, 0.99),
            buckets,
        }
    }
}

/// Returns the upper bound of the bucket containing quantile `q`.
fn percentile(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64) * q).ceil() as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(u64::MAX);
        }
    }
    u64::MAX
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, in nanoseconds.
    pub sum_ns: u64,
    /// Largest observation, in nanoseconds.
    pub max_ns: u64,
    /// Median (upper bound of the containing bucket), in nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile, in nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile, in nanoseconds.
    pub p99_ns: u64,
    /// Per-bucket observation counts. Index `i < BUCKET_BOUNDS_NS.len()`
    /// counts observations `<= BUCKET_BOUNDS_NS[i]`; the final slot is the
    /// overflow (`+Inf`) bucket. Carried so exposition formats can render
    /// cumulative buckets loss-free.
    pub buckets: [u64; BUCKET_COUNT],
}

impl HistogramSnapshot {
    /// Mean observation in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A registry of named instruments.
///
/// Cheaply cloneable; all clones share instruments. Instrument lookup by
/// name takes a write lock only on first creation — hold onto the returned
/// handles on hot paths.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RwLock<Instruments>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter named `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.inner.read().counters.get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.inner
                .write()
                .counters
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// Gets or creates the gauge named `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.inner.read().gauges.get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.inner
                .write()
                .gauges
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// Gets or creates the histogram named `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.inner.read().histograms.get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.inner
                .write()
                .histograms
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// Captures all instruments into a snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// Point-in-time view of every instrument in a registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, 0 when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, 0 when absent.
    #[must_use]
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram summary, if the instrument exists.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Renders the snapshot as a JSON object (no external dependencies).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", crate::json_string(k), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", crate::json_string(k), v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum_ns\":{},\"mean_ns\":{},\"max_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                crate::json_string(k),
                h.count,
                h.sum_ns,
                h.mean_ns(),
                h.max_ns,
                h.p50_ns,
                h.p95_ns,
                h.p99_ns,
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits");
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("depth");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        // Same name returns the same instrument.
        assert_eq!(reg.counter("hits").get(), 5);
    }

    #[test]
    fn histogram_percentiles_are_bucket_upper_bounds() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(Duration::from_micros(1)); // 1_000 ns bucket
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1)); // 1_000_000 ns bucket
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 1_000);
        assert_eq!(s.p95_ns, 1_000_000);
        assert_eq!(s.p99_ns, 1_000_000);
        assert!(s.mean_ns() >= 1_000);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = Histogram::default();
        h.record(Duration::from_secs(1000));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_ns, u64::MAX);
    }

    #[test]
    fn snapshot_buckets_round_trip_observations() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(Duration::from_micros(1)); // bucket index 0 (<= 1_000 ns)
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1)); // bucket for 1_000_000 ns
        }
        h.record(Duration::from_secs(1000)); // overflow bucket
        let s = h.snapshot();
        let ms_idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| b == 1_000_000)
            .unwrap();
        assert_eq!(s.buckets[0], 90);
        assert_eq!(s.buckets[ms_idx], 10);
        assert_eq!(s.buckets[BUCKET_COUNT - 1], 1);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ns, 0);
        assert_eq!(s.mean_ns(), 0);
    }

    #[test]
    fn snapshot_aggregates_all_instruments() {
        let reg = MetricsRegistry::new();
        reg.counter("a").incr();
        reg.gauge("b").set(3);
        reg.histogram("c").record(Duration::from_micros(5));
        let s = reg.snapshot();
        assert_eq!(s.counter("a"), 1);
        assert_eq!(s.gauges.get("b"), Some(&3));
        assert_eq!(s.histogram("c").unwrap().count, 1);
        assert_eq!(s.counter("missing"), 0);
        let json = s.to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"a\":1"));
        assert!(json.contains("\"p99_ns\""));
    }

    #[test]
    fn registry_is_shared_across_clones() {
        let reg = MetricsRegistry::new();
        let reg2 = reg.clone();
        reg.counter("x").add(2);
        assert_eq!(reg2.snapshot().counter("x"), 2);
    }
}

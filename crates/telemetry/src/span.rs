//! Lightweight spans: RAII guards that time a region of code into a
//! histogram and, optionally, a trace sink.
//!
//! A [`Span`] costs one `Instant::now()` on creation and one histogram
//! record on drop. When telemetry is disabled the guard is inert — no
//! clock read, no allocation.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::metrics::Histogram;

/// A destination for completed span events.
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Called once per completed span.
    fn span_completed(&self, event: &SpanEvent);
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Instrument/operation name (e.g. `"wms.wave"`).
    pub name: &'static str,
    /// Optional numeric tag (e.g. the wave number), `u64::MAX` when unset.
    pub tag: u64,
    /// Wall-clock duration of the span.
    pub elapsed: Duration,
}

/// A trace sink retaining every event in memory (tests, inspection).
#[derive(Debug, Default)]
pub struct MemoryTraceSink {
    events: Mutex<Vec<SpanEvent>>,
}

impl MemoryTraceSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out all completed spans.
    #[must_use]
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events.lock().clone()
    }

    /// Number of completed spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no span has completed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl TraceSink for MemoryTraceSink {
    fn span_completed(&self, event: &SpanEvent) {
        self.events.lock().push(event.clone());
    }
}

struct ActiveSpan {
    name: &'static str,
    tag: u64,
    start: Instant,
    histogram: Arc<Histogram>,
    trace: Option<Arc<dyn TraceSink>>,
}

/// An RAII timing guard; records its lifetime on drop.
///
/// Obtained from [`Telemetry::span`](crate::Telemetry::span) or the
/// [`span!`](crate::span!) macro. Inert (all no-ops) when telemetry is
/// disabled.
#[must_use = "a span records its timing when dropped"]
pub struct Span {
    inner: Option<ActiveSpan>,
}

impl Span {
    /// A span that records nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    pub(crate) fn start(
        name: &'static str,
        tag: u64,
        histogram: Arc<Histogram>,
        trace: Option<Arc<dyn TraceSink>>,
    ) -> Self {
        Self {
            inner: Some(ActiveSpan {
                name,
                tag,
                start: Instant::now(),
                histogram,
                trace,
            }),
        }
    }

    /// Whether this span is live (telemetry enabled at creation).
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            let elapsed = active.start.elapsed();
            active.histogram.record(elapsed);
            if let Some(trace) = &active.trace {
                trace.span_completed(&SpanEvent {
                    name: active.name,
                    tag: active.tag,
                    elapsed,
                });
            }
        }
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(a) => f
                .debug_struct("Span")
                .field("name", &a.name)
                .field("tag", &a.tag)
                .finish(),
            None => f.write_str("Span(disabled)"),
        }
    }
}

/// Opens a [`Span`] on a [`Telemetry`](crate::Telemetry) handle.
///
/// ```
/// use smartflux_telemetry::{span, Telemetry};
///
/// let telemetry = Telemetry::enabled();
/// {
///     let _guard = span!(telemetry, "wave", tag = 7);
/// } // recorded into the "wave" histogram here
/// assert_eq!(telemetry.snapshot().histogram("wave").unwrap().count, 1);
/// ```
#[macro_export]
macro_rules! span {
    ($telemetry:expr, $name:expr) => {
        $telemetry.span($name, u64::MAX)
    };
    ($telemetry:expr, $name:expr, tag = $tag:expr) => {
        $telemetry.span($name, $tag)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_histogram_and_trace() {
        let h = Arc::new(Histogram::default());
        let trace = Arc::new(MemoryTraceSink::new());
        {
            let s = Span::start("op", 3, Arc::clone(&h), Some(trace.clone() as _));
            assert!(s.is_recording());
        }
        assert_eq!(h.count(), 1);
        let events = trace.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "op");
        assert_eq!(events[0].tag, 3);
    }

    #[test]
    fn disabled_span_is_inert() {
        let s = Span::disabled();
        assert!(!s.is_recording());
        drop(s);
    }
}

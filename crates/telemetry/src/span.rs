//! Lightweight spans: RAII guards that time a region of code into a
//! histogram and, optionally, a trace sink.
//!
//! A [`Span`] costs one `Instant::now()` on creation and one histogram
//! record on drop. When telemetry is disabled the guard is inert — no
//! clock read, no allocation.
//!
//! # Causal tracing
//!
//! When a [`TraceSink`] is attached, every span additionally carries a
//! **trace identity**: a `trace_id` shared by all spans of one causal
//! tree (one wave, in SmartFlux), a unique `span_id`, and the `parent_id`
//! of the enclosing span. Parentage is tracked through a per-thread
//! context stack: a span opened while another span is live on the same
//! thread becomes its child; a span opened with no live context starts a
//! new trace and becomes its root.
//!
//! Work handed to other threads keeps its causal link explicitly: capture
//! [`Telemetry::trace_context`] before spawning and re-enter it on the
//! worker with [`Telemetry::propagate`].
//!
//! [`Telemetry::trace_context`]: crate::Telemetry::trace_context
//! [`Telemetry::propagate`]: crate::Telemetry::propagate

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::metrics::Histogram;

/// A destination for completed span events.
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Called once per completed span.
    fn span_completed(&self, event: &SpanEvent);
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Instrument/operation name (e.g. `"wms.wave"`).
    pub name: &'static str,
    /// Optional numeric tag (e.g. the wave number), `u64::MAX` when unset.
    pub tag: u64,
    /// Identity of the causal tree this span belongs to; `0` when the
    /// span completed without a trace sink attached (untraced).
    pub trace_id: u64,
    /// Unique identity of this span; `0` when untraced.
    pub span_id: u64,
    /// The enclosing span's id, `0` for a trace root.
    pub parent_id: u64,
    /// Start time as nanoseconds since the process trace epoch
    /// ([`trace_epoch_ns`]); `0` when untraced.
    pub start_ns: u64,
    /// Wall-clock duration of the span.
    pub elapsed: Duration,
}

impl SpanEvent {
    /// Whether the event carries trace identity (a sink was attached).
    #[must_use]
    pub fn is_traced(&self) -> bool {
        self.trace_id != 0
    }

    /// Whether this span is the root of its trace.
    #[must_use]
    pub fn is_root(&self) -> bool {
        self.is_traced() && self.parent_id == 0
    }
}

/// Identity counter shared by span ids and trace ids; `0` is reserved for
/// "untraced"/"no parent".
// tidy:atomic(NEXT_ID: relaxed): id allocator — uniqueness is all that matters, the fetch_add's atomicity alone provides it
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// The process-wide instant all `start_ns` offsets are measured from,
/// fixed on first use.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process trace epoch.
///
/// All [`SpanEvent::start_ns`] values share this origin, so exporters can
/// place spans from different threads on one timeline without reading any
/// ambient clock themselves.
#[must_use]
pub fn trace_epoch_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A captured point in the causal tree, for crossing thread boundaries.
///
/// Obtained from [`Telemetry::trace_context`] on the spawning thread and
/// re-entered with [`Telemetry::propagate`] on the worker, so spans (and
/// trace events) opened on the worker stay children of the spawner's
/// current span.
///
/// [`Telemetry::trace_context`]: crate::Telemetry::trace_context
/// [`Telemetry::propagate`]: crate::Telemetry::propagate
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace the capturing thread was inside.
    pub trace_id: u64,
    /// The span that was innermost when the context was captured.
    pub parent_span: u64,
}

thread_local! {
    /// Stack of live span identities on this thread; the top entry is the
    /// parent of the next span opened here.
    static CONTEXT: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

/// The innermost live context on this thread, if any.
pub(crate) fn current_context() -> Option<TraceContext> {
    CONTEXT.with(|c| c.borrow().last().copied())
}

/// Pushes `entry` and returns it for symmetry with [`pop_context`].
fn push_context(entry: TraceContext) {
    CONTEXT.with(|c| c.borrow_mut().push(entry));
}

/// Removes the topmost entry whose span matches `span_id`. Searching from
/// the top tolerates out-of-order guard drops without corrupting the rest
/// of the stack.
fn pop_context(span_id: u64) {
    CONTEXT.with(|c| {
        let mut stack = c.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|e| e.parent_span == span_id) {
            stack.remove(pos);
        }
    });
}

/// RAII guard re-entering a [`TraceContext`] on the current thread.
///
/// Returned by [`Telemetry::propagate`]; while alive, spans opened on
/// this thread parent under the captured context. Must be dropped on the
/// thread that created it.
///
/// [`Telemetry::propagate`]: crate::Telemetry::propagate
#[must_use = "the context is only active while the guard lives"]
#[derive(Debug)]
pub struct ContextGuard {
    entered: Option<TraceContext>,
    // Thread-local bookkeeping: keep the guard on its creating thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl ContextGuard {
    pub(crate) fn inert() -> Self {
        Self {
            entered: None,
            _not_send: std::marker::PhantomData,
        }
    }

    pub(crate) fn enter(ctx: TraceContext) -> Self {
        push_context(ctx);
        Self {
            entered: Some(ctx),
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(ctx) = self.entered.take() {
            pop_context(ctx.parent_span);
        }
    }
}

/// A trace sink retaining every event in memory (tests, inspection).
#[derive(Debug, Default)]
pub struct MemoryTraceSink {
    events: Mutex<Vec<SpanEvent>>,
}

impl MemoryTraceSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out all completed spans.
    #[must_use]
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events.lock().clone()
    }

    /// Number of completed spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no span has completed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl TraceSink for MemoryTraceSink {
    fn span_completed(&self, event: &SpanEvent) {
        self.events.lock().push(event.clone());
    }
}

/// Trace identity assigned to a live traced span.
struct SpanIds {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    start_ns: u64,
}

struct ActiveSpan {
    name: &'static str,
    tag: u64,
    start: Instant,
    histogram: Arc<Histogram>,
    trace: Option<(Arc<dyn TraceSink>, SpanIds)>,
}

/// An RAII timing guard; records its lifetime on drop.
///
/// Obtained from [`Telemetry::span`](crate::Telemetry::span) or the
/// [`span!`](crate::span!) macro. Inert (all no-ops) when telemetry is
/// disabled. With a [`TraceSink`] attached the span also carries trace
/// identity and registers itself as the current parent on this thread.
#[must_use = "a span records its timing when dropped"]
pub struct Span {
    inner: Option<ActiveSpan>,
}

impl Span {
    /// A span that records nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    pub(crate) fn start(
        name: &'static str,
        tag: u64,
        histogram: Arc<Histogram>,
        trace: Option<Arc<dyn TraceSink>>,
    ) -> Self {
        let trace = trace.map(|sink| {
            let span_id = next_id();
            let (trace_id, parent_id) = match current_context() {
                Some(ctx) => (ctx.trace_id, ctx.parent_span),
                None => (next_id(), 0),
            };
            push_context(TraceContext {
                trace_id,
                parent_span: span_id,
            });
            (
                sink,
                SpanIds {
                    trace_id,
                    span_id,
                    parent_id,
                    start_ns: trace_epoch_ns(),
                },
            )
        });
        Self {
            inner: Some(ActiveSpan {
                name,
                tag,
                start: Instant::now(),
                histogram,
                trace,
            }),
        }
    }

    /// Whether this span is live (telemetry enabled at creation).
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            let elapsed = active.start.elapsed();
            active.histogram.record(elapsed);
            if let Some((sink, ids)) = &active.trace {
                pop_context(ids.span_id);
                sink.span_completed(&SpanEvent {
                    name: active.name,
                    tag: active.tag,
                    trace_id: ids.trace_id,
                    span_id: ids.span_id,
                    parent_id: ids.parent_id,
                    start_ns: ids.start_ns,
                    elapsed,
                });
            }
        }
    }
}

/// Emits a retrospective child span: an operation that already happened
/// (its `elapsed` was measured by the caller) recorded into `sink` under
/// the current thread context. Returns silently when the thread is not
/// inside a trace, so after-the-fact events can never create orphan
/// roots.
pub(crate) fn emit_trace_event(
    sink: &Arc<dyn TraceSink>,
    name: &'static str,
    tag: u64,
    elapsed: Duration,
) {
    let Some(ctx) = current_context() else {
        return;
    };
    let end_ns = trace_epoch_ns();
    let elapsed_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    sink.span_completed(&SpanEvent {
        name,
        tag,
        trace_id: ctx.trace_id,
        span_id: next_id(),
        parent_id: ctx.parent_span,
        start_ns: end_ns.saturating_sub(elapsed_ns),
        elapsed,
    });
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(a) => f
                .debug_struct("Span")
                .field("name", &a.name)
                .field("tag", &a.tag)
                .finish(),
            None => f.write_str("Span(disabled)"),
        }
    }
}

/// Opens a [`Span`] on a [`Telemetry`](crate::Telemetry) handle.
///
/// ```
/// use smartflux_telemetry::{span, Telemetry};
///
/// let telemetry = Telemetry::enabled();
/// {
///     let _guard = span!(telemetry, "wave", tag = 7);
/// } // recorded into the "wave" histogram here
/// assert_eq!(telemetry.snapshot().histogram("wave").unwrap().count, 1);
/// ```
#[macro_export]
macro_rules! span {
    ($telemetry:expr, $name:expr) => {
        $telemetry.span($name, u64::MAX)
    };
    ($telemetry:expr, $name:expr, tag = $tag:expr) => {
        $telemetry.span($name, $tag)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_histogram_and_trace() {
        let h = Arc::new(Histogram::default());
        let trace = Arc::new(MemoryTraceSink::new());
        {
            let s = Span::start("op", 3, Arc::clone(&h), Some(trace.clone() as _));
            assert!(s.is_recording());
        }
        assert_eq!(h.count(), 1);
        let events = trace.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "op");
        assert_eq!(events[0].tag, 3);
        assert!(events[0].is_traced());
        assert!(events[0].is_root());
    }

    #[test]
    fn disabled_span_is_inert() {
        let s = Span::disabled();
        assert!(!s.is_recording());
        drop(s);
    }

    #[test]
    fn nested_spans_form_a_tree() {
        let h = Arc::new(Histogram::default());
        let trace = Arc::new(MemoryTraceSink::new());
        {
            let _root = Span::start("root", 1, Arc::clone(&h), Some(trace.clone() as _));
            {
                let _child = Span::start("child", 2, Arc::clone(&h), Some(trace.clone() as _));
                let _grandchild =
                    Span::start("grandchild", 3, Arc::clone(&h), Some(trace.clone() as _));
            }
            let _sibling = Span::start("sibling", 4, Arc::clone(&h), Some(trace.clone() as _));
        }
        let events = trace.events();
        assert_eq!(events.len(), 4);
        let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
        let root = by_name("root");
        assert!(root.is_root());
        assert_eq!(by_name("child").parent_id, root.span_id);
        assert_eq!(by_name("sibling").parent_id, root.span_id);
        assert_eq!(by_name("grandchild").parent_id, by_name("child").span_id);
        assert!(events.iter().all(|e| e.trace_id == root.trace_id));
        // Start offsets are monotone with nesting.
        assert!(by_name("child").start_ns >= root.start_ns);
    }

    #[test]
    fn untraced_spans_have_zero_identity() {
        let h = Arc::new(Histogram::default());
        // No sink: spans must not pay for (or leak) context entries.
        {
            let _s = Span::start("plain", 1, Arc::clone(&h), None);
            assert!(current_context().is_none());
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn sequential_roots_get_distinct_traces() {
        let h = Arc::new(Histogram::default());
        let trace = Arc::new(MemoryTraceSink::new());
        for tag in 0..3 {
            let _s = Span::start("wave", tag, Arc::clone(&h), Some(trace.clone() as _));
        }
        let events = trace.events();
        assert_eq!(events.len(), 3);
        let mut ids: Vec<u64> = events.iter().map(|e| e.trace_id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 3, "each root starts its own trace");
    }

    #[test]
    fn context_guard_links_across_threads() {
        let h = Arc::new(Histogram::default());
        let trace = Arc::new(MemoryTraceSink::new());
        let parent_ctx;
        {
            let _root = Span::start("root", 0, Arc::clone(&h), Some(trace.clone() as _));
            parent_ctx = current_context().unwrap();
            let h2 = Arc::clone(&h);
            let t2 = trace.clone();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _g = ContextGuard::enter(parent_ctx);
                    let _child = Span::start("remote", 1, h2, Some(t2 as _));
                });
            });
        }
        let events = trace.events();
        let root = events.iter().find(|e| e.name == "root").unwrap();
        let remote = events.iter().find(|e| e.name == "remote").unwrap();
        assert_eq!(remote.trace_id, root.trace_id);
        assert_eq!(remote.parent_id, root.span_id);
    }

    #[test]
    fn emit_trace_event_requires_a_live_context() {
        let trace: Arc<dyn TraceSink> = Arc::new(MemoryTraceSink::new());
        // Outside any span: nothing is emitted (no orphan roots).
        emit_trace_event(&trace, "op", 0, Duration::from_micros(5));
        let mem = Arc::new(MemoryTraceSink::new());
        let sink: Arc<dyn TraceSink> = mem.clone();
        let h = Arc::new(Histogram::default());
        {
            let _root = Span::start("root", 0, Arc::clone(&h), Some(mem.clone() as _));
            emit_trace_event(&sink, "op", 7, Duration::from_micros(5));
        }
        let events = mem.events();
        assert_eq!(events.len(), 2);
        let op = events.iter().find(|e| e.name == "op").unwrap();
        let root = events.iter().find(|e| e.name == "root").unwrap();
        assert_eq!(op.parent_id, root.span_id);
        assert_eq!(op.trace_id, root.trace_id);
    }
}

//! The wave-decision journal: one structured record per wave per
//! QoD-managed step.
//!
//! The journal is the after-the-fact audit trail of the engine's skipping
//! decisions: what the impact vector was, what the model predicted, how
//! confident the deployment is that `maxε` is being respected, and — on
//! training/test waves, where ground truth exists — the measured error ε.
//! The paper's Fig. 9 (error tracking) and Fig. 10 (confidence) are both
//! derivable from a journal file alone.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::json_string;

/// One journal record: the engine's decision for one QoD-managed step on
/// one wave.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveDecisionRecord {
    /// Wave number.
    pub wave: u64,
    /// Engine phase when the decision was made (`"training"` or
    /// `"application"`).
    pub phase: &'static str,
    /// Name of the QoD-managed step this record describes.
    pub step: String,
    /// Index of the step in the engine's feature/label order.
    pub step_index: usize,
    /// The full input-impact vector ι observed this wave (one entry per
    /// QoD step, in feature order).
    pub impacts: Vec<f64>,
    /// The predicted trigger set: decision per QoD step (`true` =
    /// execute). On training waves this is the label vector (ε > maxε).
    pub predicted: Vec<bool>,
    /// Whether *this* step executed this wave.
    pub executed: bool,
    /// Number of steps deferred this wave (predecessor never executed) —
    /// workflow-wide, so `diagnose --json` reports full wave activity.
    pub deferred: u64,
    /// Running confidence that this step's output respects `maxε`
    /// (cumulative compliant-wave fraction over waves with ground truth).
    pub confidence: f64,
    /// The step's configured error bound `maxε`.
    pub max_epsilon: f64,
    /// Measured (simulated) output error ε — present only on waves with
    /// ground truth, i.e. the training/test phases.
    pub measured_epsilon: Option<f64>,
}

impl WaveDecisionRecord {
    /// Renders the record as a single JSON line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"wave\":{},\"phase\":\"{}\",\"step\":{},\"step_index\":{},\"impacts\":[",
            self.wave,
            self.phase,
            json_string(&self.step),
            self.step_index,
        );
        for (i, v) in self.impacts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("],\"predicted\":[");
        for (i, v) in self.predicted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(if *v { "true" } else { "false" });
        }
        let _ = write!(
            out,
            "],\"executed\":{},\"deferred\":{},\"confidence\":{},\"max_epsilon\":{}",
            self.executed, self.deferred, self.confidence, self.max_epsilon,
        );
        match self.measured_epsilon {
            Some(e) => {
                let _ = write!(out, ",\"measured_epsilon\":{e}");
            }
            None => out.push_str(",\"measured_epsilon\":null"),
        }
        out.push('}');
        out
    }

    /// Parses a record back from the JSON line format written by
    /// [`to_json`](Self::to_json). This is a purpose-built parser for the
    /// journal's own output, not a general JSON parser.
    #[must_use]
    pub fn from_json(line: &str) -> Option<Self> {
        let wave = field(line, "wave")?.parse().ok()?;
        let phase = match field(line, "phase")?.trim_matches('"') {
            "training" => "training",
            "application" => "application",
            _ => return None,
        };
        let step = unescape_json_string(field(line, "step")?)?;
        let step_index = field(line, "step_index")?.parse().ok()?;
        let impacts = array_field(line, "impacts")?
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.trim().parse().ok())
            .collect::<Option<Vec<f64>>>()?;
        let predicted = array_field(line, "predicted")?
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| match s.trim() {
                "true" => Some(true),
                "false" => Some(false),
                _ => None,
            })
            .collect::<Option<Vec<bool>>>()?;
        let executed = field(line, "executed")? == "true";
        // Absent in journals written before the field existed: default 0.
        let deferred = field(line, "deferred")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let confidence = field(line, "confidence")?.parse().ok()?;
        let max_epsilon = field(line, "max_epsilon")?.parse().ok()?;
        let measured = field(line, "measured_epsilon")?;
        let measured_epsilon = if measured == "null" {
            None
        } else {
            Some(measured.parse().ok()?)
        };
        Some(Self {
            wave,
            phase,
            step,
            step_index,
            impacts,
            predicted,
            executed,
            deferred,
            confidence,
            max_epsilon,
            measured_epsilon,
        })
    }
}

/// Undoes [`json_string`]: strips the surrounding quotes and resolves the
/// escape sequences that escaper emits.
fn unescape_json_string(quoted: &str) -> Option<String> {
    let body = quoted.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Extracts the raw scalar/string value of `"key":value` from a JSON line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        // String value: scan to the closing unescaped quote.
        let mut prev_backslash = false;
        for (i, ch) in stripped.char_indices() {
            match ch {
                '\\' if !prev_backslash => prev_backslash = true,
                '"' if !prev_backslash => return Some(&rest[..i + 2]),
                _ => prev_backslash = false,
            }
        }
        None
    } else {
        let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
        Some(&rest[..end])
    }
}

/// Extracts the comma-joined contents of `"key":[...]`.
fn array_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":[");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find(']')?;
    Some(&rest[..end])
}

/// A destination for journal records.
///
/// Implementations must be cheap per record; the engine calls
/// [`record`](Self::record) once per QoD step per wave while holding no
/// locks of its own.
pub trait JournalSink: Send + Sync + fmt::Debug {
    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Reports I/O failures; callers ([`Telemetry`](crate::Telemetry))
    /// count them into the `telemetry.journal_errors` counter instead of
    /// letting a broken sink take a wave down.
    fn record(&self, record: &WaveDecisionRecord) -> std::io::Result<()>;

    /// Flushes buffered records to durable storage (no-op by default).
    ///
    /// # Errors
    ///
    /// Reports I/O failures, like [`record`](Self::record).
    fn flush(&self) -> std::io::Result<()> {
        Ok(())
    }

    /// Where records end up, for human-readable reporting (a file path for
    /// file-backed sinks, `None` otherwise).
    fn path(&self) -> Option<&Path> {
        None
    }
}

/// A sink appending one JSON object per line to a file.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the journal file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(Self {
            path,
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// The file records are written to.
    #[must_use]
    pub fn file_path(&self) -> &Path {
        &self.path
    }
}

impl JournalSink for JsonlSink {
    fn record(&self, record: &WaveDecisionRecord) -> std::io::Result<()> {
        let mut w = self.writer.lock();
        writeln!(w, "{}", record.to_json())
    }

    fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().flush()
    }

    fn path(&self) -> Option<&Path> {
        Some(&self.path)
    }
}

/// An in-memory sink retaining every record (tests, ad-hoc inspection).
#[derive(Debug, Default)]
pub struct MemoryJournal {
    records: Mutex<Vec<WaveDecisionRecord>>,
}

impl MemoryJournal {
    /// Creates an empty in-memory journal.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out all records collected so far.
    #[must_use]
    pub fn records(&self) -> Vec<WaveDecisionRecord> {
        self.records.lock().clone()
    }

    /// Number of records collected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether no record has been collected yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }
}

impl JournalSink for MemoryJournal {
    fn record(&self, record: &WaveDecisionRecord) -> std::io::Result<()> {
        self.records.lock().push(record.clone());
        Ok(())
    }
}

/// Reads every well-formed record from a JSONL journal file.
///
/// # Errors
///
/// Propagates file-read failures; malformed lines are skipped.
pub fn read_journal(path: impl AsRef<Path>) -> std::io::Result<Vec<WaveDecisionRecord>> {
    let content = std::fs::read_to_string(path)?;
    Ok(content
        .lines()
        .filter_map(WaveDecisionRecord::from_json)
        .collect())
}

/// A convenience handle fanning one record out to many sinks.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    sinks: Vec<Arc<dyn JournalSink>>,
}

impl Journal {
    /// Creates a journal with no sinks (records are dropped).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink.
    pub fn add_sink(&mut self, sink: Arc<dyn JournalSink>) {
        self.sinks.push(sink);
    }

    /// Whether any sink is attached.
    #[must_use]
    pub fn has_sinks(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Fans `record` out to every sink. Every sink is attempted even if an
    /// earlier one fails; the first failure is reported.
    ///
    /// # Errors
    ///
    /// Returns the first sink failure.
    pub fn record(&self, record: &WaveDecisionRecord) -> std::io::Result<()> {
        let mut first_err = None;
        for sink in &self.sinks {
            if let Err(e) = sink.record(record) {
                first_err.get_or_insert(e);
            }
        }
        first_err.map_or(Ok(()), Err)
    }

    /// Flushes every sink; every sink is attempted even if an earlier one
    /// fails.
    ///
    /// # Errors
    ///
    /// Returns the first sink failure.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut first_err = None;
        for sink in &self.sinks {
            if let Err(e) = sink.flush() {
                first_err.get_or_insert(e);
            }
        }
        first_err.map_or(Ok(()), Err)
    }

    /// The first file-backed sink's path, if any.
    #[must_use]
    pub fn file_path(&self) -> Option<&Path> {
        self.sinks.iter().find_map(|s| s.path())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(wave: u64, eps: Option<f64>) -> WaveDecisionRecord {
        WaveDecisionRecord {
            wave,
            phase: if eps.is_some() {
                "training"
            } else {
                "application"
            },
            step: "agg \"x\"".into(),
            step_index: 0,
            impacts: vec![0.25, 1.5e-3],
            predicted: vec![true, false],
            executed: true,
            deferred: 1,
            confidence: 0.975,
            max_epsilon: 0.05,
            measured_epsilon: eps,
        }
    }

    #[test]
    fn json_roundtrip() {
        for rec in [sample(3, Some(0.0125)), sample(9, None)] {
            let line = rec.to_json();
            let back = WaveDecisionRecord::from_json(&line).expect("roundtrip parse");
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn legacy_lines_without_deferred_parse_as_zero() {
        let line = sample(3, None).to_json().replace(",\"deferred\":1", "");
        let back = WaveDecisionRecord::from_json(&line).expect("legacy parse");
        assert_eq!(back.deferred, 0);
        assert_eq!(back.wave, 3);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(WaveDecisionRecord::from_json("not json").is_none());
        assert!(WaveDecisionRecord::from_json("{\"wave\":1}").is_none());
    }

    #[test]
    fn memory_journal_collects() {
        let j = MemoryJournal::new();
        assert!(j.is_empty());
        j.record(&sample(1, None)).expect("memory record");
        j.record(&sample(2, None)).expect("memory record");
        assert_eq!(j.len(), 2);
        assert_eq!(j.records()[1].wave, 2);
    }

    #[test]
    fn jsonl_sink_writes_readable_file() {
        let path = std::env::temp_dir().join(format!(
            "smartflux-journal-test-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path).expect("create journal");
        sink.record(&sample(1, Some(0.2))).expect("record");
        sink.record(&sample(2, None)).expect("record");
        sink.flush().expect("flush");
        let records = read_journal(&path).expect("read journal");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].measured_epsilon, Some(0.2));
        assert_eq!(records[1].measured_epsilon, None);
        assert_eq!(sink.path(), Some(path.as_path()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_fans_out() {
        let a = Arc::new(MemoryJournal::new());
        let b = Arc::new(MemoryJournal::new());
        let mut j = Journal::new();
        assert!(!j.has_sinks());
        j.add_sink(a.clone());
        j.add_sink(b.clone());
        j.record(&sample(5, None)).expect("fan-out record");
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(j.file_path().is_none());
    }
}

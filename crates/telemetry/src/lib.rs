//! Unified telemetry for the SmartFlux reproduction.
//!
//! Three pillars, shared by every layer of the stack (engine, scheduler,
//! data store, bench harness):
//!
//! 1. a **metrics registry** ([`MetricsRegistry`]) — named atomic counters,
//!    gauges, and fixed-bucket latency histograms with p50/p95/p99
//!    summaries and a cheap [`snapshot`](Telemetry::snapshot);
//! 2. a **wave-decision journal** ([`WaveDecisionRecord`]) — one structured
//!    record per wave per QoD-managed step (phase, impact vector ι,
//!    predicted trigger set, confidence, `maxε`, measured ε), fanned out to
//!    pluggable [`JournalSink`]s such as the JSONL file sink;
//! 3. a **span API** ([`Span`], [`span!`]) — RAII guards timing code
//!    regions into the histogram registry and an optional [`TraceSink`].
//!
//! The entry point is [`Telemetry`]: a cheaply-cloneable handle that is
//! *disabled by default*. Disabled handles short-circuit every operation
//! on a single relaxed atomic load, so instrumented hot paths cost nearly
//! nothing until someone turns observability on.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use smartflux_telemetry::{span, MemoryJournal, Telemetry, WaveDecisionRecord};
//!
//! let telemetry = Telemetry::enabled();
//! let journal = Arc::new(MemoryJournal::new());
//! telemetry.add_journal_sink(journal.clone());
//!
//! {
//!     let _wave = span!(telemetry, "wms.wave", tag = 1);
//!     telemetry.counter("store.writes").incr();
//! }
//! telemetry.journal(&WaveDecisionRecord {
//!     wave: 1,
//!     phase: "training",
//!     step: "aggregate".into(),
//!     step_index: 0,
//!     impacts: vec![0.3],
//!     predicted: vec![true],
//!     executed: true,
//!     deferred: 0,
//!     confidence: 1.0,
//!     max_epsilon: 0.05,
//!     measured_epsilon: Some(0.07),
//! });
//!
//! let snap = telemetry.snapshot();
//! assert_eq!(snap.counter("store.writes"), 1);
//! assert_eq!(snap.histogram("wms.wave").unwrap().count, 1);
//! assert_eq!(journal.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod health;
mod journal;
mod metrics;
mod span;

pub use health::{Health, HealthSnapshot};
pub use journal::{
    read_journal, Journal, JournalSink, JsonlSink, MemoryJournal, WaveDecisionRecord,
};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    BUCKET_BOUNDS_NS, BUCKET_COUNT,
};
pub use span::{
    trace_epoch_ns, ContextGuard, MemoryTraceSink, Span, SpanEvent, TraceContext, TraceSink,
};

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Escapes `s` as a JSON string literal (with surrounding quotes).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Debug, Default)]
struct TelemetryInner {
    // tidy:atomic(enabled: relaxed): advisory on/off flag — callers tolerate a briefly stale read, and no data is published through it
    enabled: AtomicBool,
    registry: MetricsRegistry,
    journal: RwLock<Journal>,
    trace: RwLock<Option<Arc<dyn TraceSink>>>,
    health: Health,
}

/// The unified telemetry handle: registry + journal + trace sink behind
/// one enable/disable switch.
///
/// Cheaply cloneable; all clones share state. Every operation first checks
/// the enabled flag (one relaxed atomic load), so a disabled handle adds
/// near-zero cost to instrumented code.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl Telemetry {
    /// A disabled handle (the default): every operation is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle with no sinks attached (metrics only).
    #[must_use]
    pub fn enabled() -> Self {
        let t = Self::default();
        t.set_enabled(true);
        t
    }

    /// Whether instrumentation is live.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns instrumentation on or off at runtime.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The underlying metrics registry (live even while disabled, so
    /// handles can be pre-registered cheaply).
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// Gets or creates a counter. Prefer caching the handle on hot paths.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.inner.registry.counter(name)
    }

    /// Gets or creates a histogram. Prefer caching the handle on hot paths.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.inner.registry.histogram(name)
    }

    /// Gets or creates a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.inner.registry.gauge(name)
    }

    /// Opens a timing span feeding the histogram named `name`; `tag` is an
    /// optional numeric annotation delivered to the trace sink (use
    /// `u64::MAX`, or the [`span!`] macro's short form, when irrelevant).
    /// Returns an inert guard when disabled.
    pub fn span(&self, name: &'static str, tag: u64) -> Span {
        if !self.is_enabled() {
            return Span::disabled();
        }
        let histogram = self.inner.registry.histogram(name);
        let trace = self.inner.trace.read().clone();
        Span::start(name, tag, histogram, trace)
    }

    /// Attaches a journal sink (wave-decision records fan out to every
    /// attached sink).
    pub fn add_journal_sink(&self, sink: Arc<dyn JournalSink>) {
        self.inner.journal.write().add_sink(sink);
    }

    /// Whether any journal sink is attached.
    #[must_use]
    pub fn has_journal_sinks(&self) -> bool {
        self.inner.journal.read().has_sinks()
    }

    /// Sets (or clears) the trace sink receiving completed spans.
    pub fn set_trace_sink(&self, sink: Option<Arc<dyn TraceSink>>) {
        *self.inner.trace.write() = sink;
    }

    /// Whether a trace sink is attached (spans carry causal identity).
    #[must_use]
    pub fn has_trace_sink(&self) -> bool {
        self.inner.trace.read().is_some()
    }

    /// Captures the current thread's position in the causal tree, for
    /// re-entry on another thread via [`propagate`](Self::propagate).
    /// `None` when disabled, when no trace sink is attached, or when the
    /// thread is not inside a traced span.
    #[must_use]
    pub fn trace_context(&self) -> Option<TraceContext> {
        if !self.is_enabled() || !self.has_trace_sink() {
            return None;
        }
        span::current_context()
    }

    /// Re-enters a captured [`TraceContext`] on the current thread: while
    /// the returned guard lives, spans opened here become children of the
    /// captured span. `None` (or a disabled handle) yields an inert
    /// guard, so call sites can propagate unconditionally.
    pub fn propagate(&self, ctx: Option<TraceContext>) -> ContextGuard {
        match ctx {
            Some(ctx) if self.is_enabled() => ContextGuard::enter(ctx),
            _ => ContextGuard::inert(),
        }
    }

    /// Emits a retrospective trace-only span for an operation measured by
    /// the caller (e.g. a store op timed by its observer): recorded as a
    /// child of the current thread's innermost span, with its start
    /// back-dated by `elapsed`. Unlike [`span`](Self::span) this records
    /// no histogram — it exists purely for the causal tree, and it is
    /// dropped (never an orphan root) outside a traced region.
    pub fn trace_event(&self, name: &'static str, tag: u64, elapsed: std::time::Duration) {
        if !self.is_enabled() {
            return;
        }
        let Some(sink) = self.inner.trace.read().clone() else {
            return;
        };
        span::emit_trace_event(&sink, name, tag, elapsed);
    }

    /// Live engine-health registers (phase, last wave, WAL lag) for the
    /// observability plane's `/healthz`.
    #[must_use]
    pub fn health(&self) -> &Health {
        &self.inner.health
    }

    /// Writes one wave-decision record to every attached journal sink.
    /// No-op while disabled. A sink failure never propagates into the
    /// wave: it is counted into [`names::JOURNAL_ERRORS`] instead.
    pub fn journal(&self, record: &WaveDecisionRecord) {
        if !self.is_enabled() {
            return;
        }
        if self.inner.journal.read().record(record).is_err() {
            self.inner.registry.counter(names::JOURNAL_ERRORS).incr();
        }
    }

    /// Flushes every journal sink, counting failures into
    /// [`names::JOURNAL_ERRORS`].
    ///
    /// # Errors
    ///
    /// Returns the first sink failure so shutdown paths can surface it.
    pub fn flush(&self) -> std::io::Result<()> {
        let result = self.inner.journal.read().flush();
        if result.is_err() {
            self.inner.registry.counter(names::JOURNAL_ERRORS).incr();
        }
        result
    }

    /// The first file-backed journal sink's path, if any.
    #[must_use]
    pub fn journal_path(&self) -> Option<std::path::PathBuf> {
        self.inner.journal.read().file_path().map(Path::to_path_buf)
    }

    /// Captures a point-in-time snapshot of every instrument.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.registry.snapshot()
    }
}

/// Conventional instrument names used across the SmartFlux stack, kept in
/// one place so dashboards and tests don't chase string typos.
pub mod names {
    /// Wall-clock latency of one full wave (`Scheduler::run_wave`).
    pub const WAVE_LATENCY: &str = "wms.wave";
    /// Latency of one step execution.
    pub const STEP_LATENCY: &str = "wms.step";
    /// End-to-end latency of one step's run under its retry budget
    /// (attempts plus backoff delays); the step-level trace span.
    pub const STEP_TOTAL_LATENCY: &str = "wms.step_total";
    /// Latency of one step attempt (each retry is its own attempt span,
    /// a child of the step's [`STEP_TOTAL_LATENCY`] span).
    pub const STEP_ATTEMPT_LATENCY: &str = "wms.step_attempt";
    /// Steps executed.
    pub const STEPS_EXECUTED: &str = "wms.steps_executed";
    /// Steps skipped by the trigger policy.
    pub const STEPS_SKIPPED: &str = "wms.steps_skipped";
    /// Steps deferred awaiting a first predecessor execution.
    pub const STEPS_DEFERRED: &str = "wms.steps_deferred";
    /// Retry attempts consumed by failing steps (successful first attempts
    /// count zero).
    pub const STEP_RETRIES: &str = "wms.step_retries";
    /// Steps that failed unrecoverably (retry budget spent).
    pub const STEPS_FAILED: &str = "wms.steps_failed";
    /// Waves aborted on an unrecoverable step failure.
    pub const WAVES_ABORTED: &str = "wms.waves_aborted";
    /// Engine fallbacks to synchronous (always-trigger) execution after a
    /// predictor error or a step failure.
    pub const SDF_FALLBACKS: &str = "engine.sdf_fallbacks";
    /// Latency of one QoD impact computation.
    pub const IMPACT_LATENCY: &str = "engine.impact";
    /// Latency of one predictor query.
    pub const PREDICT_LATENCY: &str = "engine.predict";
    /// Latency of one model (re)build, including cross-validation.
    pub const TRAIN_LATENCY: &str = "engine.train";
    /// Latency of one ML-kernel inference pass (the flat-forest walk
    /// itself, excluding engine bookkeeping around the query).
    pub const ML_PREDICT_LATENCY: &str = "ml.predict_ns";
    /// Latency of one ML-kernel training pass (per-label model fitting
    /// only, excluding the cross-validated test phase that
    /// [`TRAIN_LATENCY`] covers).
    pub const ML_FIT_LATENCY: &str = "ml.fit_ns";
    /// Labels answered by the latest prediction pass (1 for per-step
    /// queries, the label count for whole-vector `predict_all` passes).
    pub const ML_BATCH_SIZE: &str = "ml.batch_size";
    /// Data-store read operations (gets, scans, snapshots).
    pub const STORE_READS: &str = "store.reads";
    /// Data-store write operations (puts, deletes).
    pub const STORE_WRITES: &str = "store.writes";
    /// Latency of data-store read operations.
    pub const STORE_READ_LATENCY: &str = "store.read";
    /// Latency of data-store write operations.
    pub const STORE_WRITE_LATENCY: &str = "store.write";
    /// Number of shards the data store was built with.
    pub const STORE_SHARDS: &str = "store.shards";
    /// Shard read-lock acquisitions that had to block on a writer.
    pub const STORE_SHARD_READ_CONTENTION: &str = "store.shard_read_contention";
    /// Shard write-lock acquisitions that had to block on another holder.
    pub const STORE_SHARD_WRITE_CONTENTION: &str = "store.shard_write_contention";
    /// Full-store writer quiesces taken (state exports / checkpoints).
    pub const STORE_QUIESCES: &str = "store.quiesces";
    /// Journal sink failures (failed record writes or flushes).
    pub const JOURNAL_ERRORS: &str = "telemetry.journal_errors";
    /// Bytes appended to the write-ahead log (frame headers included).
    pub const WAL_BYTES: &str = "durability.wal_bytes";
    /// Commit records appended to the write-ahead log (one per wave).
    pub const WAL_RECORDS: &str = "durability.wal_records";
    /// Checkpoints written (each compacts the WAL prefix it covers).
    pub const CHECKPOINTS: &str = "durability.checkpoints";
    /// Successful engine/store recoveries from a durability directory.
    pub const RECOVERIES: &str = "durability.recoveries";
    /// Latency of WAL fsyncs.
    pub const FSYNC_LATENCY: &str = "durability.fsync";
    /// Latency of one wave's WAL group-commit (sort + append + sync).
    pub const WAL_COMMIT_LATENCY: &str = "durability.commit";
    /// Latency of one checkpoint write (store export + file + compaction).
    pub const CHECKPOINT_WRITE_LATENCY: &str = "durability.checkpoint_write";
    /// Connections accepted by the network plane since start.
    pub const NET_CONNECTIONS: &str = "net.connections";
    /// Connections currently being served by the network plane.
    pub const NET_ACTIVE_CONNECTIONS: &str = "net.active_connections";
    /// SFNP frames successfully read from clients.
    pub const NET_FRAMES_IN: &str = "net.frames_in";
    /// SFNP frames written to clients (responses and error frames).
    pub const NET_FRAMES_OUT: &str = "net.frames_out";
    /// Torn, corrupt or undecodable frames received (each closes its
    /// connection; session state is never touched).
    pub const NET_FRAME_ERRORS: &str = "net.frame_errors";
    /// Submissions rejected with a `Busy` frame because the session's
    /// bounded queue was full.
    pub const NET_BUSY_REJECTIONS: &str = "net.busy_rejections";
    /// Sessions currently open on the engine host.
    pub const NET_SESSIONS_OPEN: &str = "net.sessions_open";
    /// Jobs queued across all session queues (sampled at enqueue/dequeue).
    pub const NET_QUEUE_DEPTH: &str = "net.queue_depth";
    /// Server-side submit→result latency of one `SubmitWave` request
    /// (write application plus the triggered wave, queueing excluded).
    pub const NET_SUBMIT_LATENCY: &str = "net.submit";
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_by_default_and_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let journal = Arc::new(MemoryJournal::new());
        t.add_journal_sink(journal.clone());
        {
            let s = span!(t, "op");
            assert!(!s.is_recording());
        }
        t.journal(&WaveDecisionRecord {
            wave: 1,
            phase: "training",
            step: "s".into(),
            step_index: 0,
            impacts: vec![],
            predicted: vec![],
            executed: true,
            deferred: 0,
            confidence: 1.0,
            max_epsilon: 0.1,
            measured_epsilon: None,
        });
        assert!(journal.is_empty());
        assert_eq!(t.snapshot().histograms.len(), 0);
    }

    #[test]
    fn enable_at_runtime() {
        let t = Telemetry::disabled();
        t.set_enabled(true);
        {
            let _s = span!(t, "op", tag = 2);
        }
        t.counter("c").incr();
        let snap = t.snapshot();
        assert_eq!(snap.histogram("op").unwrap().count, 1);
        assert_eq!(snap.counter("c"), 1);
    }

    #[test]
    fn trace_sink_sees_spans() {
        let t = Telemetry::enabled();
        let trace = Arc::new(MemoryTraceSink::new());
        t.set_trace_sink(Some(trace.clone()));
        {
            let _s = t.span("traced", 42);
        }
        let events = trace.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].tag, 42);
        assert!(events[0].elapsed < Duration::from_secs(1));
    }

    #[test]
    fn journal_path_reports_file_sink() {
        let t = Telemetry::enabled();
        assert!(t.journal_path().is_none());
        let path = std::env::temp_dir().join(format!(
            "smartflux-telemetry-path-{}.jsonl",
            std::process::id()
        ));
        t.add_journal_sink(Arc::new(JsonlSink::create(&path).unwrap()));
        assert_eq!(t.journal_path(), Some(path.clone()));
        let _ = std::fs::remove_file(&path);
    }

    #[derive(Debug)]
    struct FailingSink;

    impl JournalSink for FailingSink {
        fn record(&self, _record: &WaveDecisionRecord) -> std::io::Result<()> {
            Err(std::io::Error::other("sink broken"))
        }

        fn flush(&self) -> std::io::Result<()> {
            Err(std::io::Error::other("sink broken"))
        }
    }

    #[test]
    fn sink_failures_feed_the_error_counter() {
        let t = Telemetry::enabled();
        t.add_journal_sink(Arc::new(FailingSink));
        // A healthy sink after the broken one must still receive records.
        let healthy = Arc::new(MemoryJournal::new());
        t.add_journal_sink(healthy.clone());

        t.journal(&WaveDecisionRecord {
            wave: 1,
            phase: "training",
            step: "s".into(),
            step_index: 0,
            impacts: vec![],
            predicted: vec![],
            executed: true,
            deferred: 0,
            confidence: 1.0,
            max_epsilon: 0.1,
            measured_epsilon: None,
        });
        assert_eq!(healthy.len(), 1);
        assert_eq!(t.snapshot().counter(names::JOURNAL_ERRORS), 1);

        let flushed = t.flush();
        assert!(flushed.is_err());
        assert_eq!(t.snapshot().counter(names::JOURNAL_ERRORS), 2);
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }
}

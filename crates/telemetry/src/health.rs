//! Engine health state served by the observability plane's `/healthz`.
//!
//! A tiny always-on bundle of atomics the engine refreshes at wave
//! boundaries: phase, last completed wave (with its timestamp), and the
//! WAL lag in bytes. Living in the telemetry crate keeps the server crate
//! free of engine dependencies — the engine writes through its
//! [`Telemetry`](crate::Telemetry) handle, the server reads a
//! [`HealthSnapshot`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::RwLock;

use crate::span::trace_epoch_ns;

/// Live health registers shared through a [`Telemetry`](crate::Telemetry)
/// handle.
#[derive(Debug)]
pub struct Health {
    phase: RwLock<&'static str>,
    // tidy:atomic(last_wave: relaxed): liveness gauge sampled by /health — a stale value only ages the report by one poll
    last_wave: AtomicU64,
    /// Trace-epoch nanoseconds of the last `note_wave`; `0` = never.
    // tidy:atomic(last_wave_at_ns: relaxed): liveness gauge sampled by /health — a stale value only ages the report by one poll
    last_wave_at_ns: AtomicU64,
    // tidy:atomic(wal_lag_bytes: relaxed): liveness gauge sampled by /health — a stale value only ages the report by one poll
    wal_lag_bytes: AtomicU64,
}

impl Default for Health {
    fn default() -> Self {
        Self {
            phase: RwLock::new("idle"),
            last_wave: AtomicU64::new(0),
            last_wave_at_ns: AtomicU64::new(0),
            wal_lag_bytes: AtomicU64::new(0),
        }
    }
}

impl Health {
    /// Sets the engine phase label (`"training"`, `"application"`, ...).
    pub fn set_phase(&self, phase: &'static str) {
        *self.phase.write() = phase;
    }

    /// Records that wave `wave` just completed (stamps the current time).
    pub fn note_wave(&self, wave: u64) {
        self.last_wave.store(wave, Ordering::Relaxed);
        self.last_wave_at_ns
            .store(trace_epoch_ns().max(1), Ordering::Relaxed);
    }

    /// Publishes the current WAL length (bytes past the last checkpoint).
    pub fn set_wal_lag_bytes(&self, bytes: u64) {
        self.wal_lag_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Captures a point-in-time health view.
    #[must_use]
    pub fn snapshot(&self) -> HealthSnapshot {
        let at = self.last_wave_at_ns.load(Ordering::Relaxed);
        let last_wave_age = if at == 0 {
            None
        } else {
            Some(Duration::from_nanos(trace_epoch_ns().saturating_sub(at)))
        };
        HealthSnapshot {
            phase: *self.phase.read(),
            last_wave: self.last_wave.load(Ordering::Relaxed),
            last_wave_age,
            wal_lag_bytes: self.wal_lag_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of [`Health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Engine phase label; `"idle"` until the engine reports one.
    pub phase: &'static str,
    /// Last completed wave number (0 = none yet).
    pub last_wave: u64,
    /// Time since the last completed wave, `None` before the first.
    pub last_wave_age: Option<Duration>,
    /// WAL bytes accumulated since the last checkpoint.
    pub wal_lag_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_report_idle() {
        let h = Health::default();
        let s = h.snapshot();
        assert_eq!(s.phase, "idle");
        assert_eq!(s.last_wave, 0);
        assert!(s.last_wave_age.is_none());
        assert_eq!(s.wal_lag_bytes, 0);
    }

    #[test]
    fn wave_notes_stamp_an_age() {
        let h = Health::default();
        h.set_phase("application");
        h.note_wave(42);
        h.set_wal_lag_bytes(4096);
        let s = h.snapshot();
        assert_eq!(s.phase, "application");
        assert_eq!(s.last_wave, 42);
        assert!(s.last_wave_age.is_some());
        assert!(s.last_wave_age.unwrap() < Duration::from_secs(60));
        assert_eq!(s.wal_lag_bytes, 4096);
    }
}

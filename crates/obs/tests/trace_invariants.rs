//! Trace-tree invariants over a live chaos run.
//!
//! Drives the PR 3 fault-injection setup (a transiently failing step
//! under a retry budget) with causal tracing on, then checks the span
//! taxonomy end to end:
//!
//! 1. every wave produces exactly one `wms.wave` root span,
//! 2. every `wms.step_attempt` span is a child of a `wms.step_total`
//!    span (retry storms stay attached to their step),
//! 3. no span leaks across waves — each tree's spans share its root's
//!    trace id by construction, so a leak would show up as an orphan or
//!    an extra root.

use std::collections::BTreeSet;
use std::sync::Arc;

use smartflux_datastore::{ContainerRef, DataStore, Value};
use smartflux_obs::trace::build_forest;
use smartflux_obs::RingTraceSink;
use smartflux_telemetry::{names, Telemetry, TraceSink};
use smartflux_wms::{
    FaultSchedule, FaultyStep, FnStep, GraphBuilder, RetryPolicy, Scheduler, StepContext,
    SynchronousPolicy, Workflow,
};

fn chaos_scheduler(telemetry: Telemetry) -> Scheduler {
    let store = DataStore::new();
    store
        .ensure_container(&ContainerRef::family("t", "f"))
        .unwrap();
    let mut b = GraphBuilder::new("chaos");
    let src = b.add_step("src");
    let flaky = b.add_step("flaky");
    b.add_edge(src, flaky).unwrap();
    let mut w = Workflow::new(b.build().unwrap());
    w.bind(
        src,
        FnStep::new(|ctx: &StepContext| {
            ctx.put("t", "f", "src", "v", Value::from(ctx.wave() as f64))?;
            Ok(())
        }),
    )
    .source();
    // Fails twice on every 3rd wave; the retry budget absorbs it.
    w.bind(
        flaky,
        FaultyStep::new(
            FnStep::new(|ctx: &StepContext| {
                let v = ctx.get_f64("t", "f", "src", "v", 0.0)?;
                ctx.put("t", "f", "flaky", "v", Value::from(v * 2.0))?;
                Ok(())
            }),
            FaultSchedule::EveryKthWave {
                every: 3,
                failures: 2,
            },
        ),
    )
    .retry(RetryPolicy::attempts(3));
    let mut scheduler = Scheduler::new(w, store, Box::new(SynchronousPolicy));
    scheduler.set_telemetry(telemetry);
    scheduler
}

#[test]
fn chaos_run_produces_one_connected_tree_per_wave() {
    let telemetry = Telemetry::enabled();
    let ring = Arc::new(RingTraceSink::with_capacity(4096));
    telemetry.set_trace_sink(Some(Arc::clone(&ring) as Arc<dyn TraceSink>));

    let waves = 12u64;
    let mut scheduler = chaos_scheduler(telemetry.clone());
    scheduler.run_waves(waves).unwrap();
    let retries = telemetry.snapshot().counter(names::STEP_RETRIES);
    assert!(
        retries >= 4,
        "chaos schedule must force retries, saw {retries}"
    );

    let events = ring.events();
    let forest = build_forest(&events);

    // Invariant 1: one root per wave, and it is the wave span.
    assert!(forest.single_rooted(), "every trace has exactly one root");
    assert_eq!(forest.trees.len(), waves as usize);
    let mut root_waves = BTreeSet::new();
    for tree in &forest.trees {
        assert_eq!(tree.root.event.name, names::WAVE_LATENCY);
        assert!(
            root_waves.insert(tree.root.event.tag),
            "duplicate wave root"
        );
    }
    assert_eq!(root_waves, (1..=waves).collect::<BTreeSet<_>>());

    // Invariant 2: attempts hang off step spans; steps hang off the wave.
    let mut attempt_spans = 0usize;
    for tree in &forest.trees {
        for step in &tree.root.children {
            assert_eq!(
                step.event.name,
                names::STEP_TOTAL_LATENCY,
                "wave children are step spans"
            );
            assert!(!step.children.is_empty(), "step span has attempt children");
            for attempt in &step.children {
                assert_eq!(attempt.event.name, names::STEP_ATTEMPT_LATENCY);
            }
            attempt_spans += step.children.len();
        }
    }
    // 12 waves × 2 steps = 24 first attempts, plus 2 retries on each of
    // the 4 faulted waves.
    assert_eq!(attempt_spans, 32);

    // Faulted waves carry 3 attempt spans under the flaky step.
    let faulted = forest
        .trees
        .iter()
        .filter(|t| t.root.children.iter().any(|step| step.children.len() == 3))
        .count();
    assert_eq!(faulted, 4, "waves 3, 6, 9, 12 retried twice each");

    // Invariant 3: nothing dangles — no orphans, and every recorded
    // traced span landed in exactly one tree.
    assert_eq!(forest.orphans, 0);
    assert_eq!(forest.untraced, 0);
    let treed: usize = forest.trees.iter().map(|t| t.root.size()).sum();
    assert_eq!(treed, events.len());
}

#[test]
fn parallel_waves_keep_spans_attached_to_their_wave() {
    let telemetry = Telemetry::enabled();
    let ring = Arc::new(RingTraceSink::with_capacity(4096));
    telemetry.set_trace_sink(Some(Arc::clone(&ring) as Arc<dyn TraceSink>));

    let mut scheduler = chaos_scheduler(telemetry);
    for _ in 0..6 {
        scheduler.run_wave_parallel().unwrap();
    }

    let forest = build_forest(&ring.events());
    assert!(forest.single_rooted());
    assert_eq!(forest.trees.len(), 6);
    assert_eq!(forest.orphans, 0, "worker threads must propagate context");
    for tree in &forest.trees {
        assert_eq!(tree.root.event.name, names::WAVE_LATENCY);
        // Both steps ran (src, flaky) on every wave.
        assert_eq!(tree.root.children.len(), 2);
    }
}

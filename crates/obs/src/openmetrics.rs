//! OpenMetrics text exposition: renderer and a minimal conformance parser.
//!
//! [`render`] turns a [`MetricsSnapshot`] into the OpenMetrics text
//! format served on `/metrics`:
//!
//! - counters become `counter` families with the mandatory `_total`
//!   sample suffix,
//! - gauges become `gauge` families,
//! - histograms are exported twice — once as a `histogram` family in
//!   seconds with the full cumulative `le` bucket series (loss-free,
//!   thanks to [`HistogramSnapshot::buckets`]) and once as a `summary`
//!   family carrying the precomputed p50/p95/p99 quantiles.
//!
//! Dotted SmartFlux names (`wms.step_retries`) are sanitised to the
//! exposition charset (`wms_step_retries`); each `HELP` line carries the
//! original dotted name so the mapping stays greppable.
//!
//! [`parse`] is the matching hand-rolled parser used by the conformance
//! test and the CI scrape job: it checks family metadata, sample/family
//! consistency, cumulative bucket monotonicity, and the `# EOF` trailer.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use smartflux_telemetry::{HistogramSnapshot, MetricsSnapshot, BUCKET_BOUNDS_NS};

/// The content type `/metrics` responses declare.
pub const CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Sanitises a SmartFlux instrument name into the OpenMetrics charset.
#[must_use]
pub fn metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Formats nanoseconds as decimal seconds without float round-trips.
fn seconds(ns: u64) -> String {
    let secs = ns / 1_000_000_000;
    let frac = ns % 1_000_000_000;
    if frac == 0 {
        return format!("{secs}");
    }
    let mut digits = format!("{frac:09}");
    while digits.ends_with('0') {
        digits.pop();
    }
    format!("{secs}.{digits}")
}

fn render_histogram(out: &mut String, base: &str, original: &str, h: &HistogramSnapshot) {
    let family = format!("{base}_seconds");
    let _ = writeln!(out, "# HELP {family} latency of {original} in seconds");
    let _ = writeln!(out, "# TYPE {family} histogram");
    let mut cumulative = 0u64;
    for (i, bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
        cumulative += h.buckets.get(i).copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "{family}_bucket{{le=\"{}\"}} {cumulative}",
            seconds(*bound)
        );
    }
    let _ = writeln!(out, "{family}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{family}_sum {}", seconds(h.sum_ns));
    let _ = writeln!(out, "{family}_count {}", h.count);

    let quantiles = format!("{base}_quantile_seconds");
    let _ = writeln!(
        out,
        "# HELP {quantiles} bucketed quantiles of {original} in seconds"
    );
    let _ = writeln!(out, "# TYPE {quantiles} summary");
    for (q, v) in [("0.5", h.p50_ns), ("0.95", h.p95_ns), ("0.99", h.p99_ns)] {
        let _ = writeln!(out, "{quantiles}{{quantile=\"{q}\"}} {}", seconds(v));
    }
    let _ = writeln!(out, "{quantiles}_sum {}", seconds(h.sum_ns));
    let _ = writeln!(out, "{quantiles}_count {}", h.count);
}

/// Renders `snapshot` as an OpenMetrics text exposition, `# EOF` included.
#[must_use]
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    for (name, value) in &snapshot.counters {
        let family = metric_name(name);
        let _ = writeln!(out, "# HELP {family} cumulative count of {name}");
        let _ = writeln!(out, "# TYPE {family} counter");
        let _ = writeln!(out, "{family}_total {value}");
    }
    for (name, value) in &snapshot.gauges {
        let family = metric_name(name);
        let _ = writeln!(out, "# HELP {family} current value of {name}");
        let _ = writeln!(out, "# TYPE {family} gauge");
        let _ = writeln!(out, "{family} {value}");
    }
    for (name, h) in &snapshot.histograms {
        render_histogram(&mut out, &metric_name(name), name, h);
    }
    out.push_str("# EOF\n");
    out
}

/// The family kinds the renderer emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// Monotonic counter (`_total` samples).
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Cumulative-bucket histogram (`_bucket`/`_sum`/`_count`).
    Histogram,
    /// Quantile summary.
    Summary,
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name, suffixes included.
    pub name: String,
    /// Label set, e.g. `le` or `quantile`.
    pub labels: BTreeMap<String, String>,
    /// Sample value.
    pub value: f64,
}

/// One parsed metric family: metadata plus its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Declared type.
    pub kind: FamilyKind,
    /// `HELP` text (the renderer embeds the original dotted name here).
    pub help: String,
    /// Samples in exposition order.
    pub samples: Vec<Sample>,
}

/// A parsed exposition: families by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// Families keyed by family name.
    pub families: BTreeMap<String, Family>,
}

impl Exposition {
    /// Looks up the sample value for SmartFlux counter `name`
    /// (dotted form), if present.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> Option<f64> {
        let family = metric_name(name);
        let sample_name = format!("{family}_total");
        self.families.get(&family).and_then(|f| {
            f.samples
                .iter()
                .find(|s| s.name == sample_name)
                .map(|s| s.value)
        })
    }

    /// Looks up the gauge value for SmartFlux gauge `name` (dotted form).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let family = metric_name(name);
        self.families
            .get(&family)
            .and_then(|f| f.samples.iter().find(|s| s.name == family).map(|s| s.value))
    }

    /// Quantile `q` (e.g. `"0.99"`) of SmartFlux histogram `name`.
    #[must_use]
    pub fn quantile(&self, name: &str, q: &str) -> Option<f64> {
        let family = format!("{}_quantile_seconds", metric_name(name));
        self.families.get(&family).and_then(|f| {
            f.samples
                .iter()
                .find(|s| s.labels.get("quantile").is_some_and(|v| v == q))
                .map(|s| s.value)
        })
    }
}

/// Strips known sample suffixes to find the owning family name.
fn family_of(sample_name: &str, families: &BTreeMap<String, Family>) -> Option<String> {
    if families.contains_key(sample_name) {
        return Some(sample_name.to_owned());
    }
    for suffix in ["_total", "_bucket", "_sum", "_count"] {
        if let Some(stem) = sample_name.strip_suffix(suffix) {
            if families.contains_key(stem) {
                return Some(stem.to_owned());
            }
        }
    }
    None
}

fn parse_labels(raw: &str) -> Result<BTreeMap<String, String>, String> {
    let mut labels = BTreeMap::new();
    for pair in raw.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("malformed label pair `{pair}`"))?;
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted label value in `{pair}`"))?;
        labels.insert(key.trim().to_owned(), value.to_owned());
    }
    Ok(labels)
}

/// Parses an OpenMetrics text exposition as produced by [`render`].
///
/// Validates structure rather than merely tokenising: the exposition must
/// end with `# EOF`, every sample must belong to a declared family, a
/// family must not be declared twice, histogram `le` buckets must be
/// cumulative (non-decreasing ending at `+Inf == _count`), and values
/// must parse as numbers.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut exposition = Exposition::default();
    let mut saw_eof = false;
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if saw_eof {
            return Err(format!("line {n}: content after # EOF"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (family, help) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: HELP without text"))?;
            exposition
                .families
                .entry(family.to_owned())
                .or_insert(Family {
                    kind: FamilyKind::Gauge,
                    help: String::new(),
                    samples: Vec::new(),
                })
                .help = help.to_owned();
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (family, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: TYPE without kind"))?;
            let kind = match kind {
                "counter" => FamilyKind::Counter,
                "gauge" => FamilyKind::Gauge,
                "histogram" => FamilyKind::Histogram,
                "summary" => FamilyKind::Summary,
                other => return Err(format!("line {n}: unknown family type `{other}`")),
            };
            let entry = exposition
                .families
                .entry(family.to_owned())
                .or_insert(Family {
                    kind,
                    help: String::new(),
                    samples: Vec::new(),
                });
            if !entry.samples.is_empty() {
                return Err(format!("line {n}: TYPE for `{family}` after its samples"));
            }
            entry.kind = kind;
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {n}: unsupported comment form"));
        }

        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find('{') {
            Some(open) => {
                let close = line[open..]
                    .find('}')
                    .map(|c| open + c)
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (
                    (line[..open].to_owned(), Some(&line[open + 1..close])),
                    line[close + 1..].trim(),
                )
            }
            None => {
                let (name, value) = line
                    .split_once(' ')
                    .ok_or_else(|| format!("line {n}: sample without value"))?;
                ((name.to_owned(), None), value.trim())
            }
        };
        let (name, raw_labels) = name_part;
        let labels = match raw_labels {
            Some(raw) => parse_labels(raw).map_err(|e| format!("line {n}: {e}"))?,
            None => BTreeMap::new(),
        };
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("line {n}: non-numeric value `{value_part}`"))?;
        let family = family_of(&name, &exposition.families)
            .ok_or_else(|| format!("line {n}: sample `{name}` has no declared family"))?;
        if let Some(entry) = exposition.families.get_mut(&family) {
            entry.samples.push(Sample {
                name,
                labels,
                value,
            });
        }
    }
    if !saw_eof {
        return Err("missing # EOF trailer".into());
    }
    validate_histograms(&exposition)?;
    Ok(exposition)
}

/// Checks cumulative bucket monotonicity for every histogram family.
fn validate_histograms(exposition: &Exposition) -> Result<(), String> {
    for (name, family) in &exposition.families {
        if family.kind != FamilyKind::Histogram {
            continue;
        }
        let mut last = 0.0f64;
        let mut inf = None;
        let mut count = None;
        for sample in &family.samples {
            if sample.name.ends_with("_bucket") {
                if sample.value < last {
                    return Err(format!("{name}: non-cumulative le buckets"));
                }
                last = sample.value;
                if sample.labels.get("le").is_some_and(|le| le == "+Inf") {
                    inf = Some(sample.value);
                }
            } else if sample.name.ends_with("_count") {
                count = Some(sample.value);
            }
        }
        match (inf, count) {
            (Some(i), Some(c)) if (i - c).abs() < f64::EPSILON => {}
            _ => return Err(format!("{name}: +Inf bucket must equal _count")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartflux_telemetry::Telemetry;
    use std::time::Duration;

    #[test]
    fn seconds_formatting_is_exact() {
        assert_eq!(seconds(0), "0");
        assert_eq!(seconds(1_000), "0.000001");
        assert_eq!(seconds(1_500_000_000), "1.5");
        assert_eq!(seconds(2_000_000_000), "2");
    }

    #[test]
    fn render_and_parse_round_trip() {
        let t = Telemetry::enabled();
        t.counter("wms.step_retries").add(3);
        t.gauge("store.shard_write_contention").set(7);
        let h = t.histogram("wms.wave");
        for _ in 0..10 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));

        let text = render(&t.snapshot());
        assert!(text.ends_with("# EOF\n"));
        let parsed = parse(&text).expect("own exposition must parse");

        assert_eq!(parsed.counter_total("wms.step_retries"), Some(3.0));
        assert_eq!(parsed.gauge("store.shard_write_contention"), Some(7.0));
        // Bucketed p50 of 100 µs is the 100 µs bucket bound.
        assert_eq!(parsed.quantile("wms.wave", "0.5"), Some(0.0001));
        assert_eq!(parsed.quantile("wms.wave", "0.99"), Some(0.05));
        // HELP carries the dotted name for greppability.
        let family = parsed.families.get("wms_step_retries").unwrap();
        assert!(family.help.contains("wms.step_retries"));
        assert_eq!(family.kind, FamilyKind::Counter);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_loss_free() {
        let t = Telemetry::enabled();
        let h = t.histogram("x.y");
        h.record(Duration::from_micros(1)); // 1e-6 bucket
        h.record(Duration::from_micros(1));
        h.record(Duration::from_secs(1000)); // overflow
        let text = render(&t.snapshot());
        let parsed = parse(&text).unwrap();
        let family = parsed.families.get("x_y_seconds").unwrap();
        assert_eq!(family.kind, FamilyKind::Histogram);
        let first = family
            .samples
            .iter()
            .find(|s| s.labels.get("le").is_some_and(|le| le == "0.000001"))
            .unwrap();
        assert_eq!(first.value, 2.0);
        let inf = family
            .samples
            .iter()
            .find(|s| s.labels.get("le").is_some_and(|le| le == "+Inf"))
            .unwrap();
        assert_eq!(inf.value, 3.0);
    }

    #[test]
    fn parser_rejects_structural_violations() {
        assert!(parse("no_eof 1\n").is_err());
        assert!(parse("orphan_sample 1\n# EOF\n").is_err());
        assert!(
            parse("# TYPE a counter\na_total nope\n# EOF\n").is_err(),
            "non-numeric value must be rejected"
        );
        let shuffled = "# TYPE h histogram\n\
                        h_bucket{le=\"0.1\"} 5\n\
                        h_bucket{le=\"+Inf\"} 3\n\
                        h_count 3\n\
                        # EOF\n";
        assert!(parse(shuffled).is_err(), "non-cumulative buckets rejected");
        assert!(parse("# TYPE a counter\na_total 1\n# EOF\nx 1\n").is_err());
    }

    #[test]
    fn metric_name_sanitises_dots() {
        assert_eq!(metric_name("wms.step_retries"), "wms_step_retries");
        assert_eq!(metric_name("a-b c"), "a_b_c");
    }
}

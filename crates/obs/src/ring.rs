//! Bounded ring buffers collecting telemetry streams for live serving.
//!
//! Both rings share the same shape: a fixed number of slots claimed by a
//! single `fetch_add` on a head counter, each slot behind its own tiny
//! mutex. Writers never block each other (distinct claims hit distinct
//! slots; a lapped writer only contends with the reader on one slot), the
//! memory footprint is fixed, and the reader reconstructs the tail in
//! oldest-to-newest order from the head counter.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use smartflux_telemetry::{JournalSink, SpanEvent, TraceSink, WaveDecisionRecord};

/// A lock-free bounded ring of completed [`SpanEvent`]s.
///
/// The production [`TraceSink`]: attach with
/// [`Telemetry::set_trace_sink`](smartflux_telemetry::Telemetry::set_trace_sink)
/// and the last `capacity` spans stay available for `/trace` exports and
/// invariant checks, no matter how long the run is.
#[derive(Debug)]
pub struct RingTraceSink {
    slots: Vec<Mutex<Option<SpanEvent>>>,
    // tidy:atomic(head: acq-rel): claim counter — acq-rel claims pair with acquire reads so a reader never walks slots ahead of the claims it observed
    head: AtomicU64,
}

impl RingTraceSink {
    /// Creates a ring keeping the last `capacity` spans (min 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained spans.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever recorded (not the retained count).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Copies the retained spans out, oldest first.
    ///
    /// Concurrent writers may lap slots while this runs; the result is a
    /// best-effort tail, which is all a live endpoint needs.
    #[must_use]
    pub fn events(&self) -> Vec<SpanEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let mut out = Vec::with_capacity(self.slots.len());
        // Oldest surviving claim is `head - cap` (or 0 before wrapping).
        let start = head.saturating_sub(cap);
        for claim in start..head {
            let idx = (claim % cap) as usize;
            if let Some(event) = self.slots[idx].lock().clone() {
                out.push(event);
            }
        }
        out
    }
}

impl TraceSink for RingTraceSink {
    fn span_completed(&self, event: &SpanEvent) {
        let claim = self.head.fetch_add(1, Ordering::AcqRel);
        let idx = (claim % self.slots.len() as u64) as usize;
        *self.slots[idx].lock() = Some(event.clone());
    }
}

/// A bounded ring of recent [`WaveDecisionRecord`]s.
///
/// Attach as a journal sink and the `/waves` endpoint can serve the tail
/// of the wave-decision journal without any file I/O.
#[derive(Debug)]
pub struct RingJournal {
    slots: Vec<Mutex<Option<WaveDecisionRecord>>>,
    // tidy:atomic(head: acq-rel): claim counter — acq-rel claims pair with acquire reads so a reader never walks slots ahead of the claims it observed
    head: AtomicU64,
}

impl RingJournal {
    /// Creates a ring keeping the last `capacity` records (min 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Copies the retained records out, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<WaveDecisionRecord> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let mut out = Vec::with_capacity(self.slots.len());
        let start = head.saturating_sub(cap);
        for claim in start..head {
            let idx = (claim % cap) as usize;
            if let Some(record) = self.slots[idx].lock().clone() {
                out.push(record);
            }
        }
        out
    }
}

impl JournalSink for RingJournal {
    fn record(&self, record: &WaveDecisionRecord) -> std::io::Result<()> {
        let claim = self.head.fetch_add(1, Ordering::AcqRel);
        let idx = (claim % self.slots.len() as u64) as usize;
        *self.slots[idx].lock() = Some(record.clone());
        Ok(())
    }

    fn flush(&self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn span(tag: u64) -> SpanEvent {
        SpanEvent {
            name: "test.span",
            tag,
            trace_id: 1,
            span_id: tag + 1,
            parent_id: 0,
            start_ns: tag,
            elapsed: Duration::from_micros(1),
        }
    }

    #[test]
    fn ring_keeps_the_newest_tail_in_order() {
        let ring = RingTraceSink::with_capacity(4);
        for tag in 0..10 {
            ring.span_completed(&span(tag));
        }
        let tags: Vec<u64> = ring.events().iter().map(|e| e.tag).collect();
        assert_eq!(tags, vec![6, 7, 8, 9]);
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.capacity(), 4);
    }

    #[test]
    fn ring_under_capacity_returns_everything() {
        let ring = RingTraceSink::with_capacity(8);
        for tag in 0..3 {
            ring.span_completed(&span(tag));
        }
        assert_eq!(ring.events().len(), 3);
    }

    #[test]
    fn concurrent_writers_never_lose_the_ring() {
        let ring = Arc::new(RingTraceSink::with_capacity(64));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..100 {
                        ring.span_completed(&span(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 400);
        assert_eq!(ring.events().len(), 64);
    }

    #[test]
    fn journal_ring_retains_records() {
        let ring = RingJournal::with_capacity(2);
        for wave in 1..=3u64 {
            ring.record(&WaveDecisionRecord {
                wave,
                phase: "application",
                step: "agg".into(),
                step_index: 0,
                impacts: vec![0.1],
                predicted: vec![true],
                executed: true,
                deferred: 0,
                confidence: 1.0,
                max_epsilon: 0.1,
                measured_epsilon: None,
            })
            .unwrap();
        }
        let waves: Vec<u64> = ring.records().iter().map(|r| r.wave).collect();
        assert_eq!(waves, vec![2, 3]);
        ring.flush().unwrap();
    }
}

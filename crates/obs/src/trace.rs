//! Causal span-tree reconstruction and invariant checks.
//!
//! [`SpanEvent`]s arrive from the ring as a flat, completion-ordered
//! stream. [`build_forest`] reassembles them into one tree per trace root
//! using the `trace_id`/`span_id`/`parent_id` identities, and reports the
//! anomalies the trace-tree invariants care about: spans whose parent
//! never completed into the ring (orphans) and traces with more than one
//! root.

use std::collections::{BTreeMap, BTreeSet};

use smartflux_telemetry::SpanEvent;

/// One reassembled span with its children, sorted by start time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The completed span.
    pub event: SpanEvent,
    /// Child spans, ordered by `start_ns`.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total number of spans in this subtree (including itself).
    #[must_use]
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanNode::size).sum::<usize>()
    }

    /// Depth-first pre-order walk over the subtree.
    pub fn walk(&self, visit: &mut impl FnMut(&SpanNode)) {
        visit(self);
        for child in &self.children {
            child.walk(visit);
        }
    }
}

/// One causal tree: a root span and everything it encloses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// The `trace_id` shared by every span in the tree.
    pub trace_id: u64,
    /// The root span (its `parent_id` is 0).
    pub root: SpanNode,
}

/// The result of reassembling a flat span stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceForest {
    /// One tree per root span, ordered by root `start_ns`. A well-formed
    /// capture has exactly one tree per trace id.
    pub trees: Vec<TraceTree>,
    /// Spans referencing a parent that is not in the stream (typically
    /// because the ring lapped it). They are excluded from the trees.
    pub orphans: usize,
    /// Spans with `trace_id == 0` (completed without a sink attached).
    pub untraced: usize,
}

impl TraceForest {
    /// Number of distinct trace ids across the trees.
    #[must_use]
    pub fn trace_count(&self) -> usize {
        let mut ids: Vec<u64> = self.trees.iter().map(|t| t.trace_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// `true` when every trace id has exactly one root tree.
    #[must_use]
    pub fn single_rooted(&self) -> bool {
        self.trace_count() == self.trees.len()
    }

    /// The tree rooted at the span named `name` with tag `tag`, if any.
    #[must_use]
    pub fn tree_for_root(&self, name: &str, tag: u64) -> Option<&TraceTree> {
        self.trees
            .iter()
            .find(|t| t.root.event.name == name && t.root.event.tag == tag)
    }
}

/// Reassembles a flat stream of completed spans into causal trees.
///
/// Spans are grouped by `trace_id`; within a group, `parent_id == 0`
/// marks a root and every other span hangs off its parent. Children are
/// ordered by `start_ns`. Spans whose parent is missing from the stream
/// are counted as orphans and dropped rather than misattached.
#[must_use]
pub fn build_forest(events: &[SpanEvent]) -> TraceForest {
    let mut forest = TraceForest::default();

    // Group events by trace, remembering each span's slot.
    let mut by_trace: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
    for event in events {
        if !event.is_traced() {
            forest.untraced += 1;
            continue;
        }
        by_trace.entry(event.trace_id).or_default().push(event);
    }

    for (trace_id, spans) in by_trace {
        // parent span id -> children events
        let mut children: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
        let present: BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
        let mut roots: Vec<&SpanEvent> = Vec::new();
        for span in &spans {
            if span.parent_id == 0 {
                roots.push(span);
            } else if present.contains(&span.parent_id) {
                children.entry(span.parent_id).or_default().push(span);
            } else {
                forest.orphans += 1;
            }
        }
        for root in roots {
            forest.trees.push(TraceTree {
                trace_id,
                root: assemble(root, &children),
            });
        }
    }

    forest
        .trees
        .sort_by_key(|t| (t.root.event.start_ns, t.root.event.span_id));
    forest
}

/// Builds the subtree under `event` from the parent→children index.
fn assemble(event: &SpanEvent, children: &BTreeMap<u64, Vec<&SpanEvent>>) -> SpanNode {
    let mut kids: Vec<SpanNode> = children
        .get(&event.span_id)
        .map(|list| list.iter().map(|c| assemble(c, children)).collect())
        .unwrap_or_default();
    kids.sort_by_key(|n| (n.event.start_ns, n.event.span_id));
    SpanNode {
        event: event.clone(),
        children: kids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ev(trace: u64, span: u64, parent: u64, start: u64) -> SpanEvent {
        SpanEvent {
            name: "t",
            tag: span,
            trace_id: trace,
            span_id: span,
            parent_id: parent,
            start_ns: start,
            elapsed: Duration::from_nanos(5),
        }
    }

    #[test]
    fn forest_reassembles_nested_spans() {
        // root(1) -> a(2) -> b(3); root -> c(4). Completion order is
        // innermost-first, as RAII drop order produces.
        let events = vec![
            ev(1, 3, 2, 30),
            ev(1, 2, 1, 20),
            ev(1, 4, 1, 40),
            ev(1, 1, 0, 10),
        ];
        let forest = build_forest(&events);
        assert_eq!(forest.trees.len(), 1);
        assert!(forest.single_rooted());
        assert_eq!(forest.orphans, 0);
        let root = &forest.trees[0].root;
        assert_eq!(root.event.span_id, 1);
        assert_eq!(root.size(), 4);
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].event.span_id, 2);
        assert_eq!(root.children[0].children[0].event.span_id, 3);
        assert_eq!(root.children[1].event.span_id, 4);
    }

    #[test]
    fn separate_traces_become_separate_trees() {
        let events = vec![ev(1, 1, 0, 10), ev(2, 5, 0, 50), ev(2, 6, 5, 60)];
        let forest = build_forest(&events);
        assert_eq!(forest.trees.len(), 2);
        assert_eq!(forest.trace_count(), 2);
        assert!(forest.single_rooted());
        // Trees are ordered by root start time.
        assert_eq!(forest.trees[0].trace_id, 1);
        assert_eq!(forest.trees[1].trace_id, 2);
        assert_eq!(forest.trees[1].root.size(), 2);
    }

    #[test]
    fn missing_parents_count_as_orphans() {
        let events = vec![ev(1, 1, 0, 10), ev(1, 9, 8, 90)];
        let forest = build_forest(&events);
        assert_eq!(forest.orphans, 1);
        assert_eq!(forest.trees[0].root.size(), 1);
    }

    #[test]
    fn untraced_events_are_counted_not_treed() {
        let mut plain = ev(0, 0, 0, 0);
        plain.trace_id = 0;
        let forest = build_forest(&[plain]);
        assert_eq!(forest.untraced, 1);
        assert!(forest.trees.is_empty());
    }

    #[test]
    fn double_root_is_detectable() {
        let events = vec![ev(1, 1, 0, 10), ev(1, 2, 0, 20)];
        let forest = build_forest(&events);
        assert_eq!(forest.trees.len(), 2);
        assert_eq!(forest.trace_count(), 1);
        assert!(!forest.single_rooted());
    }

    #[test]
    fn walk_visits_every_span_once() {
        let events = vec![ev(1, 1, 0, 10), ev(1, 2, 1, 20), ev(1, 3, 2, 30)];
        let forest = build_forest(&events);
        let mut seen = Vec::new();
        forest.trees[0]
            .root
            .walk(&mut |n| seen.push(n.event.span_id));
        assert_eq!(seen, vec![1, 2, 3]);
    }
}

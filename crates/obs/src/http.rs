//! Minimal HTTP/1.1 plumbing for the observability server.
//!
//! Just enough of the protocol for a metrics endpoint: parse the request
//! line and headers of a `GET`, write a `Connection: close` response.
//! No keep-alive, no chunked encoding, no external dependencies.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed request line: method, path, and decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method (`GET`, `HEAD`, ...).
    pub method: String,
    /// Path without the query string (e.g. `/metrics`).
    pub path: String,
    /// Query parameters (`?waves=20` → `waves: 20`). Values are not
    /// percent-decoded — the server's parameters are plain integers.
    pub query: BTreeMap<String, String>,
}

/// Reads and parses one request from `stream` (headers are consumed and
/// discarded; bodies are not supported).
///
/// # Errors
///
/// Returns an error if the stream closes early, exceeds the header
/// budget, or the request line is malformed.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    };
    let request = parse_target(method, target);

    // Drain headers up to a fixed budget; we never use them.
    let mut budget = 64;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim_end().is_empty() {
            break;
        }
        budget -= 1;
        if budget == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
    }
    Ok(request)
}

/// Splits `target` into path and query parameters.
fn parse_target(method: &str, target: &str) -> Request {
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_str.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => query.insert(k.to_owned(), v.to_owned()),
            None => query.insert(pair.to_owned(), String::new()),
        };
    }
    Request {
        method: method.to_owned(),
        path: path.to_owned(),
        query,
    }
}

/// Writes a complete `Connection: close` response.
///
/// # Errors
///
/// Propagates write failures (e.g. the client hung up).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Blocking one-shot HTTP GET against `addr` (e.g. `"127.0.0.1:9464"`).
/// Returns the status code and body. Used by the scrape tooling and the
/// end-to-end tests; `timeout` bounds both connect-read and write.
///
/// # Errors
///
/// Returns connection/read errors, or `InvalidData` if the response is
/// not parseable HTTP.
pub fn get(addr: &str, path: &str, timeout: Duration) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "response without header break")
    })?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    Ok((status, body.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_parsing_extracts_path_and_query() {
        let r = parse_target("GET", "/trace?waves=20&flat");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/trace");
        assert_eq!(r.query.get("waves").map(String::as_str), Some("20"));
        assert_eq!(r.query.get("flat").map(String::as_str), Some(""));
        let plain = parse_target("GET", "/metrics");
        assert_eq!(plain.path, "/metrics");
        assert!(plain.query.is_empty());
    }
}

//! Shared blocking TCP listener / worker-pool plumbing.
//!
//! Both network-facing planes of the stack — the observability HTTP
//! server in this crate and the SFNP engine host in `smartflux-net` —
//! need the same skeleton: bind a [`TcpListener`], clone it into a small
//! fixed pool of worker threads that each `accept` and hand the stream
//! to a connection handler, and shut down gracefully by flipping a stop
//! flag and poking every worker with a loopback connection so none stays
//! parked in `accept`. This module is that skeleton, extracted so the
//! shutdown-flag memory-ordering discipline (release store, acquire
//! loads) lives in exactly one place.
//!
//! Handlers receive the accepted [`TcpStream`] plus a [`StopFlag`] they
//! can poll; short-lived handlers (one HTTP request) may ignore the
//! flag, long-lived ones (a framed-protocol connection) should check it
//! between read timeouts so [`ListenerPool::shutdown`] completes in
//! bounded time.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A cloneable view of the pool's shutdown flag, handed to connection
/// handlers so long-lived connections can notice shutdown between reads.
#[derive(Debug, Clone)]
pub struct StopFlag {
    // tidy:atomic(stop: acq-rel): shutdown flag — release store publishes the decision, acquire loads in workers observe it; nothing here needs a total order
    stop: Arc<AtomicBool>,
}

impl StopFlag {
    fn new() -> Self {
        Self {
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Whether shutdown was requested.
    #[must_use]
    pub fn is_set(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    fn set(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

/// A bound listener plus its accept/serve worker threads.
///
/// Dropping the pool without calling [`shutdown`](Self::shutdown)
/// detaches the workers: they keep serving until process exit.
#[derive(Debug)]
pub struct ListenerPool {
    addr: SocketAddr,
    stop: StopFlag,
    workers: Vec<JoinHandle<()>>,
}

impl ListenerPool {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts `workers` accept threads, each serving accepted
    /// connections through `handler` one at a time.
    ///
    /// # Errors
    ///
    /// Returns binding errors (address in use, permission denied, ...).
    pub fn start<H>(addr: &str, workers: usize, handler: H) -> io::Result<Self>
    where
        H: Fn(TcpStream, &StopFlag) + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = StopFlag::new();
        let handler = Arc::new(handler);
        let workers = (0..workers.max(1))
            .map(|_| {
                let listener = listener.try_clone()?;
                let handler = Arc::clone(&handler);
                let stop = stop.clone();
                Ok(std::thread::spawn(move || {
                    accept_loop(&listener, handler.as_ref(), &stop);
                }))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Self {
            addr,
            stop,
            workers,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks every worker, and joins them.
    ///
    /// Workers already inside a connection handler finish that
    /// connection first (long-lived handlers are expected to poll the
    /// [`StopFlag`] so this is bounded).
    pub fn shutdown(self) {
        self.stop.set();
        // One dummy connection per worker pops each out of accept().
        for _ in &self.workers {
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

fn accept_loop<H>(listener: &TcpListener, handler: &H, stop: &StopFlag)
where
    H: Fn(TcpStream, &StopFlag),
{
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if stop.is_set() {
                return;
            }
            continue;
        };
        if stop.is_set() {
            return;
        }
        handler(stream, stop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::time::Duration;

    #[test]
    fn serves_connections_and_joins_on_shutdown() {
        let pool = ListenerPool::start("127.0.0.1:0", 2, |mut stream, _stop| {
            let mut byte = [0u8; 1];
            if stream.read_exact(&mut byte).is_ok() {
                let _ = stream.write_all(&[byte[0] + 1]);
            }
        })
        .unwrap();
        let addr = pool.addr();

        for v in [1u8, 41] {
            let mut c = TcpStream::connect(addr).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            c.write_all(&[v]).unwrap();
            let mut reply = [0u8; 1];
            c.read_exact(&mut reply).unwrap();
            assert_eq!(reply[0], v + 1);
        }

        pool.shutdown();
    }

    #[test]
    fn handlers_observe_the_stop_flag() {
        let pool = ListenerPool::start("127.0.0.1:0", 1, |mut stream, stop| {
            // A long-lived handler: poll until shutdown, then report it.
            while !stop.is_set() {
                std::thread::sleep(Duration::from_millis(5));
            }
            let _ = stream.write_all(b"bye");
        })
        .unwrap();
        let addr = pool.addr();
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Give the worker a moment to accept before shutdown races it.
        std::thread::sleep(Duration::from_millis(50));
        pool.shutdown();
        let mut reply = [0u8; 3];
        c.read_exact(&mut reply).unwrap();
        assert_eq!(&reply, b"bye");
    }
}

//! The embedded observability HTTP server.
//!
//! A hand-rolled HTTP/1.1 server on the shared [`ListenerPool`]: a small
//! fixed pool of worker threads each `accept`s on its own clone of the
//! listener and serves one request per connection. Graceful shutdown is
//! the pool's loopback-wake pattern: flip the flag, poke each worker
//! with a local connection so no thread stays parked in `accept`.
//!
//! Endpoints:
//!
//! | Path        | Content                                                   |
//! |-------------|-----------------------------------------------------------|
//! | `/metrics`  | OpenMetrics exposition of the telemetry snapshot          |
//! | `/healthz`  | JSON: engine phase, last wave + age, WAL lag              |
//! | `/waves`    | JSON array: ring-buffered tail of wave-decision records   |
//! | `/trace`    | Chrome trace JSON of the span ring (`?waves=N` to filter) |

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use smartflux_telemetry::{names, SpanEvent, Telemetry};

use crate::http::{read_request, write_response, Request};
use crate::listener::ListenerPool;
use crate::openmetrics;
use crate::perfetto;
use crate::ring::{RingJournal, RingTraceSink};

/// How long a worker waits on a client socket before giving up on it.
const CLIENT_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// The telemetry surfaces the server reads from.
///
/// Only `telemetry` is mandatory; without the rings, `/waves` serves an
/// empty array and `/trace` an empty trace.
#[derive(Debug, Clone, Default)]
pub struct ObsSources {
    /// Metrics snapshot + health registers.
    pub telemetry: Telemetry,
    /// Span ring backing `/trace` (attach the same ring as the
    /// telemetry trace sink).
    pub trace: Option<Arc<RingTraceSink>>,
    /// Wave-decision ring backing `/waves` (attach the same ring as a
    /// journal sink).
    pub waves: Option<Arc<RingJournal>>,
}

/// A running observability server; dropping it without calling
/// [`shutdown`](Self::shutdown) detaches the workers (they keep serving
/// until process exit).
#[derive(Debug)]
pub struct ObsServer {
    pool: ListenerPool,
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`, or port 0 for an ephemeral
    /// port) and starts `workers` serving threads.
    ///
    /// # Errors
    ///
    /// Returns binding errors (address in use, permission denied, ...).
    pub fn start(addr: &str, sources: ObsSources, workers: usize) -> io::Result<Self> {
        let pool = ListenerPool::start(addr, workers, move |mut stream, _stop| {
            serve_connection(&mut stream, &sources);
        })?;
        Ok(Self { pool })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.pool.addr()
    }

    /// Stops accepting, unblocks every worker, and joins them.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

/// Serves one HTTP request on a freshly accepted connection.
fn serve_connection(stream: &mut TcpStream, sources: &ObsSources) {
    let _ = stream.set_read_timeout(Some(CLIENT_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(CLIENT_IO_TIMEOUT));
    let Ok(request) = read_request(stream) else {
        let _ = write_response(stream, 400, "Bad Request", "text/plain", "bad request\n");
        return;
    };
    let _ = respond(stream, &request, sources);
}

fn respond(stream: &mut TcpStream, request: &Request, sources: &ObsSources) -> io::Result<()> {
    if request.method != "GET" {
        return write_response(
            stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
    }
    match request.path.as_str() {
        "/metrics" => {
            let body = openmetrics::render(&sources.telemetry.snapshot());
            write_response(stream, 200, "OK", openmetrics::CONTENT_TYPE, &body)
        }
        "/healthz" => write_response(
            stream,
            200,
            "OK",
            "application/json",
            &health_json(&sources.telemetry),
        ),
        "/waves" => {
            let limit = query_u64(request, "n").map(|n| n as usize);
            write_response(
                stream,
                200,
                "OK",
                "application/json",
                &waves_json(sources, limit),
            )
        }
        "/trace" => {
            let events = trace_events(sources, query_u64(request, "waves"));
            write_response(
                stream,
                200,
                "OK",
                "application/json",
                &perfetto::render(&events),
            )
        }
        _ => write_response(stream, 404, "Not Found", "text/plain", "not found\n"),
    }
}

fn query_u64(request: &Request, key: &str) -> Option<u64> {
    request.query.get(key).and_then(|v| v.parse().ok())
}

/// Renders `/healthz`: engine phase, last wave and its age, WAL lag.
fn health_json(telemetry: &Telemetry) -> String {
    let health = telemetry.health().snapshot();
    let age = health
        .last_wave_age
        .map_or("null".to_owned(), |age| age.as_millis().to_string());
    format!(
        "{{\"phase\":\"{}\",\"last_wave\":{},\"last_wave_age_ms\":{},\"wal_lag_bytes\":{}}}",
        health.phase, health.last_wave, age, health.wal_lag_bytes
    )
}

/// Renders `/waves`: the journal ring tail as a JSON array, newest last.
fn waves_json(sources: &ObsSources, limit: Option<usize>) -> String {
    let records = sources
        .waves
        .as_ref()
        .map(|ring| ring.records())
        .unwrap_or_default();
    let skip = limit.map_or(0, |l| records.len().saturating_sub(l));
    let mut out = String::from("[");
    for (i, record) in records.iter().skip(skip).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&record.to_json());
    }
    out.push(']');
    out
}

/// Collects the span ring, optionally narrowed to the newest `waves`
/// trace trees (by highest wave-root tag).
fn trace_events(sources: &ObsSources, waves: Option<u64>) -> Vec<SpanEvent> {
    let mut events = sources
        .trace
        .as_ref()
        .map(|ring| ring.events())
        .unwrap_or_default();
    let Some(waves) = waves else {
        return events;
    };
    // Wave roots carry the wave number as their tag; keep the trace ids
    // of the N newest waves.
    let mut roots: Vec<(u64, u64)> = events
        .iter()
        .filter(|e| e.is_root() && e.name == names::WAVE_LATENCY)
        .map(|e| (e.tag, e.trace_id))
        .collect();
    roots.sort_unstable();
    let keep: Vec<u64> = roots
        .iter()
        .rev()
        .take(waves as usize)
        .map(|&(_, trace)| trace)
        .collect();
    events.retain(|e| keep.contains(&e.trace_id));
    events
}

/// Pre-registers the conventional SmartFlux instruments so a freshly
/// started deployment's `/metrics` already lists every family at zero —
/// dashboards and scrapers see a stable schema from the first scrape.
pub fn preregister(telemetry: &Telemetry) {
    if !telemetry.is_enabled() {
        return;
    }
    for name in [
        names::STEPS_EXECUTED,
        names::STEPS_SKIPPED,
        names::STEPS_DEFERRED,
        names::STEP_RETRIES,
        names::STEPS_FAILED,
        names::WAVES_ABORTED,
        names::SDF_FALLBACKS,
        names::STORE_READS,
        names::STORE_WRITES,
        names::WAL_RECORDS,
        names::WAL_BYTES,
        names::CHECKPOINTS,
        names::RECOVERIES,
        names::JOURNAL_ERRORS,
        names::NET_CONNECTIONS,
        names::NET_FRAMES_IN,
        names::NET_FRAMES_OUT,
        names::NET_FRAME_ERRORS,
        names::NET_BUSY_REJECTIONS,
    ] {
        let _ = telemetry.counter(name);
    }
    for name in [
        names::STORE_SHARDS,
        names::STORE_SHARD_READ_CONTENTION,
        names::STORE_SHARD_WRITE_CONTENTION,
        names::STORE_QUIESCES,
        names::ML_BATCH_SIZE,
        names::NET_ACTIVE_CONNECTIONS,
        names::NET_SESSIONS_OPEN,
        names::NET_QUEUE_DEPTH,
    ] {
        let _ = telemetry.gauge(name);
    }
    for name in [
        names::WAVE_LATENCY,
        names::STEP_LATENCY,
        names::STEP_TOTAL_LATENCY,
        names::STEP_ATTEMPT_LATENCY,
        names::IMPACT_LATENCY,
        names::PREDICT_LATENCY,
        names::TRAIN_LATENCY,
        names::ML_PREDICT_LATENCY,
        names::ML_FIT_LATENCY,
        names::STORE_READ_LATENCY,
        names::STORE_WRITE_LATENCY,
        names::FSYNC_LATENCY,
        names::WAL_COMMIT_LATENCY,
        names::CHECKPOINT_WRITE_LATENCY,
        names::NET_SUBMIT_LATENCY,
    ] {
        let _ = telemetry.histogram(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::get;
    use smartflux_telemetry::{JournalSink, TraceSink, WaveDecisionRecord};
    use std::time::Duration;

    fn sources() -> ObsSources {
        let telemetry = Telemetry::enabled();
        preregister(&telemetry);
        let trace = Arc::new(RingTraceSink::with_capacity(1024));
        let waves = Arc::new(RingJournal::with_capacity(64));
        telemetry.set_trace_sink(Some(Arc::clone(&trace) as Arc<dyn TraceSink>));
        ObsSources {
            telemetry,
            trace: Some(trace),
            waves: Some(waves),
        }
    }

    #[test]
    fn serves_metrics_health_waves_and_trace() {
        let s = sources();
        s.telemetry.counter(names::STEP_RETRIES).add(2);
        s.telemetry.health().set_phase("application");
        s.telemetry.health().note_wave(17);
        s.telemetry.health().set_wal_lag_bytes(512);
        {
            let _span = s.telemetry.span(names::WAVE_LATENCY, 1);
        }
        s.waves
            .as_ref()
            .unwrap()
            .record(&WaveDecisionRecord {
                wave: 17,
                phase: "application",
                step: "agg".into(),
                step_index: 0,
                impacts: vec![0.5],
                predicted: vec![false],
                executed: false,
                deferred: 0,
                confidence: 0.9,
                max_epsilon: 0.1,
                measured_epsilon: None,
            })
            .unwrap();

        let server = ObsServer::start("127.0.0.1:0", s, 2).unwrap();
        let addr = server.addr().to_string();
        let timeout = Duration::from_secs(5);

        let (status, metrics) = get(&addr, "/metrics", timeout).unwrap();
        assert_eq!(status, 200);
        let parsed = crate::openmetrics::parse(&metrics).unwrap();
        assert_eq!(parsed.counter_total("wms.step_retries"), Some(2.0));
        assert_eq!(parsed.counter_total("durability.wal_records"), Some(0.0));

        let (status, health) = get(&addr, "/healthz", timeout).unwrap();
        assert_eq!(status, 200);
        assert!(health.contains("\"phase\":\"application\""));
        assert!(health.contains("\"last_wave\":17"));
        assert!(health.contains("\"wal_lag_bytes\":512"));

        let (status, waves) = get(&addr, "/waves", timeout).unwrap();
        assert_eq!(status, 200);
        assert!(waves.starts_with('[') && waves.ends_with(']'));
        assert!(waves.contains("\"wave\":17"));

        let (status, trace) = get(&addr, "/trace?waves=5", timeout).unwrap();
        assert_eq!(status, 200);
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"name\":\"wms.wave\""));

        let (status, _) = get(&addr, "/nope", timeout).unwrap();
        assert_eq!(status, 404);

        server.shutdown();
    }

    #[test]
    fn shutdown_joins_all_workers() {
        let server = ObsServer::start("127.0.0.1:0", sources(), 3).unwrap();
        let addr = server.addr().to_string();
        server.shutdown();
        // The port is released: a fresh request must fail to connect or
        // read nothing; either way no worker is still serving.
        assert!(get(&addr, "/metrics", Duration::from_millis(200)).is_err());
    }

    #[test]
    fn waves_endpoint_honours_the_limit() {
        let s = sources();
        for wave in 1..=5u64 {
            s.waves
                .as_ref()
                .unwrap()
                .record(&WaveDecisionRecord {
                    wave,
                    phase: "training",
                    step: "x".into(),
                    step_index: 0,
                    impacts: vec![],
                    predicted: vec![],
                    executed: true,
                    deferred: 0,
                    confidence: 1.0,
                    max_epsilon: 0.1,
                    measured_epsilon: Some(0.0),
                })
                .unwrap();
        }
        let server = ObsServer::start("127.0.0.1:0", s, 1).unwrap();
        let addr = server.addr().to_string();
        let (_, body) = get(&addr, "/waves?n=2", Duration::from_secs(5)).unwrap();
        assert!(!body.contains("\"wave\":3"));
        assert!(body.contains("\"wave\":4") && body.contains("\"wave\":5"));
        server.shutdown();
    }
}

//! # smartflux-obs — the live observability plane
//!
//! SmartFlux's whole premise is *observed* quality: the engine skips work
//! only because it continuously tracks impact ι, error ε, and classifier
//! confidence per wave. This crate makes that state continuously
//! servable instead of post-hoc:
//!
//! - **[`ObsServer`]** — a dependency-free HTTP/1.1 server exposing
//!   `/metrics` (OpenMetrics text), `/healthz` (engine phase, WAL lag,
//!   last-wave age), `/waves` (recent wave decisions as JSON), and
//!   `/trace` (Chrome trace JSON for Perfetto).
//! - **[`RingTraceSink`] / [`RingJournal`]** — lock-free bounded rings
//!   that retain the newest spans and wave-decision records at fixed
//!   memory cost; the production consumers of
//!   [`Telemetry::set_trace_sink`] and the journal fan-out.
//! - **[`trace`]** — causal span-tree reassembly (`trace_id` /
//!   `span_id` / `parent_id`) and the invariants the scheduler's span
//!   taxonomy guarantees.
//! - **[`openmetrics`] / [`perfetto`]** — the exposition renderers, plus
//!   a hand-rolled OpenMetrics parser for conformance checks.
//! - **[`ListenerPool`]** — the shared blocking TCP accept/worker-pool
//!   skeleton (with the release/acquire shutdown flag and loopback-wake
//!   drain) used by both this crate's HTTP server and the
//!   `smartflux-net` engine host.
//!
//! Layering: this crate depends only on `smartflux-telemetry` (and the
//! vendored `parking_lot`), so any layer that owns a [`Telemetry`]
//! handle can serve it.
//!
//! [`Telemetry`]: smartflux_telemetry::Telemetry
//! [`Telemetry::set_trace_sink`]: smartflux_telemetry::Telemetry::set_trace_sink

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod listener;
pub mod openmetrics;
pub mod perfetto;
mod ring;
mod server;
pub mod trace;

pub use listener::{ListenerPool, StopFlag};
pub use ring::{RingJournal, RingTraceSink};
pub use server::{preregister, ObsServer, ObsSources};

//! Chrome trace-event JSON export (Perfetto-compatible).
//!
//! Renders a span stream as the classic `{"traceEvents": [...]}` JSON
//! that both `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly. Every span becomes a complete (`"ph":"X"`) event;
//! timestamps are microseconds from the process trace epoch, so spans
//! from every thread share one timeline.
//!
//! Track layout: one process, one track (tid) per trace tree, named after
//! its root (`wave 17` for a `wms.wave` root with tag 17). Skip-heavy
//! waves, retry storms, and checkpoint stalls read directly off the
//! timeline as short tracks, repeated `wms.step_attempt` slices, and long
//! `durability.checkpoint_write` slices respectively.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use smartflux_telemetry::SpanEvent;

/// Microseconds (as a 3-decimal string) from nanoseconds.
fn micros(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    format!("{whole}.{frac:03}")
}

/// Renders `events` as Chrome trace-event JSON.
///
/// Untraced events (no trace identity) are skipped: without identities
/// they cannot be placed on a track. Returns a complete JSON object
/// ready to be written to a `.json` file or served over HTTP.
#[must_use]
pub fn render(events: &[SpanEvent]) -> String {
    // Assign one tid per trace, in first-seen order, and remember each
    // trace's root for track naming.
    let mut tids: BTreeMap<u64, u64> = BTreeMap::new();
    let mut track_names: BTreeMap<u64, String> = BTreeMap::new();
    for event in events {
        if !event.is_traced() {
            continue;
        }
        let next = tids.len() as u64 + 1;
        let tid = *tids.entry(event.trace_id).or_insert(next);
        if event.is_root() {
            let label = match event.name {
                "wms.wave" => format!("wave {}", event.tag),
                other => format!("{other} {}", event.tag),
            };
            track_names.insert(tid, label);
        }
    }

    let mut out = String::with_capacity(events.len() * 160 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (tid, label) in &track_names {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{label}\"}}}}"
        );
    }
    for event in events {
        if !event.is_traced() {
            continue;
        }
        let Some(tid) = tids.get(&event.trace_id) else {
            continue;
        };
        if !first {
            out.push(',');
        }
        first = false;
        let dur_ns = u64::try_from(event.elapsed.as_nanos()).unwrap_or(u64::MAX);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"smartflux\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{tid},\"args\":{{\"tag\":{},\"trace_id\":{},\"span_id\":{},\
             \"parent_id\":{}}}}}",
            event.name,
            micros(event.start_ns),
            micros(dur_ns),
            event.tag,
            event.trace_id,
            event.span_id,
            event.parent_id,
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ev(trace: u64, span: u64, parent: u64, start: u64, name: &'static str) -> SpanEvent {
        SpanEvent {
            name,
            tag: trace * 10,
            trace_id: trace,
            span_id: span,
            parent_id: parent,
            start_ns: start,
            elapsed: Duration::from_micros(7),
        }
    }

    #[test]
    fn export_produces_complete_events_per_span() {
        let events = vec![
            ev(1, 1, 0, 1_000, "wms.wave"),
            ev(1, 2, 1, 2_500, "wms.step_total"),
        ];
        let json = render(&events);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"name\":\"wms.wave\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"ts\":2.500"));
        assert!(json.contains("\"dur\":7.000"));
        // The wave root names its track.
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("wave 10"));
    }

    #[test]
    fn traces_map_to_distinct_tracks() {
        let events = vec![ev(1, 1, 0, 0, "wms.wave"), ev(2, 3, 0, 9, "wms.wave")];
        let json = render(&events);
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn untraced_events_are_skipped() {
        let mut plain = ev(0, 0, 0, 0, "x");
        plain.trace_id = 0;
        let json = render(&[plain]);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 0);
    }
}

//! Fig. 11: comparison of confidence levels for different triggering
//! approaches with an error bound of 5% — SmartFlux vs random skipping and
//! seq2/seq3/seq5 periodic execution.

use smartflux::eval::EvalPolicy;

use crate::{heading, pct, write_csv, Workload};

/// Final confidence of one policy on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyResult {
    /// Policy label (smartflux / random / seq2 / seq3 / seq5).
    pub policy: String,
    /// Final confidence after all waves.
    pub confidence: f64,
    /// Normalised executions (resource usage).
    pub normalized_executions: f64,
    /// The full confidence series.
    pub series: Vec<f64>,
}

/// Runs all five triggering approaches at the 5% bound.
#[must_use]
pub fn compare(workload: Workload) -> Vec<PolicyResult> {
    let bound = 0.05;
    let waves = workload.application_waves();
    let policies: Vec<(String, EvalPolicy)> = vec![
        (
            "smartflux".into(),
            EvalPolicy::SmartFlux(Box::new(workload.engine_config(bound))),
        ),
        ("random".into(), EvalPolicy::Random { seed: 23 }),
        ("seq2".into(), EvalPolicy::EveryN { n: 2 }),
        ("seq3".into(), EvalPolicy::EveryN { n: 3 }),
        ("seq5".into(), EvalPolicy::EveryN { n: 5 }),
    ];
    policies
        .into_iter()
        .map(|(name, policy)| {
            let report = workload.evaluate_policy(bound, policy, waves);
            PolicyResult {
                policy: name,
                confidence: report.confidence.confidence(),
                normalized_executions: report.normalized_executions(),
                series: report.confidence.series().to_vec(),
            }
        })
        .collect()
}

/// Runs the experiment for both workloads.
pub fn run() {
    heading("Fig. 11 — confidence of SmartFlux vs naive triggering (5% bound)");
    println!("paper reference: none of the naive approaches beats SmartFlux (>95%)");
    for wl in [Workload::Lrb, Workload::Aqhi] {
        let results = compare(wl);
        println!("\n{}:", wl.id());
        println!(
            "  {:<10} {:>11} {:>12}",
            "policy", "confidence", "executions"
        );
        let mut csv = Vec::new();
        for r in &results {
            println!(
                "  {:<10} {:>11} {:>12}",
                r.policy,
                pct(r.confidence),
                pct(r.normalized_executions)
            );
            for (i, c) in r.series.iter().enumerate() {
                csv.push(format!("{},{},{:.6}", r.policy, i + 1, c));
            }
        }
        write_csv(
            &format!("fig11_baselines_{}.csv", wl.id()),
            "policy,wave,confidence",
            &csv,
        );
        let smartflux = &results[0];
        let best_baseline = results[1..]
            .iter()
            .map(|r| r.confidence)
            .fold(0.0, f64::max);
        println!(
            "  smartflux {} vs best baseline {}",
            pct(smartflux.confidence),
            pct(best_baseline)
        );
    }
}

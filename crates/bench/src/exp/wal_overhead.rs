//! WAL-overhead micro-bench: per-wave cost of wave-boundary group commit.
//!
//! Runs the LRB workload with durability disabled and then under each sync
//! policy, reporting the per-wave wall clock, the relative overhead against
//! the undurable baseline, and the WAL traffic (records and bytes per
//! wave). The durability acceptance target is `sync=never` overhead below
//! 10% on LRB: with group commit at wave boundaries the log sees one frame
//! per wave regardless of how many store mutations the wave performed.

use std::path::PathBuf;
use std::time::Instant;

use smartflux::eval::WorkloadFactory;
use smartflux::{DurabilityOptions, EngineConfig, SmartFluxSession, SyncPolicy};
use smartflux_datastore::DataStore;
use smartflux_workloads::lrb::LrbFactory;

use crate::{heading, pct, write_csv};

/// One measured durability mode.
#[derive(Debug, Clone, PartialEq)]
pub struct WalOverheadRow {
    /// Mode label (`none`, `never`, `interval8`, `always`).
    pub mode: String,
    /// Mean wall clock per wave (µs).
    pub us_per_wave: f64,
    /// Relative overhead against the `none` baseline.
    pub overhead: f64,
    /// WAL records appended per wave (1.0 under group commit).
    pub records_per_wave: f64,
    /// WAL bytes appended per wave.
    pub bytes_per_wave: f64,
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "smartflux-wal-overhead-{tag}-{}",
        std::process::id()
    ))
}

fn run_mode(tag: &str, sync: Option<SyncPolicy>, waves: u64) -> (f64, f64, f64) {
    let dir = scratch_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let store = DataStore::new();
    let workflow = LrbFactory::with_bound(0.1).build(&store);
    let mut config = EngineConfig::new()
        .with_training_waves(30)
        .with_quality_gates(0.3, 0.3)
        .with_seed(11)
        .with_telemetry(true);
    if let Some(sync) = sync {
        config = config.with_durability(
            DurabilityOptions::new(&dir)
                .with_sync(sync)
                .with_checkpoint_interval(u64::MAX), // isolate WAL cost
        );
    }
    // tidy:allow(panic): bench harness aborts loudly on setup failure
    let mut session = SmartFluxSession::new(workflow, store, config).expect("session builds");
    let start = Instant::now();
    for _ in 0..waves {
        // tidy:allow(panic): bench harness aborts loudly on a failed wave
        session.run_wave().expect("wave runs");
    }
    let us_per_wave = start.elapsed().as_micros() as f64 / waves as f64;
    let snapshot = session.telemetry().snapshot();
    let records = snapshot.counter(smartflux::telemetry_names::WAL_RECORDS) as f64;
    let bytes = snapshot.counter(smartflux::telemetry_names::WAL_BYTES) as f64;
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
    (us_per_wave, records / waves as f64, bytes / waves as f64)
}

/// Measures every mode over `waves` waves and returns one row per mode.
///
/// Each mode runs `reps` times and the fastest repetition is kept: the
/// per-wave WAL cost is deterministic work, so the minimum is the
/// measurement and everything above it is scheduler/allocator noise
/// (which on a busy host can exceed the quantity being measured).
#[must_use]
pub fn measure(waves: u64, reps: u32) -> Vec<WalOverheadRow> {
    let modes: [(&str, Option<SyncPolicy>); 4] = [
        ("none", None),
        ("never", Some(SyncPolicy::Never)),
        ("interval8", Some(SyncPolicy::Interval(8))),
        ("always", Some(SyncPolicy::Always)),
    ];
    let mut rows = Vec::new();
    let mut baseline = 0.0;
    for (tag, sync) in modes {
        let mut best = (f64::INFINITY, 0.0, 0.0);
        for _ in 0..reps.max(1) {
            let sample = run_mode(tag, sync, waves);
            if sample.0 < best.0 {
                best = sample;
            }
        }
        let (us_per_wave, records_per_wave, bytes_per_wave) = best;
        if tag == "none" {
            baseline = us_per_wave;
        }
        rows.push(WalOverheadRow {
            mode: tag.to_owned(),
            us_per_wave,
            overhead: (us_per_wave - baseline) / baseline,
            records_per_wave,
            bytes_per_wave,
        });
    }
    rows
}

/// Runs the micro-bench and prints + persists the table.
pub fn run() {
    heading("Durability — WAL overhead on LRB (group commit at wave boundaries)");
    println!("acceptance: sync=never overhead < 10% of the undurable baseline\n");
    let rows = measure(120, 5);
    let mut csv = Vec::new();
    for r in &rows {
        println!(
            "  sync={:<10} {:>8.0} µs/wave  {:>7} overhead  {:>5.1} records/wave  {:>8.0} bytes/wave",
            r.mode,
            r.us_per_wave,
            pct(r.overhead.max(0.0)),
            r.records_per_wave,
            r.bytes_per_wave
        );
        csv.push(format!(
            "{},{:.1},{:.4},{:.2},{:.0}",
            r.mode, r.us_per_wave, r.overhead, r.records_per_wave, r.bytes_per_wave
        ));
    }
    write_csv(
        "wal_overhead.csv",
        "sync_mode,us_per_wave,relative_overhead,wal_records_per_wave,wal_bytes_per_wave",
        &csv,
    );
}

//! §3.2 table: ROC area of the six classification algorithms the paper
//! compared — Bayes network (Gaussian naive Bayes here), J48 tree (CART),
//! Logistic, Neural network (MLP), Random Forest and SVM.
//!
//! The paper reports Random Forest (0.86) and SVM (0.82) as the best
//! average ROC areas over its experiments, and picks RF for its lighter
//! parameterisation. We replicate the protocol: per workload, per QoD step,
//! 10-fold cross-validated probability scores pooled into a ROC AUC, then
//! averaged.

use smartflux::eval::EvalPolicy;
use smartflux::KnowledgeBase;
use smartflux_ml::crossval::stratified_folds;
use smartflux_ml::metrics::roc_auc;
use smartflux_ml::{
    Classifier, Dataset, DecisionTree, GaussianNaiveBayes, KernelSvm, LinearSvm,
    LogisticRegression, NeuralNetwork, RandomForest,
};

use crate::{heading, write_csv, Workload};

/// The algorithms compared, in the paper's order, plus the linear-SVM
/// ablation (the paper's WEKA SVM was kernelised).
pub const ALGORITHMS: [&str; 7] = [
    "BayesNet",
    "J48",
    "Logistic",
    "NeuralNetwork",
    "RandomForest",
    "SVM",
    "SVM-linear",
];

fn build(algorithm: &str, seed: u64) -> Box<dyn Classifier> {
    match algorithm {
        "BayesNet" => Box::new(GaussianNaiveBayes::new()),
        "J48" => Box::new(DecisionTree::new()),
        "Logistic" => Box::new(LogisticRegression::new()),
        "NeuralNetwork" => Box::new(NeuralNetwork::new(8).with_epochs(150).with_seed(seed)),
        "RandomForest" => Box::new(RandomForest::new(60).with_max_depth(12).with_seed(seed)),
        "SVM" => Box::new(KernelSvm::rbf().with_seed(seed)),
        "SVM-linear" => Box::new(LinearSvm::new().with_seed(seed)),
        other => unreachable!("unknown algorithm {other}"),
    }
}

/// Cross-validated ROC AUC of one algorithm on one single-label dataset.
#[must_use]
pub fn cv_auc(algorithm: &str, data: &Dataset, seed: u64) -> f64 {
    let folds = stratified_folds(data.y(), 10.min(data.len() / 2).max(2), seed);
    let mut actual = Vec::with_capacity(data.len());
    let mut scores = Vec::with_capacity(data.len());
    for held_out in &folds {
        let train_idx: Vec<usize> = (0..data.len()).filter(|i| !held_out.contains(i)).collect();
        if train_idx.is_empty() {
            continue;
        }
        let mut model = build(algorithm, seed);
        model
            .fit(&data.subset(&train_idx))
            .expect("training succeeds");
        for &i in held_out {
            actual.push(data.label(i));
            scores.push(model.predict_proba(data.features(i)));
        }
    }
    roc_auc(&actual, &scores)
}

/// Collects the knowledge base of one workload at the 10% bound.
#[must_use]
pub fn collect_kb(workload: Workload) -> KnowledgeBase {
    let bound = 0.10;
    let report = workload.evaluate_policy(
        bound,
        EvalPolicy::SmartFlux(Box::new(workload.engine_config(bound))),
        1,
    );
    let engine = report.engine.expect("smartflux run provides the engine");
    engine.with(|e| e.knowledge_base().clone())
}

/// Per-label datasets over the full impact vector (the literal `h(X) = Y`
/// formulation of §3.1 that the paper's MEKA setup used — richer than the
/// engine's own-impact deployment features, and the right setting for
/// comparing algorithm families).
#[must_use]
pub fn label_datasets(kb: &KnowledgeBase) -> Vec<(String, Dataset)> {
    (0..kb.step_names().len())
        .filter_map(|j| {
            let x: Vec<Vec<f64>> = kb.rows().iter().map(|r| r.impacts.clone()).collect();
            let y: Vec<bool> = kb.rows().iter().map(|r| r.must_execute[j]).collect();
            let positives = y.iter().filter(|&&b| b).count();
            // Degenerate labels cannot be ranked.
            if positives < 5 || positives > y.len() - 5 {
                return None;
            }
            Dataset::new(x, y)
                .ok()
                .map(|d| (kb.step_names()[j].clone(), d))
        })
        .collect()
}

/// Runs the comparison and returns `(algorithm, mean AUC)` pairs.
#[must_use]
pub fn compare() -> Vec<(String, f64)> {
    let mut datasets = Vec::new();
    for wl in [Workload::Lrb, Workload::Aqhi] {
        let kb = collect_kb(wl);
        datasets.extend(label_datasets(&kb));
    }
    ALGORITHMS
        .iter()
        .map(|&alg| {
            let aucs: Vec<f64> = datasets.iter().map(|(_, d)| cv_auc(alg, d, 17)).collect();
            let mean = aucs.iter().sum::<f64>() / aucs.len() as f64;
            (alg.to_owned(), mean)
        })
        .collect()
}

/// Runs the experiment, printing the ranking.
pub fn run() {
    heading("§3.2 — ROC area of the six classification algorithms");
    println!("paper reference: RandomForest 0.86, SVM 0.82 were the best on average");
    let mut results = compare();
    results.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("AUCs are finite"));
    let mut csv = Vec::new();
    println!("  {:<15} {:>9}", "algorithm", "mean AUC");
    for (alg, auc) in &results {
        println!("  {:<15} {:>9.3}", alg, auc);
        csv.push(format!("{alg},{auc:.4}"));
    }
    write_csv("tab_roc_classifiers.csv", "algorithm,mean_auc", &csv);
}

//! Figs. 9, 10 and 12 share the same adaptive runs and are produced
//! together:
//!
//! - **Fig. 9** — measured vs predicted error per wave for the last
//!   processing step, plus the prediction deviation, at bounds 5/10/20%;
//! - **Fig. 10** — confidence in respecting the error bound over waves;
//! - **Fig. 12** — executions performed with QoD versus the synchronous
//!   model: the cumulative normalised-execution series (a/c) and the total
//!   execution counts predicted/optimal/sync (b/d).

use smartflux::eval::{EvalPolicy, EvalReport};

use crate::{heading, pct, write_csv, Workload, BOUNDS};

/// Execution totals for one (workload, bound): Fig. 12 (b)/(d) bars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionTotals {
    /// Managed-step executions under SmartFlux (the paper's "predicted").
    pub predicted: u64,
    /// Managed-step executions under the oracle ("optimal").
    pub optimal: u64,
    /// Managed-step executions under the synchronous model.
    pub sync: u64,
}

/// The per-bound artefacts of one workload's runs.
#[derive(Debug)]
pub struct BoundRun {
    /// The error bound.
    pub bound: f64,
    /// The SmartFlux evaluation report.
    pub smartflux: EvalReport,
    /// Totals for the Fig. 12 comparison.
    pub totals: ExecutionTotals,
}

/// Runs SmartFlux, oracle and sync for every bound on one workload.
#[must_use]
pub fn run_workload(workload: Workload) -> Vec<BoundRun> {
    let waves = workload.application_waves();
    BOUNDS
        .iter()
        .map(|&bound| {
            let smartflux = workload.evaluate_policy(
                bound,
                EvalPolicy::SmartFlux(Box::new(workload.engine_config(bound))),
                waves,
            );
            let oracle = workload.evaluate_policy(bound, EvalPolicy::Oracle, waves);
            let sync = workload.evaluate_policy(bound, EvalPolicy::Sync, waves);
            let totals = ExecutionTotals {
                predicted: smartflux.total_managed_executions(),
                optimal: oracle.total_managed_executions(),
                sync: sync.total_managed_executions(),
            };
            BoundRun {
                bound,
                smartflux,
                totals,
            }
        })
        .collect()
}

/// Runs the experiment for both workloads and writes every series.
pub fn run() {
    heading("Figs. 9/10/12 — error tracking, confidence, executions");
    for wl in [Workload::Lrb, Workload::Aqhi] {
        let runs = run_workload(wl);

        // Fig. 9: measured vs predicted error + deviation.
        let mut fig9 = Vec::new();
        for r in &runs {
            for w in &r.smartflux.waves {
                fig9.push(format!(
                    "{},{},{:.6},{:.6},{:.6},{}",
                    r.bound,
                    w.wave,
                    w.measured_error,
                    w.predicted_error,
                    w.predicted_error - w.measured_error,
                    u8::from(w.executed_output),
                ));
            }
        }
        write_csv(
            &format!("fig09_errors_{}.csv", wl.id()),
            "bound,wave,measured,predicted,deviation,executed_output",
            &fig9,
        );

        // Fig. 10: confidence series.
        let mut fig10 = Vec::new();
        for r in &runs {
            for (i, c) in r.smartflux.confidence.series().iter().enumerate() {
                fig10.push(format!("{},{},{:.6}", r.bound, i + 1, c));
            }
        }
        write_csv(
            &format!("fig10_confidence_{}.csv", wl.id()),
            "bound,wave,confidence",
            &fig10,
        );

        // Fig. 12 (a/c): cumulative normalised executions.
        let mut fig12 = Vec::new();
        for r in &runs {
            for (i, v) in r
                .smartflux
                .normalized_executions_series()
                .iter()
                .enumerate()
            {
                fig12.push(format!("{},{},{:.6}", r.bound, i + 1, v));
            }
        }
        write_csv(
            &format!("fig12_normalized_{}.csv", wl.id()),
            "bound,wave,normalized_executions",
            &fig12,
        );

        // Fig. 12 (b/d): totals.
        let mut totals = Vec::new();
        println!("\n{} (paper Fig. 12):", wl.id());
        println!(
            "  {:>6} {:>11} {:>9} {:>6} {:>12} {:>11}",
            "bound", "predicted", "optimal", "sync", "normalized", "confidence"
        );
        for r in &runs {
            println!(
                "  {:>6} {:>11} {:>9} {:>6} {:>12} {:>11}",
                pct(r.bound),
                r.totals.predicted,
                r.totals.optimal,
                r.totals.sync,
                pct(r.smartflux.normalized_executions()),
                pct(r.smartflux.confidence.confidence()),
            );
            totals.push(format!(
                "{},{},{},{}",
                r.bound, r.totals.predicted, r.totals.optimal, r.totals.sync
            ));
        }
        write_csv(
            &format!("fig12_totals_{}.csv", wl.id()),
            "bound,predicted_executions,optimal_executions,sync_executions",
            &totals,
        );

        // Fig. 9 summary: violation counts and magnitudes.
        for r in &runs {
            let violations: Vec<f64> = r
                .smartflux
                .waves
                .iter()
                .filter(|w| !w.compliant)
                .map(|w| w.measured_error - r.bound)
                .collect();
            let max_over = violations.iter().copied().fold(0.0, f64::max);
            println!(
                "  bound {:>5}: {} violations over {} waves (max overshoot {:.3})",
                pct(r.bound),
                violations.len(),
                r.smartflux.waves.len(),
                max_over
            );
        }
    }
}

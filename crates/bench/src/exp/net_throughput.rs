//! Network-plane throughput micro-bench: waves/second and submit
//! latency through the SFNP socket.
//!
//! The grid is concurrent clients ∈ {1, 2, 4, 8} × ingest payload
//! ∈ {0, 16, 256} container writes per wave. Each cell spins up a fresh
//! [`NetServer`] on loopback, lets every client drive its own session
//! for a fixed wave count, and reports aggregate waves/second plus
//! client-observed p50/p95/p99 submit latency. Cells run best-of-5 by
//! throughput (the work is deterministic; the fastest repetition is the
//! measurement) and the reported percentiles come from that repetition.
//!
//! Honest caveats, printed with the table: everything — server, engine
//! workers, and all clients — shares this host's cores, so the numbers
//! are a loopback plane-overhead ceiling, not a distributed-deployment
//! measurement; and the workload is a deliberately compute-light
//! two-step ramp so the wire framing, queueing, and session dispatch
//! dominate the measurement instead of wave compute. Treat the results
//! as "what the plane itself costs", not "what a workload sustains".

use std::fs;
use std::net::SocketAddr;
use std::time::Instant;

use smartflux::EngineConfig;
use smartflux_datastore::{ContainerRef, DataStore, Value};
use smartflux_net::{
    Client, ContainerWrite, EngineHost, HostConfig, NetServer, SessionSpec, WorkflowRegistry,
};
use smartflux_telemetry::Telemetry;
use smartflux_wms::{FnStep, GraphBuilder, StepContext, Workflow};

use crate::{heading, results_dir, write_csv};

/// Waves each client submits per repetition.
const WAVES_PER_CLIENT: u64 = 200;

/// Repetitions per grid cell (best by throughput wins).
const REPS: usize = 5;

/// Concurrent-client axis.
const CLIENT_GRID: [usize; 4] = [1, 2, 4, 8];

/// Ingest-payload axis (container writes per wave).
const WRITES_GRID: [usize; 3] = [0, 16, 256];

/// One measured cell of the throughput grid.
#[derive(Debug, Clone, PartialEq)]
pub struct NetThroughputRow {
    /// Concurrent clients (one session each).
    pub clients: usize,
    /// Container writes shipped with every wave.
    pub writes_per_wave: usize,
    /// Aggregate executed waves per second across all clients.
    pub waves_per_sec: f64,
    /// Median client-observed submit latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile submit latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile submit latency, microseconds.
    pub p99_us: f64,
}

/// The compute-light two-step workflow every session runs: a source
/// ramp feeding one bounded aggregation, so a wave costs microseconds
/// and the plane overhead is what gets measured.
fn ramp_workflow(store: &DataStore) -> Workflow {
    let raw = ContainerRef::family("t", "raw");
    let out = ContainerRef::family("t", "out");
    // tidy:allow(panic): bench harness aborts loudly on setup failure
    store.ensure_container(&raw).expect("container");
    // tidy:allow(panic): bench harness aborts loudly on setup failure
    store.ensure_container(&out).expect("container");
    let mut g = GraphBuilder::new("ramp");
    let feed = g.add_step("feed");
    let agg = g.add_step("agg");
    // tidy:allow(panic): bench harness aborts loudly on setup failure
    g.add_edge(feed, agg).expect("edge");
    // tidy:allow(panic): bench harness aborts loudly on setup failure
    let mut wf = Workflow::new(g.build().expect("graph"));
    wf.bind(
        feed,
        FnStep::new(|ctx: &StepContext| {
            let w = ctx.wave() as f64;
            ctx.put("t", "raw", "r", "v", Value::from(100.0 + w))?;
            Ok(())
        }),
    )
    .source()
    .writes(raw.clone());
    wf.bind(
        agg,
        FnStep::new(|ctx: &StepContext| {
            let v = ctx.get_f64("t", "raw", "r", "v", 0.0)?;
            ctx.put("t", "out", "r", "v", Value::from(v))?;
            Ok(())
        }),
    )
    .reads(raw)
    .writes(out)
    .error_bound(0.05);
    wf
}

fn registry() -> WorkflowRegistry {
    let mut registry = WorkflowRegistry::new();
    registry.register(
        "ramp",
        EngineConfig::new()
            .with_training_waves(10)
            .with_quality_gates(0.3, 0.3)
            .with_seed(1),
        ramp_workflow,
    );
    registry
}

fn payload(writes: usize) -> Vec<ContainerWrite> {
    (0..writes)
        .map(|i| ContainerWrite {
            table: "t".to_owned(),
            family: "raw".to_owned(),
            row: format!("r{i}"),
            qualifier: "v".to_owned(),
            value: Value::from(i as f64),
        })
        .collect()
}

/// Nearest-rank percentile over an already-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// One repetition of one grid cell: fresh server, `clients` threads,
/// returns (aggregate waves/sec, client-observed latencies in µs).
fn run_once(clients: usize, writes: usize) -> (f64, Vec<f64>) {
    let host = EngineHost::new(
        registry(),
        HostConfig::new().with_workers(clients.min(8)),
        Telemetry::disabled(),
    );
    // tidy:allow(panic): bench harness aborts loudly on setup failure
    let server = NetServer::start("127.0.0.1:0", host, clients + 1).expect("bind");
    let addr: SocketAddr = server.addr();

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || -> Vec<f64> {
                // tidy:allow(panic): bench harness aborts loudly on a failed op
                let mut client = Client::connect(addr).expect("connect");
                let opened = client
                    .open_session(&SessionSpec {
                        workload: "ramp".to_owned(),
                        ..SessionSpec::default()
                    })
                    // tidy:allow(panic): bench harness aborts loudly on a failed op
                    .expect("open session");
                let batch = payload(writes);
                let mut latencies = Vec::with_capacity(WAVES_PER_CLIENT as usize);
                for _ in 0..WAVES_PER_CLIENT {
                    let sent = Instant::now();
                    client
                        .submit_wave(opened.session, batch.clone())
                        // tidy:allow(panic): bench harness aborts loudly on a failed op
                        .expect("submit wave");
                    latencies.push(sent.elapsed().as_secs_f64() * 1e6);
                }
                // tidy:allow(panic): bench harness aborts loudly on a failed op
                client.close_session(opened.session).expect("close session");
                latencies
            })
        })
        .collect();

    let mut latencies = Vec::new();
    for handle in handles {
        // tidy:allow(panic): bench harness aborts loudly on a failed op
        latencies.extend(handle.join().expect("client thread"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    server.shutdown();
    let total_waves = (clients as u64 * WAVES_PER_CLIENT) as f64;
    (total_waves / elapsed, latencies)
}

/// Measures the full grid, best-of-`REPS` per cell.
pub fn measure() -> Vec<NetThroughputRow> {
    let mut rows = Vec::new();
    for &clients in &CLIENT_GRID {
        for &writes in &WRITES_GRID {
            let mut best: Option<(f64, Vec<f64>)> = None;
            for _ in 0..REPS {
                let (wps, lat) = run_once(clients, writes);
                if best.as_ref().is_none_or(|(b, _)| wps > *b) {
                    best = Some((wps, lat));
                }
            }
            // tidy:allow(panic): bench harness aborts loudly on setup failure
            let (waves_per_sec, mut lat) = best.expect("at least one repetition");
            lat.sort_by(|a, b| a.total_cmp(b));
            rows.push(NetThroughputRow {
                clients,
                writes_per_wave: writes,
                waves_per_sec,
                p50_us: percentile(&lat, 0.50),
                p95_us: percentile(&lat, 0.95),
                p99_us: percentile(&lat, 0.99),
            });
        }
    }
    rows
}

/// Writes the machine-readable bench anchor next to `tidy-ratchet.json`.
fn write_bench_json(rows: &[NetThroughputRow]) {
    let headline = rows
        .iter()
        .find(|r| r.clients == 4 && r.writes_per_wave == 16)
        // tidy:allow(panic): bench harness aborts loudly on setup failure
        .expect("headline cell measured");
    let path = results_dir().join("..").join("BENCH_net.json");
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"bench\": \"net_throughput\",\n  \
         \"config\": {{ \"clients\": 4, \"writes_per_wave\": 16, \"waves_per_client\": {WAVES_PER_CLIENT} }},\n  \
         \"waves_per_sec\": {:.0},\n  \
         \"submit_p50_us\": {:.1},\n  \
         \"submit_p99_us\": {:.1},\n  \
         \"caveat\": \"loopback best-of-{REPS}; clients, server and engine share one host's cores; compute-light ramp workload, so this is plane overhead, not workload throughput\"\n}}\n",
        headline.waves_per_sec, headline.p50_us, headline.p99_us
    );
    // tidy:allow(panic): bench harness aborts loudly on I/O failure
    fs::write(&path, json).expect("cannot write BENCH_net.json");
    let shown = path
        .canonicalize()
        .map_or_else(|_| path.display().to_string(), |p| p.display().to_string());
    println!("  wrote {shown}");
}

/// Runs the micro-bench and prints + persists the tables.
pub fn run() {
    heading("Network plane throughput — SFNP loopback");
    println!("grid: clients x writes/wave, {WAVES_PER_CLIENT} waves per client, best of {REPS}\n");
    let rows = measure();
    let mut csv = Vec::new();
    for r in &rows {
        println!(
            "  clients={:<2} writes={:<4} {:>9.0} waves/s   p50 {:>8.1} us  p95 {:>8.1} us  p99 {:>8.1} us",
            r.clients, r.writes_per_wave, r.waves_per_sec, r.p50_us, r.p95_us, r.p99_us
        );
        csv.push(format!(
            "{},{},{:.1},{:.1},{:.1},{:.1}",
            r.clients, r.writes_per_wave, r.waves_per_sec, r.p50_us, r.p95_us, r.p99_us
        ));
    }
    println!(
        "\n  caveat: loopback, single host — server workers and all clients share\n  \
         these cores, so scaling across the client axis is contended; the ramp\n  \
         workload is compute-light by design, so the table prices the plane\n  \
         (framing, queueing, dispatch), not a real workload's waves."
    );
    write_csv(
        "net_throughput.csv",
        "clients,writes_per_wave,waves_per_sec,p50_us,p95_us,p99_us",
        &csv,
    );
    write_bench_json(&rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn one_cell_measures_cleanly() {
        let (wps, lat) = run_once(2, 4);
        assert!(wps > 0.0);
        assert_eq!(lat.len() as u64, 2 * WAVES_PER_CLIENT);
        assert!(lat.iter().all(|&l| l > 0.0));
    }
}

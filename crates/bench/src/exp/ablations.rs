//! Ablations of the reproduction-critical design choices recorded in
//! DESIGN.md §5: feature mode, accumulation mode, impact combiner, custom
//! impact functions, decision threshold, and training length.
//!
//! Each ablation flips exactly one decision against the calibrated default
//! and reports the savings/confidence pair it costs.

use smartflux::eval::EvalPolicy;
use smartflux::{AccumulationMode, EngineConfig, ImpactCombiner, MetricKind, ModelKind};

use crate::{heading, pct, write_csv, Workload};

/// One ablation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablation {
    /// Which knob was flipped.
    pub variant: String,
    /// Executions relative to the synchronous model.
    pub normalized_executions: f64,
    /// Bound-compliance confidence.
    pub confidence: f64,
}

fn run_with(workload: Workload, config: EngineConfig, label: &str) -> Ablation {
    let bound = 0.05;
    let report = workload.evaluate_policy(
        bound,
        EvalPolicy::SmartFlux(Box::new(config)),
        workload.application_waves(),
    );
    Ablation {
        variant: label.to_owned(),
        normalized_executions: report.normalized_executions(),
        confidence: report.confidence.confidence(),
    }
}

/// Runs every ablation of one workload at the 5% bound.
#[must_use]
pub fn ablate(workload: Workload) -> Vec<Ablation> {
    let baseline = workload.engine_config(0.05);
    let mut out = vec![run_with(workload, baseline.clone(), "calibrated-default")];

    // 1. Accumulate mode instead of Cancel (no error cancellation).
    {
        let mut config = baseline.clone();
        let mut spec = config.default_spec.clone();
        spec.mode = AccumulationMode::Accumulate;
        config.default_spec = spec;
        out.push(run_with(workload, config, "accumulate-mode"));
    }

    // 2. Geometric-mean combiner everywhere (the paper's default) instead
    //    of the calibrated Max (only differs for AQHI's anchored steps).
    {
        let mut config = baseline.clone();
        let mut spec = config.default_spec.clone();
        spec.combiner = ImpactCombiner::GeometricMean;
        config.default_spec = spec;
        out.push(run_with(workload, config, "geometric-mean-combiner"));
    }

    // 3. Without the custom/step-specific impact functions.
    {
        let mut config = baseline.clone();
        config.per_step_specs.clear();
        out.push(run_with(workload, config, "no-custom-impact-fns"));
    }

    // 4. Eq. 2 relative impact instead of Eq. 1 magnitude.
    {
        let mut config = baseline.clone();
        let mut spec = config.default_spec.clone();
        spec.impact = MetricKind::RelativeImpact;
        config.default_spec = spec;
        config.per_step_specs.clear();
        out.push(run_with(workload, config, "eq2-relative-impact"));
    }

    // 5. Balanced decision threshold (no recall optimisation).
    {
        let mut config = baseline.clone();
        if let ModelKind::RandomForest {
            trees, max_depth, ..
        } = config.model
        {
            config.model = ModelKind::RandomForest {
                trees,
                max_depth,
                threshold: 0.5,
            };
        }
        out.push(run_with(workload, config, "balanced-threshold"));
    }

    // 6. Short training: a single pattern cycle instead of two.
    {
        let mut config = baseline.clone();
        config.training_waves = workload.training_waves();
        out.push(run_with(workload, config, "single-cycle-training"));
    }

    // 7. A single decision tree instead of the forest.
    {
        let mut config = baseline;
        config.model = ModelKind::DecisionTree;
        out.push(run_with(workload, config, "single-tree-model"));
    }

    out
}

/// Runs the ablations for both workloads and writes the table.
pub fn run() {
    heading("Ablations — design choices at the 5% bound (DESIGN.md §5)");
    let mut csv = Vec::new();
    for wl in [Workload::Lrb, Workload::Aqhi] {
        println!("\n{}:", wl.id());
        println!(
            "  {:<26} {:>11} {:>11}",
            "variant", "executions", "confidence"
        );
        for a in ablate(wl) {
            println!(
                "  {:<26} {:>11} {:>11}",
                a.variant,
                pct(a.normalized_executions),
                pct(a.confidence)
            );
            csv.push(format!(
                "{},{},{:.4},{:.4}",
                wl.id(),
                a.variant,
                a.normalized_executions,
                a.confidence
            ));
        }
    }
    write_csv(
        "ablations.csv",
        "workload,variant,normalized_executions,confidence",
        &csv,
    );
}

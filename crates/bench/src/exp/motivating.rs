//! The motivating example quantified: the paper's introduction argues that
//! the Fig. 1/2 fire-risk workflow wastes "a substantial amount of
//! resources" under synchronous re-execution because temperature,
//! precipitation and wind "will probably not change every half an hour, or
//! at least not significantly to pose a risk". This experiment runs that
//! exact workflow under SmartFlux and reports what the argument predicts:
//! large savings at night and in stable weather, with the overall fire-risk
//! output staying within the bound.
//!
//! The PageRank workload (§2.3's other application-class example) is
//! evaluated alongside it.

use smartflux::eval::{evaluate, EvalPolicy};
use smartflux::{EngineConfig, ImpactCombiner, MetricKind, ModelKind, QodSpec};
use smartflux_workloads::fire::FireFactory;
use smartflux_workloads::pagerank::{PagerankFactory, CYCLE_WAVES};

use crate::{heading, pct, write_csv};

/// Outcome of one motivating-example run.
#[derive(Debug, Clone, PartialEq)]
pub struct MotivatingResult {
    /// Workload name.
    pub workload: String,
    /// Error bound.
    pub bound: f64,
    /// Executions relative to the synchronous model.
    pub normalized_executions: f64,
    /// Bound-compliance confidence.
    pub confidence: f64,
}

fn engine(training_waves: usize) -> EngineConfig {
    EngineConfig::new()
        .with_training_waves(training_waves)
        .with_model(ModelKind::RandomForest {
            trees: 60,
            max_depth: 12,
            threshold: 0.4,
        })
        .with_quality_gates(0.0, 0.0)
        // The fire workload anchors deep steps to the raw sensors
        // container; Max takes the strongest of the per-container signals.
        .with_default_spec(QodSpec::new().with_combiner(ImpactCombiner::Max))
        .with_seed(23)
}

/// Evaluates the fire-risk and PageRank workflows at the given bound.
#[must_use]
pub fn evaluate_examples(bound: f64) -> Vec<MotivatingResult> {
    let mut out = Vec::new();

    let fire = FireFactory::with_bound(bound);
    let report = evaluate(
        &fire,
        EvalPolicy::SmartFlux(Box::new(engine(24 * 14))), // two simulated weeks
        24 * 7,
        MetricKind::MeanRelative,
    )
    .expect("fire-risk evaluation succeeds");
    out.push(MotivatingResult {
        workload: "fire-risk".into(),
        bound,
        normalized_executions: report.normalized_executions(),
        confidence: report.confidence.confidence(),
    });

    let pagerank = PagerankFactory::with_bound(bound);
    let report = evaluate(
        &pagerank,
        EvalPolicy::SmartFlux(Box::new(engine(CYCLE_WAVES as usize * 2))),
        CYCLE_WAVES,
        MetricKind::MeanRelative,
    )
    .expect("pagerank evaluation succeeds");
    out.push(MotivatingResult {
        workload: "pagerank".into(),
        bound,
        normalized_executions: report.normalized_executions(),
        confidence: report.confidence.confidence(),
    });

    out
}

/// Runs the experiment across bounds and writes the table.
pub fn run() {
    heading("Motivating examples — fire risk (Fig. 1/2) and PageRank (§2.3)");
    println!("paper claim: monitoring-class workflows waste substantial resources under SDF");
    let mut csv = Vec::new();
    println!(
        "  {:<10} {:>6} {:>11} {:>11}",
        "workload", "bound", "executions", "confidence"
    );
    for bound in [0.05, 0.10] {
        for r in evaluate_examples(bound) {
            println!(
                "  {:<10} {:>6} {:>11} {:>11}",
                r.workload,
                pct(r.bound),
                pct(r.normalized_executions),
                pct(r.confidence)
            );
            csv.push(format!(
                "{},{},{:.4},{:.4}",
                r.workload, r.bound, r.normalized_executions, r.confidence
            ));
        }
    }
    write_csv(
        "motivating_examples.csv",
        "workload,bound,normalized_executions,confidence",
        &csv,
    );
}

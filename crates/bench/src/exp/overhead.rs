//! §5.3 overhead: per-task overhead of running under SmartFlux vs the clean
//! WMS, and the cost of building the classification model.
//!
//! The paper reports per-task overhead "always close to 0%", model building
//! "less than a second", and note that the overall overhead is negative
//! since executions are skipped. We measure wall-clock per-wave times for
//! (i) the clean synchronous scheduler, (ii) the scheduler with the
//! SmartFlux engine in training mode (monitoring + metrics + logging) and
//! (iii) the application phase, plus the model build time.

use std::time::{Duration, Instant};

use smartflux::{EngineConfig, QodEngine, SharedEngine};
use smartflux_datastore::{ContainerRef, DataStore, Value};
use smartflux_wms::{FnStep, GraphBuilder, Scheduler, StepContext, SynchronousPolicy, Workflow};

use crate::{heading, pct, write_csv, Workload};

/// Builds a synthetic 3-step pipeline whose steps burn `work` of CPU each —
/// a stand-in for the paper's minutes-long Hadoop tasks, scaled down so the
/// experiment completes quickly. The *relative* overhead of SmartFlux
/// monitoring against such tasks is what the paper reports as ≈0%.
fn heavy_workflow(store: &DataStore, work: Duration) -> Workflow {
    for fam in ["a", "b", "c"] {
        store
            .ensure_container(&ContainerRef::family("h", fam))
            .expect("fresh store");
    }
    let mut g = GraphBuilder::new("heavy");
    let src = g.add_step("src");
    let mid = g.add_step("mid");
    let out = g.add_step("out");
    g.add_chain(&[src, mid, out]).expect("valid chain");
    let mut wf = Workflow::new(g.build().expect("DAG"));

    let spin = move || {
        let start = Instant::now();
        let mut x = 0u64;
        while start.elapsed() < work {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            std::hint::black_box(x);
        }
    };

    wf.bind(
        src,
        FnStep::new(move |ctx: &StepContext| {
            spin();
            for i in 0..50 {
                let v = (ctx.wave() * 31 + i) % 97;
                ctx.put("h", "a", &format!("r{i}"), "v", Value::from(v as f64))?;
            }
            Ok(())
        }),
    )
    .source()
    .writes(ContainerRef::family("h", "a"));
    wf.bind(
        mid,
        FnStep::new(move |ctx: &StepContext| {
            spin();
            for i in 0..50 {
                let v = ctx.get_f64("h", "a", &format!("r{i}"), "v", 0.0)?;
                ctx.put("h", "b", &format!("r{i}"), "v", Value::from(v * 2.0))?;
            }
            Ok(())
        }),
    )
    .reads(ContainerRef::family("h", "a"))
    .writes(ContainerRef::family("h", "b"))
    .error_bound(0.05);
    wf.bind(
        out,
        FnStep::new(move |ctx: &StepContext| {
            spin();
            let mut sum = 0.0;
            for i in 0..50 {
                sum += ctx.get_f64("h", "b", &format!("r{i}"), "v", 0.0)?;
            }
            ctx.put("h", "c", "total", "v", Value::from(sum))?;
            Ok(())
        }),
    )
    .reads(ContainerRef::family("h", "b"))
    .writes(ContainerRef::family("h", "c"))
    .error_bound(0.05);
    wf
}

/// Measures the relative per-task overhead against steps that do `work` of
/// real computation each (the paper's "for each wave of data, we measured
/// the running time of tasks executed by SmartFlux versus the clean WMS").
#[must_use]
pub fn heavy_task_overhead(work: Duration, waves: u64) -> f64 {
    let store = DataStore::new();
    let wf = heavy_workflow(&store, work);
    let mut clean = Scheduler::new(wf, store, Box::new(SynchronousPolicy));
    let start = Instant::now();
    clean.run_waves(waves).expect("clean run succeeds");
    let clean_time = start.elapsed();

    let store = DataStore::new();
    let wf = heavy_workflow(&store, work);
    let config = EngineConfig::new()
        .with_training_waves(waves as usize * 2)
        .with_seed(1);
    let engine =
        QodEngine::from_workflow(&wf, store.clone(), config).expect("workflow declares QoD steps");
    let shared = SharedEngine::new(engine);
    let mut monitored = Scheduler::new(wf, store, Box::new(shared));
    let start = Instant::now();
    monitored.run_waves(waves).expect("monitored run succeeds");
    let monitored_time = start.elapsed();

    (monitored_time.as_secs_f64() - clean_time.as_secs_f64()) / clean_time.as_secs_f64()
}

/// Measured overhead for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Mean wall-clock per wave under the clean synchronous WMS (µs).
    pub clean_us: f64,
    /// Mean wall-clock per wave with SmartFlux monitoring + training (µs).
    pub training_us: f64,
    /// Mean wall-clock per adaptive wave (µs).
    pub application_us: f64,
    /// Time to build the classification model (µs).
    pub model_build_us: f64,
}

impl OverheadReport {
    /// Relative training-mode overhead vs the clean WMS.
    #[must_use]
    pub fn training_overhead(&self) -> f64 {
        (self.training_us - self.clean_us) / self.clean_us
    }

    /// Relative application-mode "overhead" (negative = faster, since
    /// executions are skipped).
    #[must_use]
    pub fn application_overhead(&self) -> f64 {
        (self.application_us - self.clean_us) / self.clean_us
    }
}

/// Measures overhead for one workload over `waves` waves per mode.
#[must_use]
pub fn measure(workload: Workload, waves: u64) -> OverheadReport {
    let bound = 0.10;

    // Clean WMS: plain synchronous scheduler, no SmartFlux attached.
    let store = DataStore::new();
    let wf = workload.factory(bound).build(&store);
    let mut clean = Scheduler::new(wf, store, Box::new(SynchronousPolicy));
    let start = Instant::now();
    clean.run_waves(waves).expect("clean run succeeds");
    let clean_us = start.elapsed().as_micros() as f64 / waves as f64;

    // SmartFlux in training mode: full monitoring, metric computation and
    // knowledge-base logging on top of synchronous execution.
    let store = DataStore::new();
    let wf = workload.factory(bound).build(&store);
    let mut config = workload.engine_config(bound);
    config.training_waves = waves as usize;
    let engine =
        QodEngine::from_workflow(&wf, store.clone(), config).expect("workloads declare QoD steps");
    let shared = SharedEngine::new(engine);
    let mut training = Scheduler::new(wf, store, Box::new(shared.clone()));
    let start = Instant::now();
    training.run_waves(waves).expect("training run succeeds");
    let training_us = start.elapsed().as_micros() as f64 / waves as f64;
    let model_build_us = shared.with(|e| {
        e.predictor()
            .last_build_time()
            .map_or(0.0, |d| d.as_micros() as f64)
    });

    // Application phase: run a training prologue, then time adaptive waves.
    let store = DataStore::new();
    let wf = workload.factory(bound).build(&store);
    let mut config = workload.engine_config(bound);
    config.training_waves = waves as usize;
    let engine =
        QodEngine::from_workflow(&wf, store.clone(), config).expect("workloads declare QoD steps");
    let shared = SharedEngine::new(engine);
    let mut sched = Scheduler::new(wf, store, Box::new(shared.clone()));
    sched.run_waves(waves).expect("training prologue succeeds");
    let start = Instant::now();
    sched.run_waves(waves).expect("application run succeeds");
    let application_us = start.elapsed().as_micros() as f64 / waves as f64;

    OverheadReport {
        clean_us,
        training_us,
        application_us,
        model_build_us,
    }
}

/// Runs the experiment for both workloads.
pub fn run() {
    heading("§5.3 — SmartFlux overhead");
    println!("paper reference: per-task overhead ≈0%; model build < 1 s; overall negative");
    let mut csv = Vec::new();
    for wl in [Workload::Lrb, Workload::Aqhi] {
        let r = measure(wl, 150);
        println!(
            "\n{}: clean {:.0} µs/wave; training {:.0} µs/wave ({} overhead); \
             application {:.0} µs/wave ({}); model build {:.1} ms",
            wl.id(),
            r.clean_us,
            r.training_us,
            pct(r.training_overhead()),
            r.application_us,
            pct(r.application_overhead()),
            r.model_build_us / 1000.0
        );
        csv.push(format!(
            "{},{:.1},{:.1},{:.1},{:.1}",
            wl.id(),
            r.clean_us,
            r.training_us,
            r.application_us,
            r.model_build_us
        ));
    }
    write_csv(
        "overhead_summary.csv",
        "workload,clean_us_per_wave,training_us_per_wave,application_us_per_wave,model_build_us",
        &csv,
    );

    // The benchmark workloads' steps complete in microseconds, so the
    // constant ~2 ms/wave of monitoring shows up as a large relative
    // number. Against realistically-sized tasks — the paper's are
    // MapReduce jobs taking minutes — the same constant cost vanishes:
    println!(
        "
per-task overhead vs synthetic heavy steps (paper's ≈0% claim):"
    );
    let mut heavy_csv = Vec::new();
    for work_ms in [5u64, 25, 100] {
        let overhead = heavy_task_overhead(Duration::from_millis(work_ms), 20);
        println!(
            "  steps of {work_ms:>4} ms: {:>6} overhead",
            pct(overhead.max(0.0))
        );
        heavy_csv.push(format!("{work_ms},{:.4}", overhead.max(0.0)));
    }
    write_csv(
        "overhead_heavy_tasks.csv",
        "step_ms,relative_overhead",
        &heavy_csv,
    );
}

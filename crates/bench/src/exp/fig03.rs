//! Fig. 3: temperature, precipitation and wind evolution hour by hour for a
//! day in the (simulated) Amazon rainforest.

use smartflux_workloads::fire::{weather, FireConfig};

use crate::{heading, write_csv};

/// One hourly row of the weather table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourRow {
    /// Hour of day (0–23).
    pub hour: u64,
    /// Mean temperature over the sensor grid (°C).
    pub temperature: f64,
    /// Mean precipitation (mm).
    pub precipitation: f64,
    /// Mean wind speed (km/h).
    pub wind: f64,
}

/// Generates the 24 hourly rows, averaged over the sensor grid.
#[must_use]
pub fn series() -> Vec<HourRow> {
    let cfg = FireConfig::default();
    (0..24)
        .map(|hour| {
            let mut t = 0.0;
            let mut p = 0.0;
            let mut w = 0.0;
            let n = (cfg.grid * cfg.grid) as f64;
            for x in 0..cfg.grid {
                for y in 0..cfg.grid {
                    let wx = weather(cfg.seed, x, y, hour, 0.0);
                    t += wx.temperature;
                    p += wx.precipitation;
                    w += wx.wind;
                }
            }
            HourRow {
                hour,
                temperature: t / n,
                precipitation: p / n,
                wind: w / n,
            }
        })
        .collect()
}

/// Runs the experiment: prints the table and writes the CSV.
pub fn run() {
    heading("Fig. 3 — diurnal weather curves (fire-risk workload)");
    let rows = series();
    println!(
        "{:>4} {:>10} {:>14} {:>8}",
        "hour", "temp (°C)", "precip (mm)", "wind"
    );
    let mut csv = Vec::new();
    for r in &rows {
        println!(
            "{:>4} {:>10.2} {:>14.3} {:>8.2}",
            r.hour, r.temperature, r.precipitation, r.wind
        );
        csv.push(format!(
            "{},{:.3},{:.4},{:.3}",
            r.hour, r.temperature, r.precipitation, r.wind
        ));
    }
    let temp_range = rows
        .iter()
        .map(|r| r.temperature)
        .fold((f64::MAX, f64::MIN), |(lo, hi), v| (lo.min(v), hi.max(v)));
    println!(
        "temperature range {:.1}–{:.1} °C (paper Fig. 3: ≈24–30 °C, smooth diurnal)",
        temp_range.0, temp_range.1
    );
    write_csv(
        "fig03_weather.csv",
        "hour,temperature_c,precipitation_mm,wind_kmh",
        &csv,
    );
}

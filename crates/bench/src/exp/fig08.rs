//! Fig. 8: accuracy, precision and recall of the learning model while
//! varying the number of training examples, for error bounds of 5, 10 and
//! 20%.
//!
//! As in the paper, the test examples are "taken in subsequent waves as
//! those of training-sets": we collect one long synchronous log per
//! (workload, bound), train on growing prefixes, and evaluate on the fixed
//! suffix (500 test examples for LRB, 384 for AQHI).

use smartflux::eval::EvalPolicy;
use smartflux::{KnowledgeBase, Predictor};
use smartflux_ml::metrics::MultiLabelReport;

use crate::{heading, pct, write_csv, Workload, BOUNDS};

/// Quality of a model trained on a prefix of the log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Training examples used.
    pub training_examples: usize,
    /// Micro-averaged accuracy on the held-out suffix.
    pub accuracy: f64,
    /// Micro-averaged precision.
    pub precision: f64,
    /// Micro-averaged recall.
    pub recall: f64,
}

fn training_sizes(workload: Workload) -> Vec<usize> {
    match workload {
        Workload::Lrb => vec![100, 200, 300, 400, 500],
        Workload::Aqhi => vec![96, 192, 288, 384],
    }
}

/// Collects the synchronous log spanning the training sizes plus the test
/// suffix for one (workload, bound) pair.
#[must_use]
pub fn collect_log(workload: Workload, bound: f64) -> KnowledgeBase {
    let max_train = *training_sizes(workload).last().expect("non-empty sizes");
    let test_len = workload.application_waves() as usize;
    let mut config = workload.engine_config(bound);
    config.training_waves = max_train + test_len;
    let report = workload.evaluate_policy(bound, EvalPolicy::SmartFlux(Box::new(config)), 1);
    let engine = report.engine.expect("smartflux run provides the engine");
    engine.with(|e| e.knowledge_base().clone())
}

/// Computes the learning curve for one (workload, bound) pair.
///
/// # Panics
///
/// Panics if the log is shorter than the largest training size plus one.
#[must_use]
pub fn learning_curve(workload: Workload, bound: f64, log: &KnowledgeBase) -> Vec<CurvePoint> {
    let sizes = training_sizes(workload);
    let max_train = *sizes.last().expect("non-empty sizes");
    assert!(log.len() > max_train, "log too short: {}", log.len());

    // Fixed test suffix.
    let test_rows = &log.rows()[max_train..];

    sizes
        .iter()
        .map(|&n| {
            let mut train_kb = KnowledgeBase::new(log.step_names().to_vec());
            for row in &log.rows()[..n] {
                train_kb
                    .append(row.wave, row.impacts.clone(), row.must_execute.clone())
                    .expect("schema matches");
            }
            let mut predictor = Predictor::new(workload.engine_config(bound).model, 17);
            predictor.train(&train_kb).expect("training succeeds");

            let actual: Vec<Vec<bool>> = test_rows.iter().map(|r| r.must_execute.clone()).collect();
            let predicted: Vec<Vec<bool>> = test_rows
                .iter()
                .map(|r| predictor.predict(&r.impacts).expect("trained"))
                .collect();
            let report = MultiLabelReport::from_matrices(&actual, &predicted);
            CurvePoint {
                training_examples: n,
                accuracy: report.pooled().accuracy(),
                precision: report.pooled().precision(),
                recall: report.pooled().recall(),
            }
        })
        .collect()
}

/// Runs the experiment for both workloads across all bounds.
pub fn run() {
    heading("Fig. 8 — accuracy/precision/recall vs training-set size");
    println!("paper reference: LRB accuracy 60–80% (recall ≥86%); AQHI ≥80–95%");
    for wl in [Workload::Lrb, Workload::Aqhi] {
        let mut csv = Vec::new();
        for bound in BOUNDS {
            let log = collect_log(wl, bound);
            let curve = learning_curve(wl, bound, &log);
            println!("\n{} bound {}:", wl.id(), pct(bound));
            println!(
                "  {:>8} {:>9} {:>10} {:>7}",
                "examples", "accuracy", "precision", "recall"
            );
            for p in &curve {
                println!(
                    "  {:>8} {:>9.3} {:>10.3} {:>7.3}",
                    p.training_examples, p.accuracy, p.precision, p.recall
                );
                csv.push(format!(
                    "{},{},{:.4},{:.4},{:.4}",
                    bound, p.training_examples, p.accuracy, p.precision, p.recall
                ));
            }
        }
        write_csv(
            &format!("fig08_learning_{}.csv", wl.id()),
            "bound,training_examples,accuracy,precision,recall",
            &csv,
        );
    }
}

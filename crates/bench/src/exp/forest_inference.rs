//! Forest-inference micro-bench: scalar pointer walk vs flat arena vs
//! batched prediction.
//!
//! Measures single-sample prediction latency for three Random Forest
//! inference paths over the same trained ensembles:
//!
//! - `scalar` — the original `Box`-node pointer walk
//!   (`RandomForest::predict_proba_reference`), kept as the parity
//!   oracle;
//! - `flat` — the struct-of-arrays `TreeArena` walk behind
//!   `RandomForest::predict_proba`;
//! - `batched` — `RandomForest::predict_batch`, trees-outer over a probe
//!   block, amortising per-call overhead and reusing each tree's nodes
//!   while they are hot in cache.
//!
//! The grid is `n_trees` ∈ {10, 50, 100} × `max_depth` ∈ {8, 16}; every
//! cell reports nanoseconds per predicted sample (best of the
//! repetitions — the work is deterministic, so the minimum is the
//! measurement) and the speedup against `scalar` on the same ensemble.
//! Acceptance target: `flat` and `batched` reach at least 3× `scalar` at
//! `n_trees = 50`, `depth = 16` — the LRB/AQHI-sized configuration. The
//! achieved ratio is printed either way; hosts with small caches may sit
//! below the target and the line says so rather than flattering the
//! number.
//!
//! A second stage measures the engine-facing path: a multi-label
//! [`Predictor`] (four QoD labels, the recall-optimised LRB forest
//! shape) answering whole-wave `predict_all` queries. It reports
//! waves/second and prediction nanoseconds per label, and persists both
//! to `BENCH_ml.json` at the repo root so the bench trajectory has a
//! machine-readable anchor.

use std::fs;
use std::path::Path;
use std::time::Instant;

use smartflux::{KnowledgeBase, ModelKind, Predictor};
use smartflux_ml::{Classifier, Dataset, RandomForest};

use crate::{heading, results_dir, write_csv};

/// One measured cell of the inference grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestInferenceRow {
    /// Ensemble size.
    pub n_trees: usize,
    /// Tree depth cap.
    pub depth: usize,
    /// Inference path (`scalar`, `flat`, `batched`).
    pub path: String,
    /// Nanoseconds per predicted sample (best repetition).
    pub ns_per_predict: f64,
    /// Throughput relative to `scalar` on the same ensemble.
    pub speedup: f64,
}

/// Probe samples per measurement pass.
const PROBES: usize = 2_000;

/// splitmix64: deterministic synthetic data.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Training data with interacting signal, noise, and duplicated values,
/// so the fitted trees reach realistic depth and branchiness.
fn dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let a = (rng.next() % 1000) as f64 / 100.0;
        let b = (rng.next() % 100) as f64 / 10.0;
        let c = (rng.next() % 7) as f64;
        let d = (rng.next() % 1000) as f64 / 250.0;
        x.push(vec![a, b, c, d]);
        y.push(a + b * 0.5 > 7.5 || (c >= 4.0 && d > 2.0));
    }
    // tidy:allow(panic): bench harness aborts loudly on setup failure
    Dataset::new(x, y).expect("synthetic dataset is well-formed")
}

fn probes(n: usize) -> Vec<Vec<f64>> {
    let mut rng = Rng(0xBEEF_CAFE);
    (0..n)
        .map(|_| {
            vec![
                (rng.next() % 1000) as f64 / 100.0,
                (rng.next() % 100) as f64 / 10.0,
                (rng.next() % 7) as f64,
                (rng.next() % 1000) as f64 / 250.0,
            ]
        })
        .collect()
}

/// Times `pass` over the probe block `reps` times and returns the best
/// (lowest) nanoseconds per sample. The probabilities are accumulated
/// into a checksum that is returned to the caller, so the compiler
/// cannot discard the prediction work.
fn best_ns_per_sample(reps: u32, n_samples: usize, mut pass: impl FnMut() -> f64) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0.0;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        checksum = pass();
        let ns = start.elapsed().as_nanos() as f64 / n_samples as f64;
        if ns < best {
            best = ns;
        }
    }
    (best, checksum)
}

/// Measures every `n_trees` × `depth` × path combination.
#[must_use]
pub fn measure(reps: u32) -> Vec<ForestInferenceRow> {
    let block = probes(PROBES);
    let data = dataset(600, 42);
    let mut rows = Vec::new();
    for n_trees in [10usize, 50, 100] {
        for depth in [8usize, 16] {
            let mut rf = RandomForest::new(n_trees)
                .with_max_depth(depth)
                .with_seed(7);
            // tidy:allow(panic): bench harness aborts loudly on setup failure
            rf.fit(&data).expect("bench forest fits");

            let (scalar_ns, scalar_sum) = best_ns_per_sample(reps, block.len(), || {
                block.iter().map(|p| rf.predict_proba_reference(p)).sum()
            });
            let (flat_ns, flat_sum) = best_ns_per_sample(reps, block.len(), || {
                block.iter().map(|p| rf.predict_proba(p)).sum()
            });
            let (batched_ns, batched_sum) = best_ns_per_sample(reps, block.len(), || {
                // tidy:allow(panic): bench harness aborts loudly on a failed op
                rf.predict_batch(&block).expect("fitted").iter().sum()
            });
            // The three paths are bit-identical, so identical checksums
            // double as an in-bench parity assertion.
            assert!(
                scalar_sum == flat_sum && flat_sum == batched_sum,
                "inference paths diverged: {scalar_sum} / {flat_sum} / {batched_sum}"
            );

            for (path, ns) in [
                ("scalar", scalar_ns),
                ("flat", flat_ns),
                ("batched", batched_ns),
            ] {
                rows.push(ForestInferenceRow {
                    n_trees,
                    depth,
                    path: path.to_owned(),
                    ns_per_predict: ns,
                    speedup: scalar_ns / ns,
                });
            }
        }
    }
    rows
}

/// Engine-facing measurement: a four-label [`Predictor`] answering
/// whole-wave `predict_all` queries with the LRB-sized forest.
///
/// Returns `(waves_per_sec, predict_ns_per_label)`.
#[must_use]
pub fn measure_predictor(reps: u32) -> (f64, f64) {
    const LABELS: usize = 4;
    let mut kb = KnowledgeBase::new((0..LABELS).map(|j| format!("step{j}")).collect());
    let mut rng = Rng(0x51AB_1E5E);
    for wave in 0..600u64 {
        let impacts: Vec<f64> = (0..LABELS)
            .map(|_| (rng.next() % 1000) as f64 / 1000.0)
            .collect();
        let labels: Vec<bool> = impacts.iter().map(|&i| i > 0.42).collect();
        // tidy:allow(panic): bench harness aborts loudly on setup failure
        kb.append(wave, impacts, labels).expect("well-shaped row");
    }
    let mut predictor = Predictor::new(
        ModelKind::RandomForest {
            trees: 50,
            max_depth: 16,
            threshold: 0.5,
        },
        17,
    );
    // tidy:allow(panic): bench harness aborts loudly on setup failure
    predictor.train(&kb).expect("bench predictor trains");

    let queries = probes(PROBES);
    let (ns_per_wave, decisions) = best_ns_per_sample(reps, queries.len(), || {
        queries
            .iter()
            .map(|q| {
                // tidy:allow(panic): bench harness aborts loudly on a failed op
                let d = predictor.predict_all(q).expect("trained");
                d.iter().filter(|&&b| b).count() as f64
            })
            .sum()
    });
    // Not a parity check, only dead-code protection for the query loop.
    assert!(decisions >= 0.0, "query loop optimised away");
    (1e9 / ns_per_wave, ns_per_wave / LABELS as f64)
}

/// Writes the machine-readable bench anchor next to `tidy-ratchet.json`.
fn write_bench_json(
    waves_per_sec: f64,
    ns_per_label: f64,
    flat_speedup: f64,
    batched_speedup: f64,
) {
    let path = results_dir().join("..").join("BENCH_ml.json");
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"bench\": \"forest_inference\",\n  \
         \"config\": {{ \"n_trees\": 50, \"depth\": 16, \"labels\": 4 }},\n  \
         \"waves_per_sec\": {waves_per_sec:.0},\n  \
         \"predict_ns_per_label\": {ns_per_label:.1},\n  \
         \"speedup_flat_vs_scalar\": {flat_speedup:.2},\n  \
         \"speedup_batched_vs_scalar\": {batched_speedup:.2}\n}}\n"
    );
    // tidy:allow(panic): bench harness aborts loudly on I/O failure
    fs::write(&path, json).expect("cannot write BENCH_ml.json");
    println!("  wrote {}", simplified(&path));
}

/// Display helper: collapses the `results/..` indirection in the path.
fn simplified(path: &Path) -> String {
    path.canonicalize()
        .map_or_else(|_| path.display().to_string(), |p| p.display().to_string())
}

/// The speedup of `path` over `scalar` at a grid cell.
fn speedup_at(rows: &[ForestInferenceRow], path: &str, n_trees: usize, depth: usize) -> f64 {
    rows.iter()
        .find(|r| r.path == path && r.n_trees == n_trees && r.depth == depth)
        .map_or(0.0, |r| r.speedup)
}

/// Runs the micro-bench and prints + persists the tables.
pub fn run() {
    heading("Forest inference — scalar vs flat arena vs batched");
    println!("acceptance: flat and batched ≥ 3x scalar at n_trees=50, depth=16\n");
    let rows = measure(5);
    let mut csv = Vec::new();
    for r in &rows {
        println!(
            "  trees={:<4} depth={:<3} {:<8} {:>9.1} ns/predict  {:>6.2}x vs scalar",
            r.n_trees, r.depth, r.path, r.ns_per_predict, r.speedup
        );
        csv.push(format!(
            "{},{},{},{:.1},{:.3}",
            r.n_trees, r.depth, r.path, r.ns_per_predict, r.speedup
        ));
    }
    println!();
    let flat = speedup_at(&rows, "flat", 50, 16);
    let batched = speedup_at(&rows, "batched", 50, 16);
    for (path, ratio) in [("flat", flat), ("batched", batched)] {
        println!(
            "  {path:<8} at trees=50 depth=16: {ratio:.2}x ({})",
            if ratio >= 3.0 {
                "meets ≥3x"
            } else {
                "BELOW 3x"
            }
        );
    }
    if flat < 3.0 || batched < 3.0 {
        // Same reporting stance as store_scaling: print the honest number
        // and explain the regime rather than massage the measurement. A
        // 50-tree/depth-16 forest over 4 features is a few hundred KB of
        // nodes, so on this host the scalar baseline already runs mostly
        // out of L2 and the latency gap the interleaved walk hides is
        // small; the flat paths win by memory-level parallelism, which
        // grows with forest size (see the trees=100 rows) and with cache
        // pressure on larger hosts.
        println!(
            "  note: below-target cells are cache-resident on this host; \
             the gap widens with forest size."
        );
    }
    write_csv(
        "forest_inference.csv",
        "n_trees,depth,path,ns_per_predict,speedup_vs_scalar",
        &csv,
    );

    let (waves_per_sec, ns_per_label) = measure_predictor(5);
    println!(
        "\n  predictor (4 labels, trees=50 depth=16): {waves_per_sec:.0} waves/s, \
         {ns_per_label:.1} ns per label"
    );
    write_bench_json(waves_per_sec, ns_per_label, flat, batched);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_cell_and_paths_agree() {
        let rows = measure(1);
        // 3 tree counts × 2 depths × 3 paths.
        assert_eq!(rows.len(), 18);
        for r in &rows {
            assert!(r.ns_per_predict > 0.0);
            assert!(r.speedup > 0.0);
        }
        // Scalar is its own baseline.
        for r in rows.iter().filter(|r| r.path == "scalar") {
            assert!((r.speedup - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn predictor_stage_reports_positive_throughput() {
        let (waves_per_sec, ns_per_label) = measure_predictor(1);
        assert!(waves_per_sec > 0.0);
        assert!(ns_per_label > 0.0);
    }
}

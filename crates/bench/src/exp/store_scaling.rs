//! Store-scaling micro-bench: sharded vs single-lock throughput.
//!
//! Measures aggregate store throughput (operations per second) for the
//! seed's single global lock (`ShardPolicy::Single`) against the sharded
//! layout (`ShardPolicy::Auto`) at 1, 2, 4 and 8 threads, over three
//! workloads: pure reads, pure writes and a 80/20 read/write mix. A fixed
//! total operation count is split across the threads, so the number is
//! end-to-end wall clock for the same work at every level.
//!
//! Acceptance targets: the sharded store reaches at least 2× the
//! single-lock aggregate throughput at 8 threads, and stays within 5% of
//! the single-lock (seed) throughput on one thread, where sharding buys
//! nothing and its hash/indirection overhead is all that could show.
//!
//! The wall-clock separation needs real hardware parallelism: on a host
//! with fewer cores than client threads both configurations serialize on
//! the CPU and throughput stays flat regardless of lock granularity. The
//! bench therefore also records each run's shard-contention counters —
//! the number of lock acquisitions that found the lock held — which
//! expose the serialization the single lock imposes on every host. The
//! acceptance line reports which regime the host is in.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use smartflux_datastore::{DataStore, ScanFilter, ShardPolicy, Value};

use crate::{heading, pct, write_csv};

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreScalingRow {
    /// Workload label (`read`, `mixed`, `write`).
    pub workload: String,
    /// Policy label (`single`, `sharded`).
    pub policy: String,
    /// Concurrent client threads.
    pub threads: usize,
    /// Aggregate operations per second (best of the repetitions).
    pub ops_per_sec: f64,
    /// Throughput relative to `single` at the same workload/threads.
    pub speedup: f64,
    /// Read-guard acquisitions that found the lock held (same rep).
    pub read_contention: u64,
    /// Write-guard acquisitions that found the lock held (same rep).
    pub write_contention: u64,
}

/// Total operations per measurement, split evenly across the threads.
const TOTAL_OPS: usize = 240_000;
const TABLE: &str = "bench";
const FAMILIES: [&str; 8] = ["f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7"];
const ROWS: usize = 32;
const QUALS: usize = 4;

/// splitmix64: a deterministic per-thread operation stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Builds a store under `policy` with every cell of the keyspace
/// pre-populated, so reads always hit.
fn build_store(policy: ShardPolicy) -> DataStore {
    let store = DataStore::with_shard_policy(policy);
    // tidy:allow(panic): bench harness aborts loudly on setup failure
    store.create_table(TABLE).expect("fresh table");
    for family in FAMILIES {
        // tidy:allow(panic): bench harness aborts loudly on setup failure
        store.create_family(TABLE, family).expect("fresh family");
        for r in 0..ROWS {
            for q in 0..QUALS {
                store
                    .put(
                        TABLE,
                        family,
                        &format!("r{r}"),
                        &format!("q{q}"),
                        Value::I64(0),
                    )
                    // tidy:allow(panic): bench harness aborts loudly on setup failure
                    .expect("seed put");
            }
        }
    }
    store
}

/// Runs `TOTAL_OPS` operations split across `threads` clients and returns
/// `(aggregate ops per second, read contention, write contention)`.
/// `write_percent` sets the put share of each thread's stream; the rest
/// are gets.
fn run_once(policy: ShardPolicy, threads: usize, write_percent: u64) -> (f64, u64, u64) {
    let store = build_store(policy);
    let populated = store.shard_stats();
    let per_thread = TOTAL_OPS / threads;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = store.clone();
            scope.spawn(move || {
                let mut rng = Rng((t as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F));
                for _ in 0..per_thread {
                    let family = FAMILIES[(rng.next() % FAMILIES.len() as u64) as usize];
                    let row = format!("r{}", rng.next() % ROWS as u64);
                    let qual = format!("q{}", rng.next() % QUALS as u64);
                    if rng.next() % 100 < write_percent {
                        let v = rng.next() as i64;
                        store
                            .put(TABLE, family, &row, &qual, Value::I64(v))
                            // tidy:allow(panic): bench harness aborts loudly on a failed op
                            .expect("bench put");
                    } else {
                        store
                            .get(TABLE, family, &row, &qual)
                            // tidy:allow(panic): bench harness aborts loudly on a failed op
                            .expect("bench get");
                    }
                }
            });
        }
    });
    let ops_per_sec = (per_thread * threads) as f64 / start.elapsed().as_secs_f64();
    let stats = store.shard_stats();
    (
        ops_per_sec,
        stats.read_contention - populated.read_contention,
        stats.write_contention - populated.write_contention,
    )
}

/// Wall-clock budget of one `scanwrite` repetition.
const SCAN_WRITE_BUDGET: Duration = Duration::from_millis(200);

/// Rows in each scanner family: scans are long enough that a scanner
/// preempted mid-scan is a realistic event, which is exactly when the
/// global lock makes writers wait out a whole scheduling round.
const SCAN_ROWS: usize = 384;

/// The `scanwrite` workload: half the threads scan their own family in a
/// tight loop (long-lived read guards — the shape of a workflow step
/// reading its input), the other half put into *disjoint* families (a
/// sibling step writing its output). Reported throughput is the writers'
/// aggregate puts per second: under the global lock every put waits out
/// the scanners' read guards; on the sharded store disjoint families
/// never share a lock, so writers proceed at full speed. Unlike the
/// fixed-op workloads this separation does not need hardware parallelism.
/// With one thread there are no scanners and the measurement reduces to
/// the pure single-writer baseline.
fn run_scan_write(policy: ShardPolicy, threads: usize) -> (f64, u64, u64) {
    let store = build_store(policy);
    let scanners = threads / 2;
    let writers = threads - scanners;
    // Deepen the scanner families so a full scan is substantial work.
    for s in 0..scanners {
        let family = FAMILIES[s % FAMILIES.len()];
        for r in ROWS..SCAN_ROWS {
            for q in 0..QUALS {
                store
                    .put(
                        TABLE,
                        family,
                        &format!("r{r}"),
                        &format!("q{q}"),
                        Value::I64(0),
                    )
                    // tidy:allow(panic): bench harness aborts loudly on setup failure
                    .expect("seed put");
            }
        }
    }
    let populated = store.shard_stats();
    let stop = AtomicBool::new(false);
    let puts = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for s in 0..scanners {
            let store = store.clone();
            let stop = &stop;
            scope.spawn(move || {
                let family = FAMILIES[s % FAMILIES.len()];
                while !stop.load(Ordering::Relaxed) {
                    store
                        .scan(TABLE, family, &ScanFilter::all())
                        // tidy:allow(panic): bench harness aborts loudly on a failed op
                        .expect("bench scan");
                }
            });
        }
        for w in 0..writers {
            let store = store.clone();
            let puts = &puts;
            let stop = &stop;
            scope.spawn(move || {
                // Writer families are disjoint from scanner families.
                let family = FAMILIES[(scanners + w) % FAMILIES.len()];
                let mut rng = Rng((w as u64 + 1).wrapping_mul(0xE703_7ED1_A0B4_28DB));
                let mut local = 0u64;
                let deadline = Instant::now() + SCAN_WRITE_BUDGET;
                while Instant::now() < deadline {
                    for _ in 0..64 {
                        let row = format!("r{}", rng.next() % ROWS as u64);
                        let qual = format!("q{}", rng.next() % QUALS as u64);
                        let v = rng.next() as i64;
                        store
                            .put(TABLE, family, &row, &qual, Value::I64(v))
                            // tidy:allow(panic): bench harness aborts loudly on a failed op
                            .expect("bench put");
                        local += 1;
                    }
                }
                puts.fetch_add(local, Ordering::Relaxed);
                // The last writer to finish releases the scanners.
                stop.store(true, Ordering::Relaxed);
            });
        }
    });
    let ops_per_sec = puts.load(Ordering::Relaxed) as f64 / SCAN_WRITE_BUDGET.as_secs_f64();
    let stats = store.shard_stats();
    (
        ops_per_sec,
        stats.read_contention - populated.read_contention,
        stats.write_contention - populated.write_contention,
    )
}

/// Measures every workload × thread count × policy combination.
///
/// Each cell runs `reps` times and the fastest repetition is kept: the
/// operation stream is deterministic work, so the maximum throughput is
/// the measurement and everything below it is scheduler/allocator noise.
#[must_use]
pub fn measure(reps: u32) -> Vec<StoreScalingRow> {
    type Runner = fn(ShardPolicy, usize) -> (f64, u64, u64);
    let workloads: [(&str, Runner); 4] = [
        ("read", |p, t| run_once(p, t, 0)),
        ("mixed", |p, t| run_once(p, t, 20)),
        ("write", |p, t| run_once(p, t, 100)),
        ("scanwrite", run_scan_write),
    ];
    let thread_counts = [1usize, 2, 4, 8];
    let policies: [(&str, ShardPolicy); 2] = [
        ("single", ShardPolicy::Single),
        ("sharded", ShardPolicy::Auto),
    ];

    let mut rows = Vec::new();
    for (workload, runner) in workloads {
        for threads in thread_counts {
            let mut baseline = 0.0;
            for (policy_name, policy) in policies {
                let mut best = (0.0f64, 0, 0);
                for _ in 0..reps.max(1) {
                    let sample = runner(policy, threads);
                    if sample.0 > best.0 {
                        best = sample;
                    }
                }
                if policy_name == "single" {
                    baseline = best.0;
                }
                rows.push(StoreScalingRow {
                    workload: workload.to_owned(),
                    policy: policy_name.to_owned(),
                    threads,
                    ops_per_sec: best.0,
                    speedup: best.0 / baseline,
                    read_contention: best.1,
                    write_contention: best.2,
                });
            }
        }
    }
    rows
}

/// The `(sharded, single)` throughput ratio for a workload/thread cell.
fn ratio(rows: &[StoreScalingRow], workload: &str, threads: usize) -> f64 {
    let find = |policy: &str| {
        rows.iter()
            .find(|r| r.workload == workload && r.threads == threads && r.policy == policy)
            .map_or(0.0, |r| r.ops_per_sec)
    };
    find("sharded") / find("single")
}

/// Runs the micro-bench and prints + persists the table.
pub fn run() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    heading("Store scaling — sharded vs single-lock throughput");
    println!("acceptance: sharded ≥ 2× single-lock at 8 threads, within 5% at 1 thread");
    println!("host parallelism: {cores} core(s)\n");
    let rows = measure(5);
    let mut csv = Vec::new();
    for r in &rows {
        println!(
            "  {:<6} {:<8} {:>2} threads  {:>12.0} ops/s  {:>6.2}x vs single  \
             contention r/w {:>8}/{:<8}",
            r.workload,
            r.policy,
            r.threads,
            r.ops_per_sec,
            r.speedup,
            r.read_contention,
            r.write_contention
        );
        csv.push(format!(
            "{},{},{},{:.0},{:.3},{},{}",
            r.workload,
            r.policy,
            r.threads,
            r.ops_per_sec,
            r.speedup,
            r.read_contention,
            r.write_contention
        ));
    }
    println!();
    for workload in ["read", "mixed", "write", "scanwrite"] {
        let at8 = ratio(&rows, workload, 8);
        let at1 = ratio(&rows, workload, 1);
        println!(
            "  {workload:<9} 8-thread speedup {at8:.2}x ({}), 1-thread ratio {at1:.2} ({})",
            if at8 >= 2.0 {
                "meets ≥2x".to_owned()
            } else if cores < 8 {
                format!("wall-clock flat on {cores}-core host")
            } else {
                "BELOW 2x".to_owned()
            },
            if at1 >= 0.95 {
                "within 5%".to_owned()
            } else {
                format!("{} below single", pct(1.0 - at1))
            }
        );
    }
    if cores < 8 {
        println!(
            "\n  note: with {cores} core(s) the fixed-op workloads serialize on the CPU\n  \
             regardless of lock granularity; `scanwrite` (writers vs long read\n  \
             guards) is the cell that exposes the single lock on any host."
        );
    }
    write_csv(
        "store_scaling.csv",
        "workload,policy,threads,ops_per_sec,speedup_vs_single,read_contention,write_contention",
        &csv,
    );
}

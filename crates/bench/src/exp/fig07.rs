//! Fig. 7: correlation between input impact and output error for the main
//! processing steps of LRB and AQHI (maxε = 20%).
//!
//! The paper plots the per-wave (ι, ε) points collected during synchronous
//! execution and reports the sample Pearson coefficient r per step,
//! motivating the use of ML over simple linear fits (r far from 1 for most
//! steps, especially LRB).

use smartflux::eval::{pearson, EvalPolicy};

use crate::{heading, write_csv, Workload};

/// The (ι, ε) scatter and Pearson r for one step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepCorrelation {
    /// Step name.
    pub step: String,
    /// Per-wave input impacts.
    pub impacts: Vec<f64>,
    /// Per-wave simulated output errors.
    pub errors: Vec<f64>,
    /// Sample Pearson correlation coefficient.
    pub r: f64,
}

/// Collects the training-phase (ι, ε) pairs for every QoD step of a
/// workload at the 20% bound.
#[must_use]
pub fn collect(workload: Workload) -> Vec<StepCorrelation> {
    let bound = 0.20;
    let report = workload.evaluate_policy(
        bound,
        EvalPolicy::SmartFlux(Box::new(workload.engine_config(bound))),
        1, // training diagnostics are what we need
    );
    let engine = report.engine.expect("smartflux run provides the engine");
    engine.with(|e| {
        let names: Vec<String> = e.qod_step_names().iter().map(|s| (*s).to_owned()).collect();
        let training: Vec<_> = e.diagnostics().iter().filter(|d| d.training).collect();
        names
            .iter()
            .enumerate()
            .map(|(j, name)| {
                let impacts: Vec<f64> = training.iter().map(|d| d.impacts[j]).collect();
                let errors: Vec<f64> = training.iter().map(|d| d.errors[j]).collect();
                let r = pearson(&impacts, &errors);
                StepCorrelation {
                    step: name.clone(),
                    impacts,
                    errors,
                    r,
                }
            })
            .collect()
    })
}

/// Runs the experiment for both workloads: prints r per step and writes the
/// scatter CSVs.
pub fn run() {
    heading("Fig. 7 — correlation between input impact and error (maxε = 20%)");
    println!(
        "paper reference: LRB r ∈ [0.065, 0.15] (weak); AQHI zones 0.68, hotspots 0.31, index 0.87"
    );
    for wl in [Workload::Lrb, Workload::Aqhi] {
        let correlations = collect(wl);
        println!("\n{}:", wl.id());
        let mut csv = Vec::new();
        for c in &correlations {
            println!(
                "  {:<20} r = {:+.3}  ({} waves)",
                c.step,
                c.r,
                c.impacts.len()
            );
            for (i, (impact, error)) in c.impacts.iter().zip(&c.errors).enumerate() {
                csv.push(format!("{},{},{:.6e},{:.6}", c.step, i + 1, impact, error));
            }
        }
        write_csv(
            &format!("fig07_correlation_{}.csv", wl.id()),
            "step,wave,impact,error",
            &csv,
        );
        let rs: Vec<String> = correlations
            .iter()
            .map(|c| format!("{},{:.4}", c.step, c.r))
            .collect();
        write_csv(
            &format!("fig07_pearson_{}.csv", wl.id()),
            "step,pearson_r",
            &rs,
        );
    }
}

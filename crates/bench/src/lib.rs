//! Experiment harness reproducing the paper's figures and tables.
//!
//! Each binary under `src/bin/` regenerates one figure or table of the
//! paper's evaluation (§5), printing the series to stdout and writing CSV
//! files under `results/`. This library holds the shared machinery:
//! standard workload/engine configurations, CSV output, and small
//! formatting helpers.
//!
//! Run everything with `cargo run --release -p smartflux-bench --bin
//! all_experiments`.

#![forbid(unsafe_code)]

pub mod diag;

use std::fs;
use std::path::{Path, PathBuf};

use smartflux::eval::{evaluate, EvalPolicy, EvalReport, WorkloadFactory};
use smartflux::{EngineConfig, ImpactCombiner, MetricKind, ModelKind, QodSpec};
use smartflux_workloads::lrb;
use smartflux_workloads::{aqhi::AqhiFactory, lrb::LrbFactory};

/// The two benchmark workloads of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Linear Road tolling.
    Lrb,
    /// Air-quality index.
    Aqhi,
}

impl Workload {
    /// Short identifier used in file names and tables.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Workload::Lrb => "lrb",
            Workload::Aqhi => "aqhi",
        }
    }

    /// Training waves used in the paper's experiments (500 for LRB, 384
    /// for AQHI — "a cycle of a pattern that repeats across time").
    #[must_use]
    pub fn training_waves(self) -> usize {
        match self {
            Workload::Lrb => 500,
            Workload::Aqhi => 384,
        }
    }

    /// Longer training used by the headline runs (two pattern cycles) —
    /// Fig. 8 sweeps the training-set size explicitly.
    #[must_use]
    pub fn extended_training_waves(self) -> usize {
        self.training_waves() * 2
    }

    /// Application (test) waves per run: 500 for LRB, 384 for AQHI.
    #[must_use]
    pub fn application_waves(self) -> u64 {
        match self {
            Workload::Lrb => 500,
            Workload::Aqhi => 384,
        }
    }

    /// The standard engine configuration for this workload at a given
    /// error bound. LRB gets the recall-optimised classifier (§5.2: "Since
    /// LRB exhibited in general more variance … we decided to optimize its
    /// classifier for recall").
    #[must_use]
    pub fn engine_config(self, _bound: f64) -> EngineConfig {
        let model = match self {
            Workload::Lrb => ModelKind::recall_optimised(),
            Workload::Aqhi => ModelKind::RandomForest {
                trees: 100,
                max_depth: 12,
                threshold: 0.35,
            },
        };
        let mut spec = QodSpec::default();
        if self == Workload::Aqhi {
            // AQHI steps monitor both their direct input and the raw
            // readings container; take the strongest signal.
            spec = spec.with_combiner(ImpactCombiner::Max);
        }
        let mut config = EngineConfig::new()
            .with_training_waves(self.extended_training_waves())
            .with_model(model)
            .with_quality_gates(0.0, 0.0) // fixed-length training, as in the paper's runs
            .with_default_spec(spec)
            .with_seed(17);
        if self == Workload::Lrb {
            // `classify` quantises tolls into classes; its recommended QoD
            // spec counts class-boundary crossings (§4.2 custom impact
            // functions).
            config = config.with_step_spec("classify", lrb::classify_qod_spec());
        }
        config
    }

    /// Runs the twin-run evaluation of `policy` on this workload at
    /// `bound`.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to execute (a bug, not an input
    /// condition).
    #[must_use]
    pub fn evaluate_policy(self, bound: f64, policy: EvalPolicy, waves: u64) -> EvalReport {
        match self {
            Workload::Lrb => evaluate(
                &LrbFactory::with_bound(bound),
                policy,
                waves,
                MetricKind::MeanRelative,
            ),
            Workload::Aqhi => evaluate(
                &AqhiFactory::with_bound(bound),
                policy,
                waves,
                MetricKind::MeanRelative,
            ),
        }
        .expect("workload execution failed")
    }

    /// Builds this workload's factory boxed as a trait object.
    #[must_use]
    pub fn factory(self, bound: f64) -> Box<dyn WorkloadFactory> {
        match self {
            Workload::Lrb => Box::new(LrbFactory::with_bound(bound)),
            Workload::Aqhi => Box::new(AqhiFactory::with_bound(bound)),
        }
    }
}

/// The error bounds the paper sweeps (5%, 10%, 20%).
pub const BOUNDS: [f64; 3] = [0.05, 0.10, 0.20];

/// Directory where experiment CSVs are written.
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// Writes a CSV file into the results directory and reports it on stdout.
///
/// # Panics
///
/// Panics on I/O failure.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = results_dir().join(name);
    let mut content = String::with_capacity(rows.len() * 32 + header.len() + 1);
    content.push_str(header);
    content.push('\n');
    for r in rows {
        content.push_str(r);
        content.push('\n');
    }
    fs::write(&path, content).expect("cannot write results CSV");
    println!("  wrote {}", path.display());
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Prints a section heading.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}

/// The headline summary: savings, speedups and confidence per bound (the
/// abstract's "up to 30% less executions while enforcing a QoD as low as 5%
/// with a confidence over 95%").
pub fn headline() {
    heading("Headline summary (paper: §5.3 / abstract)");
    let mut rows = Vec::new();
    println!(
        "{:<6} {:>7} {:>12} {:>10} {:>11} {:>10} {:>9}",
        "wload", "bound", "normalized", "saved", "confidence", "violations", "speedup"
    );
    for wl in [Workload::Lrb, Workload::Aqhi] {
        for bound in BOUNDS {
            let report = wl.evaluate_policy(
                bound,
                EvalPolicy::SmartFlux(Box::new(wl.engine_config(bound))),
                wl.application_waves(),
            );
            let normalized = report.normalized_executions();
            let saved = 1.0 - normalized;
            let confidence = report.confidence.confidence();
            let speedup = if normalized > 0.0 {
                1.0 / normalized
            } else {
                f64::INFINITY
            };
            println!(
                "{:<6} {:>7} {:>12} {:>10} {:>11} {:>10} {:>8.2}x",
                wl.id(),
                pct(bound),
                pct(normalized),
                pct(saved),
                pct(confidence),
                report.confidence.violations(),
                speedup
            );
            rows.push(format!(
                "{},{},{:.4},{:.4},{:.4},{},{:.3}",
                wl.id(),
                bound,
                normalized,
                saved,
                confidence,
                report.confidence.violations(),
                speedup
            ));
        }
    }
    write_csv(
        "headline_summary.csv",
        "workload,bound,normalized_executions,saved,confidence,violations,speedup",
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_metadata() {
        assert_eq!(Workload::Lrb.id(), "lrb");
        assert_eq!(Workload::Aqhi.training_waves(), 384);
        assert_eq!(Workload::Lrb.application_waves(), 500);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.305), "30.5%");
    }

    #[test]
    fn quick_sync_run_is_error_free() {
        let report = Workload::Aqhi.evaluate_policy(0.1, EvalPolicy::Sync, 10);
        assert!(report.waves.iter().all(|w| w.measured_error == 0.0));
    }
}

pub mod exp {
    //! One module per reproduced figure/table of the paper's evaluation.

    pub mod ablations;
    pub mod fig03;
    pub mod fig07;
    pub mod fig08;
    pub mod fig09_12;
    pub mod fig11;
    pub mod forest_inference;
    pub mod motivating;
    pub mod net_throughput;
    pub mod overhead;
    pub mod roc;
    pub mod store_scaling;
    pub mod wal_overhead;
}

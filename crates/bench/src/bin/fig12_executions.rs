//! Regenerates Fig. 12 (executions vs the synchronous model). Shares its
//! runs with Figs. 9 and 10.

fn main() {
    smartflux_bench::exp::fig09_12::run();
}

//! Headline summary: savings, speedups and confidence per bound.

fn main() {
    smartflux_bench::headline();
}

//! Runs the design-choice ablations (DESIGN.md §5).

fn main() {
    smartflux_bench::exp::ablations::run();
}

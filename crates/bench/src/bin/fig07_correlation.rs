//! Regenerates Fig. 7 (input-impact vs error correlation).

fn main() {
    smartflux_bench::exp::fig07::run();
}

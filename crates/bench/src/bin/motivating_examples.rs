//! Quantifies the paper's motivating examples (fire risk, PageRank).

fn main() {
    smartflux_bench::exp::motivating::run();
}

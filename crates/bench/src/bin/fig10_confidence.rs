//! Regenerates Fig. 10 (confidence in respecting error bounds). Shares its
//! runs with Figs. 9 and 12.

fn main() {
    smartflux_bench::exp::fig09_12::run();
}

//! Diagnostic tool: inspects a workload's knowledge base, model quality,
//! per-step execution rates, violation structure, and the oracle ceiling.
//!
//! Useful when tuning a new workload's QoD bounds or metric functions:
//! degenerate label rates, out-of-range impacts and attenuating step chains
//! all show up here before they show up as low confidence.
//!
//! Run with: `cargo run --release -p smartflux-bench --bin diagnose [bound]`
//!
//! Pass `--json` for machine-readable output: one JSON object per workload
//! per line (layout versioned by `schema_version`), carrying the run
//! summary, the model quality, the full telemetry snapshot and — when the
//! run produced them — `fault_tolerance`, `durability` and `store`
//! sections (sections with nothing to report are omitted). With
//! `--journal <dir>` it also writes and reports the wave-decision journal.
//!
//! Two further modes drive the live observability plane:
//!
//! - `diagnose serve [--addr A] [--bound B] [--training N] [--waves N]
//!   [--trace-out F] [--once]` runs a traced LRB session with an
//!   `ObsServer` attached, exposing `/metrics`, `/healthz`, `/waves` and
//!   `/trace` while the run progresses, then keeps serving the final
//!   state (unless `--once`).
//! - `diagnose scrape [--addr A] [--min-wave N] [--timeout-secs S]
//!   [--trace-out F]` is the matching client: it waits for the served
//!   run to reach the application phase, then conformance-checks the
//!   OpenMetrics exposition and the trace/wave endpoints, exiting
//!   non-zero on any violation. CI runs serve + scrape as a pair.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use smartflux::eval::EvalPolicy;
use smartflux::{DurabilityOptions, SmartFluxSession, SyncPolicy};
use smartflux_bench::{diag, pct, Workload};
use smartflux_obs::{http, openmetrics, perfetto, preregister};
use smartflux_obs::{ObsServer, ObsSources, RingJournal, RingTraceSink};
use smartflux_telemetry::{json_string, names, JournalSink, TraceSink};

struct Args {
    bound: f64,
    json: bool,
    journal_dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut out = Args {
        bound: 0.05,
        json: false,
        journal_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => out.json = true,
            "--journal" => {
                out.journal_dir = args.next().map(PathBuf::from);
                assert!(out.journal_dir.is_some(), "--journal needs a directory");
            }
            other => {
                if let Ok(b) = other.parse() {
                    out.bound = b;
                } else {
                    eprintln!(
                        "usage: diagnose [bound] [--json] [--journal <dir>] | \
                         diagnose serve [options] | diagnose scrape [options]"
                    );
                    std::process::exit(2);
                }
            }
        }
    }
    out
}

fn run_json(args: &Args) {
    if let Some(dir) = &args.journal_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "diagnose: cannot create journal directory {}: {e}",
                dir.display()
            );
            std::process::exit(2);
        }
    }
    // Workspace-global, so computed once and spliced into every workload
    // object — each output line stays self-contained for downstream tools.
    let static_analysis = diag::static_analysis_json()
        .map_or_else(String::new, |json| format!(",\"static_analysis\":{json}"));
    for wl in [Workload::Lrb, Workload::Aqhi] {
        let oracle = wl.evaluate_policy(args.bound, EvalPolicy::Oracle, wl.application_waves());

        // Journal the run through a scratch WAL so the JSON carries real
        // durability figures (overhead, checkpoint cadence) per workload.
        let wal_dir = std::env::temp_dir().join(format!(
            "smartflux-diagnose-wal-{}-{}",
            wl.id(),
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let mut config = wl
            .engine_config(args.bound)
            .with_telemetry(true)
            .with_durability(DurabilityOptions::new(&wal_dir).with_sync(SyncPolicy::Never));
        if let Some(dir) = &args.journal_dir {
            config = config.with_journal_path(dir.join(format!("{}-journal.jsonl", wl.id())));
        }
        let report = wl.evaluate_policy(
            args.bound,
            EvalPolicy::SmartFlux(Box::new(config)),
            wl.application_waves(),
        );

        let quality = report
            .engine
            .as_ref()
            .and_then(|e| e.with(|e| e.predictor().quality()));
        let quality_json = quality.map_or_else(
            || "null".to_owned(),
            |q| {
                format!(
                    "{{\"accuracy\":{},\"precision\":{},\"recall\":{}}}",
                    q.accuracy, q.precision, q.recall
                )
            },
        );
        let journal_json = report.telemetry.journal_path().map_or_else(
            || "null".to_owned(),
            |p| json_string(&p.display().to_string()),
        );
        let snapshot = report.telemetry.snapshot();
        println!(
            "{{\"schema_version\":{},\"workload\":{},\"bound\":{},\
             \"oracle\":{{\"executions\":{},\"confidence\":{},\"violations\":{}}},\
             \"smartflux\":{{\"executions\":{},\"confidence\":{},\"violations\":{}}},\
             \"model_quality\":{},\"journal_path\":{}{}{},\"telemetry\":{}}}",
            diag::SCHEMA_VERSION,
            json_string(wl.id()),
            args.bound,
            oracle.normalized_executions(),
            oracle.confidence.confidence(),
            oracle.confidence.violations(),
            report.normalized_executions(),
            report.confidence.confidence(),
            report.confidence.violations(),
            quality_json,
            journal_json,
            diag::optional_sections(&snapshot),
            static_analysis,
            snapshot.to_json(),
        );
        let _ = std::fs::remove_dir_all(&wal_dir);
    }
}

struct ServeArgs {
    addr: String,
    bound: f64,
    training: usize,
    waves: u64,
    trace_out: Option<PathBuf>,
    once: bool,
}

fn parse_serve_args(mut args: impl Iterator<Item = String>) -> ServeArgs {
    let mut out = ServeArgs {
        addr: "127.0.0.1:9464".to_owned(),
        bound: 0.10,
        training: 240,
        waves: 200,
        trace_out: None,
        once: false,
    };
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--addr" => out.addr = value("--addr"),
            "--bound" => out.bound = value("--bound").parse().expect("--bound is a number"),
            "--training" => {
                out.training = value("--training").parse().expect("--training is a count");
            }
            "--waves" => out.waves = value("--waves").parse().expect("--waves is a count"),
            "--trace-out" => out.trace_out = Some(PathBuf::from(value("--trace-out"))),
            "--once" => out.once = true,
            other => {
                eprintln!(
                    "usage: diagnose serve [--addr A] [--bound B] [--training N] \
                     [--waves N] [--trace-out F] [--once] (got `{other}`)"
                );
                std::process::exit(2);
            }
        }
    }
    out
}

/// Runs a traced LRB session with the observability plane attached and
/// serves it over HTTP while (and after) the run progresses.
fn run_serve(args: &ServeArgs) {
    let store = smartflux_datastore::DataStore::new();
    let workflow = Workload::Lrb.factory(args.bound).build(&store);
    let wal_dir = std::env::temp_dir().join(format!("smartflux-serve-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let config = Workload::Lrb
        .engine_config(args.bound)
        .with_telemetry(true)
        .with_training_waves(args.training)
        .with_durability(DurabilityOptions::new(&wal_dir).with_sync(SyncPolicy::Never));
    let mut session = SmartFluxSession::new(workflow, store, config).expect("LRB declares QoD");

    let telemetry = session.telemetry().clone();
    preregister(&telemetry);
    let trace = Arc::new(RingTraceSink::with_capacity(65_536));
    telemetry.set_trace_sink(Some(Arc::clone(&trace) as Arc<dyn TraceSink>));
    let waves_ring = Arc::new(RingJournal::with_capacity(1_024));
    telemetry.add_journal_sink(Arc::clone(&waves_ring) as Arc<dyn JournalSink>);

    let sources = ObsSources {
        telemetry,
        trace: Some(Arc::clone(&trace)),
        waves: Some(waves_ring),
    };
    let server = ObsServer::start(&args.addr, sources, 2).expect("bind observability address");
    println!("diagnose serve: listening on http://{}", server.addr());

    let ran = session.run_training().expect("training run succeeds");
    println!("diagnose serve: training complete after {ran} waves");
    session
        .run_waves(args.waves)
        .expect("application run succeeds");
    println!(
        "diagnose serve: {} application waves done ({} spans recorded)",
        args.waves,
        trace.recorded()
    );

    if let Some(path) = &args.trace_out {
        std::fs::write(path, perfetto::render(&trace.events())).expect("write trace file");
        println!("diagnose serve: wrote Perfetto trace to {}", path.display());
    }

    if args.once {
        server.shutdown();
        let _ = std::fs::remove_dir_all(&wal_dir);
        return;
    }
    // Keep serving the final state until killed (CI scrapes us here).
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

struct ScrapeArgs {
    addr: String,
    min_wave: u64,
    timeout_secs: u64,
    trace_out: Option<PathBuf>,
}

fn parse_scrape_args(mut args: impl Iterator<Item = String>) -> ScrapeArgs {
    let mut out = ScrapeArgs {
        addr: "127.0.0.1:9464".to_owned(),
        min_wave: 1,
        timeout_secs: 600,
        trace_out: None,
    };
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--addr" => out.addr = value("--addr"),
            "--min-wave" => {
                out.min_wave = value("--min-wave").parse().expect("--min-wave is a count");
            }
            "--timeout-secs" => {
                out.timeout_secs = value("--timeout-secs")
                    .parse()
                    .expect("--timeout-secs is a count");
            }
            "--trace-out" => out.trace_out = Some(PathBuf::from(value("--trace-out"))),
            other => {
                eprintln!(
                    "usage: diagnose scrape [--addr A] [--min-wave N] \
                     [--timeout-secs S] [--trace-out F] (got `{other}`)"
                );
                std::process::exit(2);
            }
        }
    }
    out
}

/// Extracts an unsigned integer field from a flat JSON object, crudely:
/// `"name":123`. Good enough for `/healthz`, whose schema we own.
fn json_u64_field(body: &str, field: &str) -> Option<u64> {
    let key = format!("\"{field}\":");
    let rest = &body[body.find(&key)? + key.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Conformance-scrapes a served run; returns an error description on the
/// first violation.
fn run_scrape(args: &ScrapeArgs) -> Result<(), String> {
    let io_timeout = Duration::from_secs(5);
    let deadline = Instant::now() + Duration::from_secs(args.timeout_secs);

    // 1. Wait for the served run to reach the application phase.
    loop {
        if let Ok((200, body)) = http::get(&args.addr, "/healthz", io_timeout) {
            let wave = json_u64_field(&body, "last_wave").unwrap_or(0);
            if body.contains("\"phase\":\"application\"") && wave >= args.min_wave {
                println!("scrape: healthy at wave {wave}: {body}");
                break;
            }
        }
        if Instant::now() > deadline {
            return Err(format!(
                "timed out after {}s waiting for application phase at wave {}",
                args.timeout_secs, args.min_wave
            ));
        }
        std::thread::sleep(Duration::from_millis(250));
    }

    // 2. The OpenMetrics exposition must parse and carry the key series.
    let (status, text) =
        http::get(&args.addr, "/metrics", io_timeout).map_err(|e| format!("GET /metrics: {e}"))?;
    if status != 200 {
        return Err(format!("GET /metrics returned {status}"));
    }
    let exposition = openmetrics::parse(&text).map_err(|e| format!("/metrics conformance: {e}"))?;
    for counter in [
        names::STEP_RETRIES,
        names::STEPS_EXECUTED,
        names::WAL_RECORDS,
        names::WAL_BYTES,
        names::CHECKPOINTS,
        names::STORE_WRITES,
    ] {
        if exposition.counter_total(counter).is_none() {
            return Err(format!("/metrics is missing counter `{counter}`"));
        }
    }
    if exposition
        .gauge(names::STORE_SHARD_WRITE_CONTENTION)
        .is_none()
    {
        return Err("/metrics is missing gauge `store.shard_write_contention`".into());
    }
    for histogram in [names::WAVE_LATENCY, names::STEP_TOTAL_LATENCY] {
        for q in ["0.5", "0.95", "0.99"] {
            if exposition.quantile(histogram, q).is_none() {
                return Err(format!("/metrics is missing p{q} of `{histogram}`"));
            }
        }
    }
    let executed = exposition
        .counter_total(names::STEPS_EXECUTED)
        .unwrap_or(0.0);
    if executed <= 0.0 {
        return Err("served run executed no steps".into());
    }
    println!(
        "scrape: /metrics ok ({} families, {} steps executed, p95 wave {}s)",
        exposition.families.len(),
        executed,
        exposition
            .quantile(names::WAVE_LATENCY, "0.95")
            .unwrap_or(0.0),
    );

    // 3. /waves serves the journal tail as a JSON array of decisions.
    let (status, body) =
        http::get(&args.addr, "/waves?n=5", io_timeout).map_err(|e| format!("GET /waves: {e}"))?;
    if status != 200 || !body.trim_start().starts_with('[') || !body.contains("\"wave\":") {
        return Err(format!("GET /waves returned {status} with unexpected body"));
    }
    println!("scrape: /waves ok ({} bytes)", body.len());

    // 4. /trace serves loadable Chrome trace JSON with wave roots.
    let (status, body) = http::get(&args.addr, "/trace?waves=8", io_timeout)
        .map_err(|e| format!("GET /trace: {e}"))?;
    if status != 200 || !body.contains("\"traceEvents\"") || !body.contains("wms.wave") {
        return Err(format!("GET /trace returned {status} without wave spans"));
    }
    if let Some(path) = &args.trace_out {
        std::fs::write(path, &body).map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("scrape: wrote trace artifact to {}", path.display());
    }
    println!("scrape: /trace ok ({} bytes)", body.len());
    Ok(())
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("serve") => {
            run_serve(&parse_serve_args(std::env::args().skip(2)));
            return;
        }
        Some("scrape") => {
            if let Err(e) = run_scrape(&parse_scrape_args(std::env::args().skip(2))) {
                eprintln!("scrape: FAILED: {e}");
                std::process::exit(1);
            }
            println!("scrape: all observability checks passed");
            return;
        }
        _ => {}
    }

    let args = parse_args();
    if args.json {
        run_json(&args);
        return;
    }
    let bound = args.bound;

    for wl in [Workload::Lrb, Workload::Aqhi] {
        println!("\n════ {} @ bound {} ════", wl.id(), pct(bound));

        // Oracle ceiling: what a perfect predictor would achieve.
        let oracle = wl.evaluate_policy(bound, EvalPolicy::Oracle, wl.application_waves());
        println!(
            "oracle ceiling: {} executions, {} confidence ({} violations)",
            pct(oracle.normalized_executions()),
            pct(oracle.confidence.confidence()),
            oracle.confidence.violations()
        );

        // SmartFlux run with full diagnostics.
        let report = wl.evaluate_policy(
            bound,
            EvalPolicy::SmartFlux(Box::new(wl.engine_config(bound))),
            wl.application_waves(),
        );
        println!(
            "smartflux:      {} executions, {} confidence ({} violations)",
            pct(report.normalized_executions()),
            pct(report.confidence.confidence()),
            report.confidence.violations()
        );

        let engine = report.engine.as_ref().expect("smartflux run has an engine");
        engine.with(|e| {
            let kb = e.knowledge_base();
            println!("\nknowledge base ({} rows):", kb.len());
            println!(
                "  {:<20} {:>10} {:>24}",
                "step", "label rate", "impact range"
            );
            let app: Vec<_> = e.diagnostics().iter().filter(|d| !d.training).collect();
            for (j, name) in e.qod_step_names().iter().enumerate() {
                let impacts: Vec<f64> = kb.rows().iter().map(|r| r.impacts[j]).collect();
                let lo = impacts.iter().copied().fold(f64::MAX, f64::min);
                let hi = impacts.iter().copied().fold(f64::MIN, f64::max);
                let app_rate =
                    app.iter().filter(|d| d.decisions[j]).count() as f64 / app.len().max(1) as f64;
                println!(
                    "  {:<20} {:>10.2} {:>10.2e}..{:>9.2e}  (app rate {:.2})",
                    name,
                    kb.positive_rate(j),
                    lo,
                    hi,
                    app_rate
                );
            }
            if let Some(q) = e.predictor().quality() {
                println!(
                    "\nmodel quality (10-fold CV): accuracy {:.3}, precision {:.3}, recall {:.3}",
                    q.accuracy, q.precision, q.recall
                );
            }
        });

        // Violation structure by hour of the workload's cycle.
        let cycle = if wl == Workload::Lrb { 240 } else { 24 };
        let buckets = 24;
        let mut by_bucket = vec![0usize; buckets];
        for w in &report.waves {
            if !w.compliant {
                by_bucket[((w.wave % cycle) * buckets as u64 / cycle) as usize] += 1;
            }
        }
        println!("violations across the {cycle}-wave cycle: {by_bucket:?}");
    }
}

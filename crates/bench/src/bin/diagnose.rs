//! Diagnostic tool: inspects a workload's knowledge base, model quality,
//! per-step execution rates, violation structure, and the oracle ceiling.
//!
//! Useful when tuning a new workload's QoD bounds or metric functions:
//! degenerate label rates, out-of-range impacts and attenuating step chains
//! all show up here before they show up as low confidence.
//!
//! Run with: `cargo run --release -p smartflux-bench --bin diagnose [bound]`
//!
//! Pass `--json` for machine-readable output: one JSON object per workload
//! per line, carrying the run summary, the model quality, a `durability`
//! block (WAL bytes/records, checkpoints and recoveries observed while the
//! run journals through a write-ahead log in a scratch directory), a
//! `store` block (read/write counts, shard count and contention, quiesce
//! count), the full telemetry snapshot (counters + latency histograms) and
//! — with `--journal <dir>` — the path of the wave-decision journal
//! written for the run.

use std::path::PathBuf;

use smartflux::eval::EvalPolicy;
use smartflux::{DurabilityOptions, SyncPolicy};
use smartflux_bench::{pct, Workload};
use smartflux_telemetry::{json_string, names};

struct Args {
    bound: f64,
    json: bool,
    journal_dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut out = Args {
        bound: 0.05,
        json: false,
        journal_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => out.json = true,
            "--journal" => {
                out.journal_dir = args.next().map(PathBuf::from);
                assert!(out.journal_dir.is_some(), "--journal needs a directory");
            }
            other => {
                if let Ok(b) = other.parse() {
                    out.bound = b;
                } else {
                    eprintln!("usage: diagnose [bound] [--json] [--journal <dir>]");
                    std::process::exit(2);
                }
            }
        }
    }
    out
}

fn run_json(args: &Args) {
    if let Some(dir) = &args.journal_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "diagnose: cannot create journal directory {}: {e}",
                dir.display()
            );
            std::process::exit(2);
        }
    }
    for wl in [Workload::Lrb, Workload::Aqhi] {
        let oracle = wl.evaluate_policy(args.bound, EvalPolicy::Oracle, wl.application_waves());

        // Journal the run through a scratch WAL so the JSON carries real
        // durability figures (overhead, checkpoint cadence) per workload.
        let wal_dir = std::env::temp_dir().join(format!(
            "smartflux-diagnose-wal-{}-{}",
            wl.id(),
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let mut config = wl
            .engine_config(args.bound)
            .with_telemetry(true)
            .with_durability(DurabilityOptions::new(&wal_dir).with_sync(SyncPolicy::Never));
        if let Some(dir) = &args.journal_dir {
            config = config.with_journal_path(dir.join(format!("{}-journal.jsonl", wl.id())));
        }
        let report = wl.evaluate_policy(
            args.bound,
            EvalPolicy::SmartFlux(Box::new(config)),
            wl.application_waves(),
        );

        let quality = report
            .engine
            .as_ref()
            .and_then(|e| e.with(|e| e.predictor().quality()));
        let quality_json = quality.map_or_else(
            || "null".to_owned(),
            |q| {
                format!(
                    "{{\"accuracy\":{},\"precision\":{},\"recall\":{}}}",
                    q.accuracy, q.precision, q.recall
                )
            },
        );
        let journal_json = report.telemetry.journal_path().map_or_else(
            || "null".to_owned(),
            |p| json_string(&p.display().to_string()),
        );
        let snapshot = report.telemetry.snapshot();
        let fault_json = format!(
            "{{\"waves_aborted\":{},\"step_retries\":{},\"steps_failed\":{},\"sdf_fallbacks\":{}}}",
            snapshot.counter(names::WAVES_ABORTED),
            snapshot.counter(names::STEP_RETRIES),
            snapshot.counter(names::STEPS_FAILED),
            snapshot.counter(names::SDF_FALLBACKS),
        );
        let durability_json = format!(
            "{{\"wal_bytes\":{},\"wal_records\":{},\"checkpoints\":{},\"recoveries\":{}}}",
            snapshot.counter(names::WAL_BYTES),
            snapshot.counter(names::WAL_RECORDS),
            snapshot.counter(names::CHECKPOINTS),
            snapshot.counter(names::RECOVERIES),
        );
        let store_json = format!(
            "{{\"reads\":{},\"writes\":{},\"shards\":{},\"shard_read_contention\":{},\"shard_write_contention\":{},\"quiesces\":{}}}",
            snapshot.counter(names::STORE_READS),
            snapshot.counter(names::STORE_WRITES),
            snapshot.gauge(names::STORE_SHARDS),
            snapshot.gauge(names::STORE_SHARD_READ_CONTENTION),
            snapshot.gauge(names::STORE_SHARD_WRITE_CONTENTION),
            snapshot.gauge(names::STORE_QUIESCES),
        );
        println!(
            "{{\"workload\":{},\"bound\":{},\"oracle\":{{\"executions\":{},\"confidence\":{},\"violations\":{}}},\
             \"smartflux\":{{\"executions\":{},\"confidence\":{},\"violations\":{}}},\
             \"model_quality\":{},\"journal_path\":{},\"fault_tolerance\":{},\"durability\":{},\"store\":{},\"telemetry\":{}}}",
            json_string(wl.id()),
            args.bound,
            oracle.normalized_executions(),
            oracle.confidence.confidence(),
            oracle.confidence.violations(),
            report.normalized_executions(),
            report.confidence.confidence(),
            report.confidence.violations(),
            quality_json,
            journal_json,
            fault_json,
            durability_json,
            store_json,
            snapshot.to_json(),
        );
        let _ = std::fs::remove_dir_all(&wal_dir);
    }
}

fn main() {
    let args = parse_args();
    if args.json {
        run_json(&args);
        return;
    }
    let bound = args.bound;

    for wl in [Workload::Lrb, Workload::Aqhi] {
        println!("\n════ {} @ bound {} ════", wl.id(), pct(bound));

        // Oracle ceiling: what a perfect predictor would achieve.
        let oracle = wl.evaluate_policy(bound, EvalPolicy::Oracle, wl.application_waves());
        println!(
            "oracle ceiling: {} executions, {} confidence ({} violations)",
            pct(oracle.normalized_executions()),
            pct(oracle.confidence.confidence()),
            oracle.confidence.violations()
        );

        // SmartFlux run with full diagnostics.
        let report = wl.evaluate_policy(
            bound,
            EvalPolicy::SmartFlux(Box::new(wl.engine_config(bound))),
            wl.application_waves(),
        );
        println!(
            "smartflux:      {} executions, {} confidence ({} violations)",
            pct(report.normalized_executions()),
            pct(report.confidence.confidence()),
            report.confidence.violations()
        );

        let engine = report.engine.as_ref().expect("smartflux run has an engine");
        engine.with(|e| {
            let kb = e.knowledge_base();
            println!("\nknowledge base ({} rows):", kb.len());
            println!(
                "  {:<20} {:>10} {:>24}",
                "step", "label rate", "impact range"
            );
            let app: Vec<_> = e.diagnostics().iter().filter(|d| !d.training).collect();
            for (j, name) in e.qod_step_names().iter().enumerate() {
                let impacts: Vec<f64> = kb.rows().iter().map(|r| r.impacts[j]).collect();
                let lo = impacts.iter().copied().fold(f64::MAX, f64::min);
                let hi = impacts.iter().copied().fold(f64::MIN, f64::max);
                let app_rate =
                    app.iter().filter(|d| d.decisions[j]).count() as f64 / app.len().max(1) as f64;
                println!(
                    "  {:<20} {:>10.2} {:>10.2e}..{:>9.2e}  (app rate {:.2})",
                    name,
                    kb.positive_rate(j),
                    lo,
                    hi,
                    app_rate
                );
            }
            if let Some(q) = e.predictor().quality() {
                println!(
                    "\nmodel quality (10-fold CV): accuracy {:.3}, precision {:.3}, recall {:.3}",
                    q.accuracy, q.precision, q.recall
                );
            }
        });

        // Violation structure by hour of the workload's cycle.
        let cycle = if wl == Workload::Lrb { 240 } else { 24 };
        let buckets = 24;
        let mut by_bucket = vec![0usize; buckets];
        for w in &report.waves {
            if !w.compliant {
                by_bucket[((w.wave % cycle) * buckets as u64 / cycle) as usize] += 1;
            }
        }
        println!("violations across the {cycle}-wave cycle: {by_bucket:?}");
    }
}

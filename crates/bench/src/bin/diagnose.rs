//! Diagnostic tool: inspects a workload's knowledge base, model quality,
//! per-step execution rates, violation structure, and the oracle ceiling.
//!
//! Useful when tuning a new workload's QoD bounds or metric functions:
//! degenerate label rates, out-of-range impacts and attenuating step chains
//! all show up here before they show up as low confidence.
//!
//! Run with: `cargo run --release -p smartflux-bench --bin diagnose [bound]`

use smartflux::eval::EvalPolicy;
use smartflux_bench::{pct, Workload};

fn main() {
    let bound: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);

    for wl in [Workload::Lrb, Workload::Aqhi] {
        println!("\n════ {} @ bound {} ════", wl.id(), pct(bound));

        // Oracle ceiling: what a perfect predictor would achieve.
        let oracle = wl.evaluate_policy(bound, EvalPolicy::Oracle, wl.application_waves());
        println!(
            "oracle ceiling: {} executions, {} confidence ({} violations)",
            pct(oracle.normalized_executions()),
            pct(oracle.confidence.confidence()),
            oracle.confidence.violations()
        );

        // SmartFlux run with full diagnostics.
        let report = wl.evaluate_policy(
            bound,
            EvalPolicy::SmartFlux(Box::new(wl.engine_config(bound))),
            wl.application_waves(),
        );
        println!(
            "smartflux:      {} executions, {} confidence ({} violations)",
            pct(report.normalized_executions()),
            pct(report.confidence.confidence()),
            report.confidence.violations()
        );

        let engine = report.engine.as_ref().expect("smartflux run has an engine");
        engine.with(|e| {
            let kb = e.knowledge_base();
            println!("\nknowledge base ({} rows):", kb.len());
            println!(
                "  {:<20} {:>10} {:>24}",
                "step", "label rate", "impact range"
            );
            let app: Vec<_> = e.diagnostics().iter().filter(|d| !d.training).collect();
            for (j, name) in e.qod_step_names().iter().enumerate() {
                let impacts: Vec<f64> = kb.rows().iter().map(|r| r.impacts[j]).collect();
                let lo = impacts.iter().copied().fold(f64::MAX, f64::min);
                let hi = impacts.iter().copied().fold(f64::MIN, f64::max);
                let app_rate =
                    app.iter().filter(|d| d.decisions[j]).count() as f64 / app.len().max(1) as f64;
                println!(
                    "  {:<20} {:>10.2} {:>10.2e}..{:>9.2e}  (app rate {:.2})",
                    name,
                    kb.positive_rate(j),
                    lo,
                    hi,
                    app_rate
                );
            }
            if let Some(q) = e.predictor().quality() {
                println!(
                    "\nmodel quality (10-fold CV): accuracy {:.3}, precision {:.3}, recall {:.3}",
                    q.accuracy, q.precision, q.recall
                );
            }
        });

        // Violation structure by hour of the workload's cycle.
        let cycle = if wl == Workload::Lrb { 240 } else { 24 };
        let buckets = 24;
        let mut by_bucket = vec![0usize; buckets];
        for w in &report.waves {
            if !w.compliant {
                by_bucket[((w.wave % cycle) * buckets as u64 / cycle) as usize] += 1;
            }
        }
        println!("violations across the {cycle}-wave cycle: {by_bucket:?}");
    }
}

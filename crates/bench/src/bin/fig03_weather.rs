//! Regenerates Fig. 3 (diurnal weather curves).

fn main() {
    smartflux_bench::exp::fig03::run();
}

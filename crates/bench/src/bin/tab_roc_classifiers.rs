//! Regenerates the §3.2 classifier comparison (ROC areas).

fn main() {
    smartflux_bench::exp::roc::run();
}

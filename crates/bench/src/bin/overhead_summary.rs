//! Regenerates the §5.3 overhead measurements.

fn main() {
    smartflux_bench::exp::overhead::run();
}

//! Store-scaling micro-bench: sharded vs single-lock store throughput.

fn main() {
    smartflux_bench::exp::store_scaling::run();
}

//! Seed robustness: re-runs the headline measurement under several feed and
//! engine seeds, reporting the spread. Demonstrates that the reproduction's
//! savings/confidence are properties of the system, not of one lucky seed.
//!
//! Run with: `cargo run --release -p smartflux-bench --bin seed_robustness`

use smartflux::eval::{evaluate, EvalPolicy};
use smartflux::MetricKind;
use smartflux_bench::{heading, pct, write_csv, Workload};
use smartflux_workloads::{aqhi::AqhiFactory, lrb::LrbFactory};

fn main() {
    heading("Seed robustness — headline at the 5% bound across seeds");
    let bound = 0.05;
    let seeds: [u64; 3] = [17, 101, 424_242];
    let mut csv = Vec::new();

    for wl in [Workload::Lrb, Workload::Aqhi] {
        let mut saved = Vec::new();
        let mut conf = Vec::new();
        for &seed in &seeds {
            let mut config = wl.engine_config(bound);
            config.seed = seed;
            // Vary the feed seed as well as the model seed.
            let report = match wl {
                Workload::Lrb => {
                    let mut f = LrbFactory::with_bound(bound);
                    f.config.seed = seed ^ 0x5EED;
                    evaluate(
                        &f,
                        EvalPolicy::SmartFlux(Box::new(config)),
                        wl.application_waves(),
                        MetricKind::MeanRelative,
                    )
                }
                Workload::Aqhi => {
                    let mut f = AqhiFactory::with_bound(bound);
                    f.config.seed = seed ^ 0x5EED;
                    evaluate(
                        &f,
                        EvalPolicy::SmartFlux(Box::new(config)),
                        wl.application_waves(),
                        MetricKind::MeanRelative,
                    )
                }
            }
            .expect("evaluation succeeds");
            saved.push(1.0 - report.normalized_executions());
            conf.push(report.confidence.confidence());
            csv.push(format!(
                "{},{seed},{:.4},{:.4}",
                wl.id(),
                1.0 - report.normalized_executions(),
                report.confidence.confidence()
            ));
        }
        let span = |v: &[f64]| {
            let lo = v.iter().copied().fold(f64::MAX, f64::min);
            let hi = v.iter().copied().fold(f64::MIN, f64::max);
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            (mean, lo, hi)
        };
        let (sm, sl, sh) = span(&saved);
        let (cm, cl, ch) = span(&conf);
        println!(
            "{:<5} saved {} [{}–{}], confidence {} [{}–{}] over {} seeds",
            wl.id(),
            pct(sm),
            pct(sl),
            pct(sh),
            pct(cm),
            pct(cl),
            pct(ch),
            seeds.len()
        );
    }
    write_csv(
        "seed_robustness.csv",
        "workload,seed,saved,confidence",
        &csv,
    );
}

//! WAL-overhead micro-bench: durability cost per wave on LRB.

fn main() {
    smartflux_bench::exp::wal_overhead::run();
}

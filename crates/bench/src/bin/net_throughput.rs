//! Network-plane throughput micro-bench: SFNP waves/sec and submit latency.

fn main() {
    smartflux_bench::exp::net_throughput::run();
}

//! Regenerates Fig. 9 (measured vs predicted errors) together with
//! Figs. 10 and 12, which share the same runs.

fn main() {
    smartflux_bench::exp::fig09_12::run();
}

//! Runs every experiment of the paper's evaluation in sequence, writing all
//! CSVs under `results/`.

use std::time::Instant;

fn main() {
    let start = Instant::now();
    smartflux_bench::exp::fig03::run();
    smartflux_bench::exp::fig07::run();
    smartflux_bench::exp::fig08::run();
    smartflux_bench::exp::fig09_12::run();
    smartflux_bench::exp::fig11::run();
    smartflux_bench::exp::motivating::run();
    smartflux_bench::exp::roc::run();
    smartflux_bench::exp::overhead::run();
    // Headline summary last, so its numbers sit at the bottom of the log.
    smartflux_bench::headline();
    println!(
        "\nall experiments completed in {:.1} s",
        start.elapsed().as_secs_f64()
    );
}

//! Regenerates Fig. 8 (accuracy/precision/recall vs training size).

fn main() {
    smartflux_bench::exp::fig08::run();
}

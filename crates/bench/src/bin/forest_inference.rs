//! Forest-inference micro-bench: scalar vs flat arena vs batched paths.

fn main() {
    smartflux_bench::exp::forest_inference::run();
}

//! Regenerates Fig. 11 (SmartFlux vs naive triggering approaches).

fn main() {
    smartflux_bench::exp::fig11::run();
}

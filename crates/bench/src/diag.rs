//! Machine-readable `diagnose --json` sections.
//!
//! The JSON schema is consumed by dashboards and the CI scrape job, so it
//! is versioned: [`SCHEMA_VERSION`] bumps whenever a field changes
//! meaning or moves. Sections that would carry no information for a run
//! are omitted entirely instead of being emitted as all-zero objects —
//! a run without fault injection has no `fault_tolerance` key, a run
//! without a WAL has no `durability` key, and a run that never published
//! shard statistics has no `store` key.

use smartflux_telemetry::{names, MetricsSnapshot};

/// Version of the `diagnose --json` object layout.
///
/// History: 1 = original flat layout with always-present sections;
/// 2 = added `schema_version`, empty sections omitted.
pub const SCHEMA_VERSION: u64 = 2;

/// The `fault_tolerance` section, or `None` when the run saw no aborts,
/// retries, failures, or SDF fallbacks (nothing to report).
#[must_use]
pub fn fault_tolerance_json(snapshot: &MetricsSnapshot) -> Option<String> {
    let aborted = snapshot.counter(names::WAVES_ABORTED);
    let retries = snapshot.counter(names::STEP_RETRIES);
    let failed = snapshot.counter(names::STEPS_FAILED);
    let fallbacks = snapshot.counter(names::SDF_FALLBACKS);
    if aborted == 0 && retries == 0 && failed == 0 && fallbacks == 0 {
        return None;
    }
    Some(format!(
        "{{\"waves_aborted\":{aborted},\"step_retries\":{retries},\
         \"steps_failed\":{failed},\"sdf_fallbacks\":{fallbacks}}}"
    ))
}

/// The `durability` section, or `None` when the run wrote no WAL at all
/// (durability not configured).
#[must_use]
pub fn durability_json(snapshot: &MetricsSnapshot) -> Option<String> {
    let wal_bytes = snapshot.counter(names::WAL_BYTES);
    let wal_records = snapshot.counter(names::WAL_RECORDS);
    let checkpoints = snapshot.counter(names::CHECKPOINTS);
    let recoveries = snapshot.counter(names::RECOVERIES);
    if wal_bytes == 0 && wal_records == 0 && checkpoints == 0 && recoveries == 0 {
        return None;
    }
    Some(format!(
        "{{\"wal_bytes\":{wal_bytes},\"wal_records\":{wal_records},\
         \"checkpoints\":{checkpoints},\"recoveries\":{recoveries}}}"
    ))
}

/// The `store` section, or `None` when shard statistics were never
/// published (the `store.shards` gauge is absent, not merely zero).
#[must_use]
pub fn store_json(snapshot: &MetricsSnapshot) -> Option<String> {
    if !snapshot.gauges.contains_key(names::STORE_SHARDS) {
        return None;
    }
    Some(format!(
        "{{\"reads\":{},\"writes\":{},\"shards\":{},\"shard_read_contention\":{},\
         \"shard_write_contention\":{},\"quiesces\":{}}}",
        snapshot.counter(names::STORE_READS),
        snapshot.counter(names::STORE_WRITES),
        snapshot.gauge(names::STORE_SHARDS),
        snapshot.gauge(names::STORE_SHARD_READ_CONTENTION),
        snapshot.gauge(names::STORE_SHARD_WRITE_CONTENTION),
        snapshot.gauge(names::STORE_QUIESCES),
    ))
}

/// Renders the optional sections as `,"name":{...}` fragments ready to
/// splice into the per-workload JSON object. Empty sections contribute
/// nothing.
#[must_use]
pub fn optional_sections(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (key, section) in [
        ("fault_tolerance", fault_tolerance_json(snapshot)),
        ("durability", durability_json(snapshot)),
        ("store", store_json(snapshot)),
    ] {
        if let Some(json) = section {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            out.push_str(&json);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartflux_telemetry::Telemetry;

    #[test]
    fn clean_run_omits_every_optional_section() {
        let t = Telemetry::enabled();
        t.counter(names::STEPS_EXECUTED).add(10);
        let snapshot = t.snapshot();
        assert_eq!(fault_tolerance_json(&snapshot), None);
        assert_eq!(durability_json(&snapshot), None);
        assert_eq!(store_json(&snapshot), None);
        assert_eq!(optional_sections(&snapshot), "");
    }

    #[test]
    fn active_sections_appear_with_their_counters() {
        let t = Telemetry::enabled();
        t.counter(names::STEP_RETRIES).add(3);
        t.counter(names::WAL_RECORDS).add(7);
        t.gauge(names::STORE_SHARDS).set(16);
        let snapshot = t.snapshot();

        let fault = fault_tolerance_json(&snapshot).expect("retries present");
        assert!(fault.contains("\"step_retries\":3"));
        let durability = durability_json(&snapshot).expect("wal present");
        assert!(durability.contains("\"wal_records\":7"));
        let store = store_json(&snapshot).expect("shards gauge present");
        assert!(store.contains("\"shards\":16"));

        let sections = optional_sections(&snapshot);
        assert!(sections.starts_with(",\"fault_tolerance\":{"));
        assert!(sections.contains(",\"durability\":{"));
        assert!(sections.contains(",\"store\":{"));
    }

    #[test]
    fn zero_shards_gauge_still_counts_as_published() {
        // Presence, not value, decides: a published all-zero stats block
        // (e.g. a store that saw no contention) must stay visible.
        let t = Telemetry::enabled();
        t.gauge(names::STORE_SHARDS).set(0);
        assert!(store_json(&t.snapshot()).is_some());
    }
}

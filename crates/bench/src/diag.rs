//! Machine-readable `diagnose --json` sections.
//!
//! The JSON schema is consumed by dashboards and the CI scrape job, so it
//! is versioned: [`SCHEMA_VERSION`] bumps whenever a field changes
//! meaning or moves. Sections that would carry no information for a run
//! are omitted entirely instead of being emitted as all-zero objects —
//! a run without fault injection has no `fault_tolerance` key, a run
//! without a WAL has no `durability` key, and a run that never published
//! shard statistics has no `store` key.

use smartflux_telemetry::{names, MetricsSnapshot};

/// Version of the `diagnose --json` object layout.
///
/// History: 1 = original flat layout with always-present sections;
/// 2 = added `schema_version`, empty sections omitted;
/// 3 = added the `static_analysis` section (tidy findings + lock-order
/// graph summary), present whenever the workspace sources are reachable.
pub const SCHEMA_VERSION: u64 = 3;

/// The `fault_tolerance` section, or `None` when the run saw no aborts,
/// retries, failures, or SDF fallbacks (nothing to report).
#[must_use]
pub fn fault_tolerance_json(snapshot: &MetricsSnapshot) -> Option<String> {
    let aborted = snapshot.counter(names::WAVES_ABORTED);
    let retries = snapshot.counter(names::STEP_RETRIES);
    let failed = snapshot.counter(names::STEPS_FAILED);
    let fallbacks = snapshot.counter(names::SDF_FALLBACKS);
    if aborted == 0 && retries == 0 && failed == 0 && fallbacks == 0 {
        return None;
    }
    Some(format!(
        "{{\"waves_aborted\":{aborted},\"step_retries\":{retries},\
         \"steps_failed\":{failed},\"sdf_fallbacks\":{fallbacks}}}"
    ))
}

/// The `durability` section, or `None` when the run wrote no WAL at all
/// (durability not configured).
#[must_use]
pub fn durability_json(snapshot: &MetricsSnapshot) -> Option<String> {
    let wal_bytes = snapshot.counter(names::WAL_BYTES);
    let wal_records = snapshot.counter(names::WAL_RECORDS);
    let checkpoints = snapshot.counter(names::CHECKPOINTS);
    let recoveries = snapshot.counter(names::RECOVERIES);
    if wal_bytes == 0 && wal_records == 0 && checkpoints == 0 && recoveries == 0 {
        return None;
    }
    Some(format!(
        "{{\"wal_bytes\":{wal_bytes},\"wal_records\":{wal_records},\
         \"checkpoints\":{checkpoints},\"recoveries\":{recoveries}}}"
    ))
}

/// The `store` section, or `None` when shard statistics were never
/// published (the `store.shards` gauge is absent, not merely zero).
#[must_use]
pub fn store_json(snapshot: &MetricsSnapshot) -> Option<String> {
    if !snapshot.gauges.contains_key(names::STORE_SHARDS) {
        return None;
    }
    Some(format!(
        "{{\"reads\":{},\"writes\":{},\"shards\":{},\"shard_read_contention\":{},\
         \"shard_write_contention\":{},\"quiesces\":{}}}",
        snapshot.counter(names::STORE_READS),
        snapshot.counter(names::STORE_WRITES),
        snapshot.gauge(names::STORE_SHARDS),
        snapshot.gauge(names::STORE_SHARD_READ_CONTENTION),
        snapshot.gauge(names::STORE_SHARD_WRITE_CONTENTION),
        snapshot.gauge(names::STORE_QUIESCES),
    ))
}

/// The `static_analysis` section: a fresh tidy run over the workspace
/// sources, summarized (finding counts per check, lock-order cycle and
/// edge totals). `None` when no workspace root is reachable from the
/// current directory — e.g. an installed binary run outside the repo —
/// matching the omit-empty doctrine above.
///
/// This re-analyzes the sources on every call (~half a second for the
/// full workspace); `diagnose` is a diagnostic tool, staleness would be
/// worse than the latency.
#[must_use]
pub fn static_analysis_json() -> Option<String> {
    use smartflux_tidy::checks::ALL_CHECKS;
    use smartflux_tidy::runner;

    let cwd = std::env::current_dir().ok()?;
    let root = runner::find_workspace_root(&cwd).ok()?;
    let units = runner::load_workspace(&root).ok()?;
    let report = runner::run_checks_full(&units, &ALL_CHECKS);

    let mut by_check: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for d in &report.diagnostics {
        *by_check.entry(d.check.as_str()).or_insert(0) += 1;
    }
    let by_check = by_check
        .iter()
        .map(|(check, n)| format!("\"{check}\":{n}"))
        .collect::<Vec<_>>()
        .join(",");
    let cycles: usize = report.lock_graphs.iter().map(|g| g.cycles).sum();
    let edges: usize = report.lock_graphs.iter().map(|g| g.edges.len()).sum();
    Some(format!(
        "{{\"checks\":{},\"files\":{},\"crates\":{},\"finding_count\":{},\
         \"findings_by_check\":{{{by_check}}},\
         \"lock_order\":{{\"cycles\":{cycles},\"edges\":{edges}}}}}",
        ALL_CHECKS.len(),
        units.iter().map(|u| u.files.len()).sum::<usize>(),
        units.len(),
        report.diagnostics.len(),
    ))
}

/// Renders the optional sections as `,"name":{...}` fragments ready to
/// splice into the per-workload JSON object. Empty sections contribute
/// nothing.
#[must_use]
pub fn optional_sections(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (key, section) in [
        ("fault_tolerance", fault_tolerance_json(snapshot)),
        ("durability", durability_json(snapshot)),
        ("store", store_json(snapshot)),
    ] {
        if let Some(json) = section {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            out.push_str(&json);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartflux_telemetry::Telemetry;

    #[test]
    fn clean_run_omits_every_optional_section() {
        let t = Telemetry::enabled();
        t.counter(names::STEPS_EXECUTED).add(10);
        let snapshot = t.snapshot();
        assert_eq!(fault_tolerance_json(&snapshot), None);
        assert_eq!(durability_json(&snapshot), None);
        assert_eq!(store_json(&snapshot), None);
        assert_eq!(optional_sections(&snapshot), "");
    }

    #[test]
    fn active_sections_appear_with_their_counters() {
        let t = Telemetry::enabled();
        t.counter(names::STEP_RETRIES).add(3);
        t.counter(names::WAL_RECORDS).add(7);
        t.gauge(names::STORE_SHARDS).set(16);
        let snapshot = t.snapshot();

        let fault = fault_tolerance_json(&snapshot).expect("retries present");
        assert!(fault.contains("\"step_retries\":3"));
        let durability = durability_json(&snapshot).expect("wal present");
        assert!(durability.contains("\"wal_records\":7"));
        let store = store_json(&snapshot).expect("shards gauge present");
        assert!(store.contains("\"shards\":16"));

        let sections = optional_sections(&snapshot);
        assert!(sections.starts_with(",\"fault_tolerance\":{"));
        assert!(sections.contains(",\"durability\":{"));
        assert!(sections.contains(",\"store\":{"));
    }

    #[test]
    fn static_analysis_section_reports_a_clean_lock_graph() {
        // Tests run with the crate directory as cwd, inside the workspace,
        // so the section must materialize — and the workspace itself must
        // be deadlock-free (the same invariant CI's tidy job enforces).
        match static_analysis_json() {
            Some(json) => {
                assert!(json.contains("\"lock_order\":{\"cycles\":0"), "{json}");
                assert!(json.contains("\"finding_count\":"), "{json}");
                assert!(json.contains("\"findings_by_check\":{"), "{json}");
            }
            None => unreachable!("workspace root not reachable from test cwd"),
        }
    }

    #[test]
    fn zero_shards_gauge_still_counts_as_published() {
        // Presence, not value, decides: a published all-zero stats block
        // (e.g. a store that saw no contention) must stay visible.
        let t = Telemetry::enabled();
        t.gauge(names::STORE_SHARDS).set(0);
        assert!(store_json(&t.snapshot()).is_some());
    }
}

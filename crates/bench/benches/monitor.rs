//! Criterion bench for the Monitoring hot path: attributing one store
//! write to the watched containers. The (table, family) index keeps the
//! per-write cost flat as the watch list grows; before it, attribution
//! scanned every watched container on every mutation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use smartflux::Monitor;
use smartflux_datastore::{ContainerRef, DataStore, Value};

fn bench_on_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_on_write");
    for &watched in &[4usize, 64, 512] {
        let store = DataStore::new();
        let monitor = Monitor::new();
        for i in 0..watched {
            let fam = ContainerRef::family("t", format!("f{i}"));
            store.ensure_container(&fam).expect("fresh store");
            monitor.watch(fam);
        }
        monitor.attach(&store);
        group.bench_with_input(BenchmarkId::new("watched", watched), &watched, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                store
                    .put("t", "f0", "r", "q", Value::from(i as f64))
                    .expect("watched family exists");
                black_box(i)
            });
        });
        let target = ContainerRef::family("t", "f0");
        black_box(monitor.total_writes(&target));
    }
    group.finish();
}

criterion_group!(benches, bench_on_write);
criterion_main!(benches);

//! Criterion benches of the six classification algorithms' fit and predict
//! costs on a SmartFlux-shaped training set (§3.2's comparison, cost axis).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use smartflux_ml::{
    Classifier, Dataset, DecisionTree, GaussianNaiveBayes, LinearSvm, LogisticRegression,
    NeuralNetwork, RandomForest,
};

/// A noisy threshold problem of the size SmartFlux trains per label:
/// a few hundred waves, one impact feature.
fn training_data() -> Dataset {
    let n = 500;
    let x: Vec<Vec<f64>> = (0..n).map(|i| vec![((i * 37) % 101) as f64]).collect();
    let y: Vec<bool> = x
        .iter()
        .enumerate()
        .map(|(i, r)| r[0] > 50.0 || i % 19 == 0)
        .collect();
    Dataset::new(x, y).expect("well-formed data")
}

fn bench_fit(c: &mut Criterion) {
    let data = training_data();
    let mut group = c.benchmark_group("fit_500x1");
    group.sample_size(20);
    group.bench_function("naive_bayes", |b| {
        b.iter(|| {
            let mut m = GaussianNaiveBayes::new();
            m.fit(black_box(&data)).expect("fit succeeds");
            black_box(m.predict(&[40.0]))
        });
    });
    group.bench_function("decision_tree", |b| {
        b.iter(|| {
            let mut m = DecisionTree::new();
            m.fit(black_box(&data)).expect("fit succeeds");
            black_box(m.predict(&[40.0]))
        });
    });
    group.bench_function("logistic", |b| {
        b.iter(|| {
            let mut m = LogisticRegression::new();
            m.fit(black_box(&data)).expect("fit succeeds");
            black_box(m.predict(&[40.0]))
        });
    });
    group.bench_function("random_forest_60", |b| {
        b.iter(|| {
            let mut m = RandomForest::new(60).with_max_depth(12).with_seed(7);
            m.fit(black_box(&data)).expect("fit succeeds");
            black_box(m.predict(&[40.0]))
        });
    });
    group.bench_function("svm", |b| {
        b.iter(|| {
            let mut m = LinearSvm::new().with_seed(7);
            m.fit(black_box(&data)).expect("fit succeeds");
            black_box(m.predict(&[40.0]))
        });
    });
    group.bench_function("mlp_8x150", |b| {
        b.iter(|| {
            let mut m = NeuralNetwork::new(8).with_epochs(150).with_seed(7);
            m.fit(black_box(&data)).expect("fit succeeds");
            black_box(m.predict(&[40.0]))
        });
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let data = training_data();
    let mut forest = RandomForest::new(60).with_max_depth(12).with_seed(7);
    forest.fit(&data).expect("fit succeeds");
    let mut tree = DecisionTree::new();
    tree.fit(&data).expect("fit succeeds");

    let mut group = c.benchmark_group("predict_one");
    group.bench_function("random_forest_60", |b| {
        b.iter(|| black_box(forest.predict_proba(black_box(&[40.0]))));
    });
    group.bench_function("decision_tree", |b| {
        b.iter(|| black_box(tree.predict_proba(black_box(&[40.0]))));
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);

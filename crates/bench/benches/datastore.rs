//! Criterion benches of the datastore substrate: put/get/scan throughput
//! with and without a registered observer (the paper's monitoring
//! interception path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use smartflux_datastore::{ContainerRef, DataStore, ScanFilter, Value, WriteEvent};

fn fresh_store() -> DataStore {
    let store = DataStore::new();
    store
        .ensure_container(&ContainerRef::family("t", "f"))
        .expect("fresh store");
    store
}

fn bench_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("put");
    group.bench_function("bare", |b| {
        let store = fresh_store();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store
                .put("t", "f", "row", "q", Value::from(i as f64))
                .expect("write succeeds")
        });
    });
    group.bench_function("with_observer", |b| {
        let store = fresh_store();
        let count = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&count);
        store.register_observer(Arc::new(move |e: &WriteEvent| {
            // The monitoring path: attribute and accumulate the magnitude.
            let m = match (&e.old, &e.new) {
                (Some(o), Some(n)) => n.abs_diff(o),
                _ => 1.0,
            };
            c2.fetch_add(m as u64, Ordering::Relaxed);
        }));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store
                .put("t", "f", "row", "q", Value::from(i as f64))
                .expect("write succeeds")
        });
        black_box(count.load(Ordering::Relaxed));
    });
    group.finish();
}

fn bench_get_scan(c: &mut Criterion) {
    let store = fresh_store();
    for i in 0..1000 {
        store
            .put("t", "f", &format!("r{i:05}"), "v", Value::from(i as f64))
            .expect("setup write");
    }
    let mut group = c.benchmark_group("read");
    group.bench_function("get_one", |b| {
        b.iter(|| black_box(store.get("t", "f", "r00500", "v").expect("family exists")));
    });
    for &limit in &[100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("scan", limit), &limit, |b, &l| {
            let filter = ScanFilter::all().with_limit(l);
            b.iter(|| black_box(store.scan("t", "f", &filter).expect("family exists")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_put, bench_get_scan);
criterion_main!(benches);

//! Criterion benches for §5.3's overhead sources: computing the input
//! impact and output error, classifying an instance, building the model,
//! and taking container snapshots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use smartflux::{
    KnowledgeBase, MagnitudeImpact, MeanRelativeError, MetricContext, MetricFn, ModelKind,
    Predictor,
};
use smartflux_datastore::{ContainerRef, DataStore, Value};

fn populated_store(cells: usize) -> (DataStore, ContainerRef) {
    let store = DataStore::new();
    let c = ContainerRef::family("t", "f");
    store.ensure_container(&c).expect("fresh store");
    for i in 0..cells {
        store
            .put("t", "f", &format!("r{i:05}"), "v", Value::from(i as f64))
            .expect("setup write");
    }
    (store, c)
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metric_functions");
    for &n in &[100usize, 1000] {
        let values: Vec<(Value, Value)> = (0..n)
            .map(|i| (Value::from(i as f64 + 0.5), Value::from(i as f64)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("magnitude_impact", n),
            &values,
            |b, vals| {
                b.iter(|| {
                    let mut m = MagnitudeImpact::new();
                    for (new, old) in vals {
                        m.update(Some(new), Some(old));
                    }
                    black_box(m.compute(&MetricContext::new(vals.len(), 1000.0)))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mean_relative_error", n),
            &values,
            |b, vals| {
                b.iter(|| {
                    let mut m = MeanRelativeError::new();
                    for (new, old) in vals {
                        m.update(Some(new), Some(old));
                    }
                    black_box(m.compute(&MetricContext::new(vals.len(), 1000.0)))
                });
            },
        );
    }
    group.finish();
}

fn bench_snapshot_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    for &n in &[100usize, 1000] {
        let (store, container) = populated_store(n);
        group.bench_with_input(BenchmarkId::new("capture", n), &n, |b, _| {
            b.iter(|| black_box(store.snapshot(&container).expect("snapshot")));
        });
        let base = store.snapshot(&container).expect("snapshot");
        for i in 0..n / 10 {
            store
                .put("t", "f", &format!("r{i:05}"), "v", Value::from(-1.0))
                .expect("mutation");
        }
        let current = store.snapshot(&container).expect("snapshot");
        group.bench_with_input(BenchmarkId::new("diff_10pct_changed", n), &n, |b, _| {
            b.iter(|| black_box(current.diff(&base)));
        });
    }
    group.finish();
}

fn training_kb(rows: usize, steps: usize) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new((0..steps).map(|j| format!("step{j}")).collect());
    for w in 0..rows {
        let impacts: Vec<f64> = (0..steps).map(|j| ((w * (j + 3)) % 97) as f64).collect();
        let labels: Vec<bool> = impacts.iter().map(|&i| i > 48.0).collect();
        kb.append(w as u64, impacts, labels)
            .expect("schema matches");
    }
    kb
}

fn bench_predictor(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor");
    group.sample_size(20);
    // Model build time: the paper's dominant (yet sub-second) overhead.
    let kb = training_kb(500, 6);
    group.bench_function("build_model_500x6", |b| {
        b.iter(|| {
            let mut p = Predictor::new(ModelKind::default(), 7);
            p.train(black_box(&kb)).expect("training succeeds");
            black_box(p.is_trained())
        });
    });
    // Per-wave classification latency.
    let mut p = Predictor::new(ModelKind::default(), 7);
    p.train(&kb).expect("training succeeds");
    let features = vec![10.0, 60.0, 30.0, 80.0, 5.0, 50.0];
    group.bench_function("classify_wave", |b| {
        b.iter(|| black_box(p.predict(black_box(&features)).expect("trained")));
    });
    group.finish();
}

criterion_group!(benches, bench_metrics, bench_snapshot_diff, bench_predictor);
criterion_main!(benches);

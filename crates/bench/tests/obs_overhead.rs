//! Overhead guard for the observability plane (issue acceptance: serving
//! `/metrics` + tracing must add < 5% wall-clock to a 200-wave LRB run).
//!
//! Same interleaved-timing idiom as the §5.3 `overhead_summary` harness:
//! alternate baseline and instrumented runs and compare the best time of
//! each, so one-off scheduler noise cannot fail the guard. The
//! instrumented run carries the full plane — span ring, wave-decision
//! ring, a live `ObsServer`, and a scraper thread hammering `/metrics`
//! and `/trace` throughout.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use smartflux::SmartFluxSession;
use smartflux_bench::Workload;
use smartflux_obs::{http, preregister, ObsServer, ObsSources, RingJournal, RingTraceSink};
use smartflux_telemetry::{JournalSink, TraceSink};

/// Runs training + `waves` LRB application waves with telemetry on,
/// optionally with the whole observability plane attached and actively
/// scraped, and returns the run's wall-clock time.
fn lrb_run(with_obs: bool, training: usize, waves: u64) -> Duration {
    let store = smartflux_datastore::DataStore::new();
    let workflow = Workload::Lrb.factory(0.10).build(&store);
    let config = Workload::Lrb
        .engine_config(0.10)
        .with_telemetry(true)
        .with_training_waves(training);
    let mut session = SmartFluxSession::new(workflow, store, config).expect("LRB declares QoD");

    let mut plane = None;
    if with_obs {
        let telemetry = session.telemetry().clone();
        preregister(&telemetry);
        let trace = Arc::new(RingTraceSink::with_capacity(32_768));
        telemetry.set_trace_sink(Some(Arc::clone(&trace) as Arc<dyn TraceSink>));
        let waves_ring = Arc::new(RingJournal::with_capacity(512));
        telemetry.add_journal_sink(Arc::clone(&waves_ring) as Arc<dyn JournalSink>);
        let server = ObsServer::start(
            "127.0.0.1:0",
            ObsSources {
                telemetry,
                trace: Some(trace),
                waves: Some(waves_ring),
            },
            2,
        )
        .expect("bind ephemeral port");
        let addr = server.addr().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let scraper = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Prometheus-style cadence: frequent /metrics scrapes, an
                // occasional /trace pull (rebuilding the span forest on
                // every request at 40 Hz is not a serving pattern — it is
                // a CPU-starvation test, and single-core CI has no spare
                // core to absorb it).
                let mut rounds = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let _ = http::get(&addr, "/metrics", Duration::from_secs(1));
                    if rounds.is_multiple_of(4) {
                        let _ = http::get(&addr, "/trace?waves=4", Duration::from_secs(1));
                    }
                    rounds += 1;
                    std::thread::sleep(Duration::from_millis(250));
                }
            })
        };
        plane = Some((server, stop, scraper));
    }

    let start = Instant::now();
    session.run_training().expect("training run succeeds");
    session.run_waves(waves).expect("application run succeeds");
    let elapsed = start.elapsed();

    if let Some((server, stop, scraper)) = plane {
        stop.store(true, Ordering::Relaxed);
        scraper.join().expect("scraper thread exits");
        server.shutdown();
    }
    elapsed
}

#[test]
fn serving_overhead_stays_under_the_budget() {
    // The strict <5% acceptance gate is the release configuration (the
    // CI `observability` job). Debug builds run the engine ~10× slower
    // and the whole suite shares one noisy box, so tier-1 keeps a
    // shrunken run with a looser bound — enough to catch a regression
    // that makes serving *expensive*, without failing on timer jitter.
    let (training, waves, rel_budget) = if cfg!(debug_assertions) {
        (60, 40, 1.25)
    } else {
        (240, 200, 1.05)
    };

    let mut baseline = Duration::MAX;
    let mut instrumented = Duration::MAX;
    for _ in 0..3 {
        baseline = baseline.min(lrb_run(false, training, waves));
        instrumented = instrumented.min(lrb_run(true, training, waves));
    }

    // Relative budget plus a small absolute allowance so short debug
    // runs are not failed by scheduler jitter alone.
    let limit = baseline.mul_f64(rel_budget) + Duration::from_millis(50);
    println!(
        "obs overhead: baseline {baseline:?}, instrumented {instrumented:?}, limit {limit:?} \
         ({:+.2}%)",
        (instrumented.as_secs_f64() / baseline.as_secs_f64() - 1.0) * 100.0
    );
    assert!(
        instrumented <= limit,
        "observability plane exceeds the overhead budget: \
         baseline {baseline:?}, instrumented {instrumented:?}, limit {limit:?}"
    );
}

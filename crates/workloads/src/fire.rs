//! The fire-risk assessment workload — the paper's motivational example
//! (Fig. 1/2) with the Amazon-rainforest weather curves of Fig. 3.
//!
//! A network of sensors equally distributed over a forest reports
//! temperature, precipitation and wind every wave. The workflow updates an
//! internal forest map, divides it into areas, assesses each area's fire
//! risk, and finally the overall risk plus contiguous risky areas
//! (hotspots). Two zero-error-tolerance steps follow: gathering satellite
//! imagery for burning areas and issuing a displacement order to the fire
//! department.

use smartflux::eval::WorkloadFactory;
use smartflux_datastore::{ContainerRef, DataStore, ScanFilter, Value};
use smartflux_wms::{FnStep, GraphBuilder, StepContext, Workflow};

use crate::gen::{diurnal, periodic_noise, unit_hash};

/// Table name used by this workload.
pub const TABLE: &str = "fire";
/// Waves in one repeating weather cycle (a simulated week of hourly waves).
pub const WEEK_WAVES: u64 = 168;
/// Intermediate (non-output) steps receive this fraction of the workflow's
/// error bound. The fraction is small because the risk map amplifies
/// relative staleness: the score is proportional to `T − 24 °C` while the
/// sensor container's relative error is measured against `T ≈ 27 °C`, a
/// gain of roughly 3–4× through the chain.
pub const INTERMEDIATE_BOUND_FRACTION: f64 = 0.15;

/// Configuration of the fire-risk workload.
#[derive(Debug, Clone)]
pub struct FireConfig {
    /// Sensors per grid side.
    pub grid: usize,
    /// Sensors per area side.
    pub area_size: usize,
    /// Error bound applied to every managed step.
    pub bound: f64,
    /// Feed seed.
    pub seed: u64,
    /// Heat-wave intensity in `[0, 1]`; raises temperatures so risk levels
    /// and hotspots actually move (0 reproduces a calm Fig. 3 day).
    pub heat_wave: f64,
}

impl Default for FireConfig {
    fn default() -> Self {
        Self {
            grid: 8,
            area_size: 2,
            bound: 0.10,
            seed: 11,
            heat_wave: 0.4,
        }
    }
}

impl FireConfig {
    /// A configuration with the given uniform error bound.
    #[must_use]
    pub fn with_bound(bound: f64) -> Self {
        Self {
            bound,
            ..Self::default()
        }
    }
}

/// A single wave's weather at one sensor, following the diurnal shapes of
/// Fig. 3: temperature 24–30 °C, precipitation 0–0.8 mm, wind 2–8 km/h,
/// varying "progressively over 24 hours without major steep slopes".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weather {
    /// Temperature in °C.
    pub temperature: f64,
    /// Precipitation in mm.
    pub precipitation: f64,
    /// Wind speed in km/h.
    pub wind: f64,
}

/// Generates the weather for sensor `(x, y)` at `wave` (one wave = one
/// hour).
#[must_use]
pub fn weather(seed: u64, x: usize, y: usize, wave: u64, heat_wave: f64) -> Weather {
    let s = (x * 131 + y) as u64;
    let day = diurnal(wave, 0.0);
    let drift = periodic_noise(seed ^ 0xF1, s, wave, 28, WEEK_WAVES);
    let temperature = 24.0
        + 6.0 * day * (0.8 + 0.2 * drift)
        + 4.0 * heat_wave * periodic_noise(seed ^ 0xF2, s, wave, 56, WEEK_WAVES);
    // Precipitation: mostly near zero, occasional showers (cubed noise),
    // anti-correlated with the afternoon heat.
    let shower = periodic_noise(seed ^ 0xF3, s, wave, 14, WEEK_WAVES).powi(3);
    let precipitation = (0.8 * shower * (1.0 - 0.6 * day)).max(0.0);
    let wind = 2.0 + 6.0 * periodic_noise(seed ^ 0xF4, s, wave, 21, WEEK_WAVES) * (0.6 + 0.4 * day);
    Weather {
        temperature,
        precipitation,
        wind,
    }
}

/// Continuous fire-risk score of an area in `[0, 1]` from its aggregated
/// weather.
#[must_use]
pub fn risk_score(temperature: f64, precipitation: f64, wind: f64) -> f64 {
    let heat = ((temperature - 24.0) / 10.0).clamp(0.0, 1.0);
    let dryness = (1.0 - precipitation / 0.8).clamp(0.0, 1.0);
    let gust = (wind / 8.0).clamp(0.0, 1.0);
    (0.55 * heat + 0.25 * dryness + 0.20 * gust).clamp(0.0, 1.0)
}

/// Discretises a risk score into 5 levels (0 = minimal … 4 = extreme).
#[must_use]
pub fn risk_level(score: f64) -> i64 {
    ((score * 5.0) as i64).min(4)
}

fn sensor_row(x: usize, y: usize) -> String {
    format!("s-{x:02}-{y:02}")
}

fn area_row(ax: usize, ay: usize) -> String {
    format!("a-{ax}-{ay}")
}

/// Builds the fire-risk workflow over a store.
#[derive(Debug, Clone, Default)]
pub struct FireFactory {
    /// Workload parameters.
    pub config: FireConfig,
}

impl FireFactory {
    /// A factory with the given uniform error bound on all managed steps.
    #[must_use]
    pub fn with_bound(bound: f64) -> Self {
        Self {
            config: FireConfig::with_bound(bound),
        }
    }
}

impl WorkloadFactory for FireFactory {
    #[allow(clippy::too_many_lines)]
    fn build(&self, store: &DataStore) -> Workflow {
        let cfg = self.config.clone();
        for f in [
            "sensors",
            "areas",
            "thermal",
            "risk",
            "overall",
            "satellite",
            "orders",
        ] {
            store
                .ensure_container(&ContainerRef::family(TABLE, f))
                .expect("container setup cannot fail on a fresh store");
        }

        let mut g = GraphBuilder::new("fire-risk");
        let map_update = g.add_step("map-update");
        let calc_areas = g.add_step("calculate-areas");
        let thermal = g.add_step("thermal-map");
        let area_risk = g.add_step("assess-area-risk");
        let overall = g.add_step("overall-risk");
        let satellite = g.add_step("satellite-images");
        let orders = g.add_step("displacement-order");
        g.add_edge(map_update, calc_areas).expect("valid edge");
        g.add_edge(calc_areas, thermal).expect("valid edge");
        g.add_edge(calc_areas, area_risk).expect("valid edge");
        g.add_edge(area_risk, overall).expect("valid edge");
        g.add_edge(area_risk, satellite).expect("valid edge");
        g.add_edge(satellite, orders).expect("valid edge");
        let mut wf = Workflow::new(g.build().expect("fire graph is a DAG"));

        let sensors = ContainerRef::family(TABLE, "sensors");
        let areas = ContainerRef::family(TABLE, "areas");
        let thermalc = ContainerRef::family(TABLE, "thermal");
        let riskc = ContainerRef::family(TABLE, "risk");
        let satc = ContainerRef::family(TABLE, "satellite");
        let ordersc = ContainerRef::family(TABLE, "orders");

        // Step 1: map update — always executed ("it is not possible to
        // maintain sensory data across waves without the execution of this
        // step").
        let c = cfg.clone();
        wf.bind(
            map_update,
            FnStep::new(move |ctx: &StepContext| {
                for x in 0..c.grid {
                    for y in 0..c.grid {
                        let w = weather(c.seed, x, y, ctx.wave(), c.heat_wave);
                        let row = sensor_row(x, y);
                        ctx.put(TABLE, "sensors", &row, "temp", Value::from(w.temperature))?;
                        ctx.put(
                            TABLE,
                            "sensors",
                            &row,
                            "precip",
                            Value::from(w.precipitation),
                        )?;
                        ctx.put(TABLE, "sensors", &row, "wind", Value::from(w.wind))?;
                    }
                }
                Ok(())
            }),
        )
        .source()
        .writes(sensors.clone());
        // Managed steps below also monitor the raw sensors container as a
        // QoD anchor (combine with a Max combiner), keeping deep steps'
        // impact informative when intermediates were skipped.

        // Step 2a: divide the forest into areas, combining sensor measures.
        let c = cfg.clone();
        wf.bind(
            calc_areas,
            FnStep::new(move |ctx: &StepContext| {
                let per_side = c.grid / c.area_size;
                for ax in 0..per_side {
                    for ay in 0..per_side {
                        let (mut t, mut p, mut w) = (0.0, 0.0, 0.0);
                        for dx in 0..c.area_size {
                            for dy in 0..c.area_size {
                                let row = sensor_row(ax * c.area_size + dx, ay * c.area_size + dy);
                                t += ctx.get_f64(TABLE, "sensors", &row, "temp", 0.0)?;
                                p += ctx.get_f64(TABLE, "sensors", &row, "precip", 0.0)?;
                                w += ctx.get_f64(TABLE, "sensors", &row, "wind", 0.0)?;
                            }
                        }
                        let n = (c.area_size * c.area_size) as f64;
                        let row = area_row(ax, ay);
                        ctx.put(TABLE, "areas", &row, "temp", Value::from(t / n))?;
                        ctx.put(TABLE, "areas", &row, "precip", Value::from(p / n))?;
                        ctx.put(TABLE, "areas", &row, "wind", Value::from(w / n))?;
                    }
                }
                Ok(())
            }),
        )
        .reads(sensors.clone())
        .writes(areas.clone())
        .error_bound(cfg.bound * INTERMEDIATE_BOUND_FRACTION);

        // Step 2b: thermal map for the monitoring station.
        wf.bind(
            thermal,
            FnStep::new(move |ctx: &StepContext| {
                for row in ctx.scan(TABLE, "areas", &ScanFilter::all().with_qualifier("temp"))? {
                    let t = row.f64("temp").unwrap_or(24.0);
                    // Shade in [0, 255] for the rendering pipeline.
                    let shade = ((t - 22.0) / 12.0 * 255.0).clamp(0.0, 255.0);
                    ctx.put(TABLE, "thermal", &row.key, "shade", Value::from(shade))?;
                }
                Ok(())
            }),
        )
        .reads(areas.clone())
        .writes(thermalc)
        .error_bound(cfg.bound * INTERMEDIATE_BOUND_FRACTION);

        // Step 3: assess each area's fire risk.
        wf.bind(
            area_risk,
            FnStep::new(move |ctx: &StepContext| {
                for row in ctx.scan(TABLE, "areas", &ScanFilter::all())? {
                    let t = row.f64("temp").unwrap_or(24.0);
                    let p = row.f64("precip").unwrap_or(0.0);
                    let w = row.f64("wind").unwrap_or(2.0);
                    let score = risk_score(t, p, w);
                    ctx.put(TABLE, "risk", &row.key, "score", Value::from(score))?;
                    ctx.put(
                        TABLE,
                        "risk",
                        &row.key,
                        "level",
                        Value::from(risk_level(score)),
                    )?;
                }
                Ok(())
            }),
        )
        .reads(areas)
        .reads(sensors.clone())
        .writes(riskc.clone())
        .error_bound(cfg.bound * INTERMEDIATE_BOUND_FRACTION);

        // Step 4a: overall risk and hotspots — the workflow output; its
        // bound should make only decision-relevant changes propagate.
        wf.bind(
            overall,
            FnStep::new(move |ctx: &StepContext| {
                let rows = ctx.scan(TABLE, "risk", &ScanFilter::all())?;
                let mut total = 0.0;
                let mut n = 0.0;
                let mut hotspots = 0.0;
                for row in &rows {
                    let score = row.f64("score").unwrap_or(0.0);
                    total += score;
                    n += 1.0;
                    if row.f64("level").unwrap_or(0.0) >= 3.0 {
                        hotspots += 1.0;
                    }
                }
                let avg = if n > 0.0 { total / n } else { 0.0 };
                ctx.put(TABLE, "overall", "region", "risk", Value::from(avg))?;
                ctx.put(
                    TABLE,
                    "overall",
                    "region",
                    "hotspots",
                    Value::from(hotspots),
                )?;
                ctx.put(
                    TABLE,
                    "overall",
                    "region",
                    "level",
                    Value::from(risk_level(avg)),
                )?;
                Ok(())
            }),
        )
        .reads(riskc.clone())
        .reads(sensors.clone())
        .writes(ContainerRef::column(TABLE, "overall", "risk"))
        .error_bound(cfg.bound);

        // Step 4b: gather satellite images for burning areas — critical,
        // tolerates no error, so it always runs.
        let c = cfg.clone();
        wf.bind(
            satellite,
            FnStep::new(move |ctx: &StepContext| {
                for row in ctx.scan(TABLE, "risk", &ScanFilter::all().with_qualifier("level"))? {
                    let level = row.f64("level").unwrap_or(0.0);
                    if level >= 4.0 {
                        // Deterministic "image analysis": confirm a fire in
                        // a small fraction of extreme-risk inspections.
                        let confirmed = unit_hash(c.seed ^ 0xAB, ctx.wave(), 0) < 0.3;
                        ctx.put(
                            TABLE,
                            "satellite",
                            &row.key,
                            "fire_confirmed",
                            Value::from(i64::from(confirmed)),
                        )?;
                    }
                }
                Ok(())
            }),
        )
        .source()
        .reads(riskc)
        .writes(satc.clone());

        // Step 5: issue a displacement order when a fire is confirmed —
        // critical, always runs.
        wf.bind(
            orders,
            FnStep::new(move |ctx: &StepContext| {
                let confirmed = ctx
                    .scan(TABLE, "satellite", &ScanFilter::all())?
                    .iter()
                    .filter(|r| r.f64("fire_confirmed").unwrap_or(0.0) > 0.5)
                    .count() as i64;
                ctx.put(TABLE, "orders", "region", "pending", Value::from(confirmed))?;
                Ok(())
            }),
        )
        .source()
        .reads(satc)
        .writes(ordersc);

        debug_assert!(wf.first_unbound().is_none());
        wf
    }

    fn output_step(&self) -> &str {
        "overall-risk"
    }

    fn name(&self) -> &str {
        "fire-risk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartflux_wms::{Scheduler, SynchronousPolicy};

    #[test]
    fn weather_matches_fig3_ranges() {
        for wave in 0..168 {
            let w = weather(11, 3, 3, wave, 0.0);
            assert!(
                (23.0..=31.0).contains(&w.temperature),
                "temp {}",
                w.temperature
            );
            assert!((0.0..=0.85).contains(&w.precipitation));
            assert!((1.5..=8.5).contains(&w.wind));
        }
    }

    #[test]
    fn weather_changes_gradually() {
        let max_step = (1..168)
            .map(|wv| {
                (weather(11, 0, 0, wv, 0.3).temperature
                    - weather(11, 0, 0, wv - 1, 0.3).temperature)
                    .abs()
            })
            .fold(0.0, f64::max);
        assert!(max_step < 2.0, "hourly temperature jump {max_step}");
    }

    #[test]
    fn risk_score_ordering() {
        let calm = risk_score(24.0, 0.8, 2.0);
        let scorching = risk_score(34.0, 0.0, 8.0);
        assert!(calm < 0.3);
        assert!(scorching > 0.9);
        assert!(risk_level(calm) < risk_level(scorching));
        assert_eq!(risk_level(1.0), 4);
    }

    #[test]
    fn workflow_produces_overall_risk() {
        let factory = FireFactory::with_bound(0.1);
        let store = DataStore::new();
        let wf = factory.build(&store);
        assert_eq!(wf.graph().len(), 7);
        let mut sched = Scheduler::new(wf, store.clone(), Box::new(SynchronousPolicy));
        sched.run_waves(12).unwrap();
        let risk = store
            .get(TABLE, "overall", "region", "risk")
            .unwrap()
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((0.0..=1.0).contains(&risk));
        assert!(store
            .get(TABLE, "orders", "region", "pending")
            .unwrap()
            .is_some());
    }

    #[test]
    fn twin_builds_are_identical() {
        let factory = FireFactory::with_bound(0.05);
        let (s1, s2) = (DataStore::new(), DataStore::new());
        let mut a = Scheduler::new(factory.build(&s1), s1.clone(), Box::new(SynchronousPolicy));
        let mut b = Scheduler::new(factory.build(&s2), s2.clone(), Box::new(SynchronousPolicy));
        a.run_waves(6).unwrap();
        b.run_waves(6).unwrap();
        let c = ContainerRef::family(TABLE, "overall");
        assert_eq!(s1.snapshot(&c).unwrap(), s2.snapshot(&c).unwrap());
    }

    #[test]
    fn critical_steps_always_run() {
        let factory = FireFactory::default();
        let store = DataStore::new();
        let wf = factory.build(&store);
        for name in ["map-update", "satellite-images", "displacement-order"] {
            let id = wf.graph().step_id(name).unwrap();
            assert!(wf.info(id).always_run(), "{name}");
        }
    }
}

//! Deterministic signal generators shared by the workloads.
//!
//! Every generator is a pure function of `(seed, entity, wave)`, which is
//! what lets the evaluation harness run identical twins: two stores fed by
//! the same factory see byte-identical container contents under synchronous
//! execution.

/// A fast deterministic hash of up to three indices, returned in `[0, 1)`.
///
/// Used as seeded "noise": unlike an RNG stream, the value for a given
/// `(seed, a, b)` never depends on evaluation order.
#[must_use]
pub fn unit_hash(seed: u64, a: u64, b: u64) -> f64 {
    // SplitMix64-style mixing.
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Smooth value noise over the wave axis: linear interpolation between
/// per-knot hashes, with `period` waves between knots.
///
/// Produces gentle drifts ("no major steep slopes") suitable for the
/// paper's sensor feeds.
///
/// # Panics
///
/// Panics if `period` is zero.
#[must_use]
pub fn smooth_noise(seed: u64, entity: u64, wave: u64, period: u64) -> f64 {
    assert!(period > 0, "period must be positive");
    let knot = wave / period;
    let t = (wave % period) as f64 / period as f64;
    let a = unit_hash(seed, entity, knot);
    let b = unit_hash(seed, entity, knot + 1);
    // Smoothstep interpolation for a continuous derivative.
    let s = t * t * (3.0 - 2.0 * t);
    a + (b - a) * s
}

/// Periodic smooth value noise: like [`smooth_noise`] but the knot sequence
/// wraps every `cycle` waves, so the signal repeats exactly with period
/// `cycle`.
///
/// The paper's feeds exhibit "a cycle of a pattern that repeats across
/// time" (§5.2) — its AQHI week and LRB day recur — and this generator is
/// what gives our workloads that property.
///
/// # Panics
///
/// Panics if `period` is zero or `cycle` is not a multiple of `period`.
#[must_use]
pub fn periodic_noise(seed: u64, entity: u64, wave: u64, period: u64, cycle: u64) -> f64 {
    assert!(period > 0, "period must be positive");
    assert!(
        cycle.is_multiple_of(period),
        "cycle ({cycle}) must be a multiple of period ({period})"
    );
    let knots = cycle / period;
    let knot = (wave / period) % knots;
    let next = (knot + 1) % knots;
    let t = (wave % period) as f64 / period as f64;
    let a = unit_hash(seed, entity, knot);
    let b = unit_hash(seed, entity, next);
    let s = t * t * (3.0 - 2.0 * t);
    a + (b - a) * s
}

/// A diurnal (24-wave period) curve in `[0, 1]`, peaking mid-period.
///
/// Models the paper's hour-by-hour Amazon-rainforest day (Fig. 3): values
/// rise through the morning, peak in the afternoon, fall at night.
#[must_use]
pub fn diurnal(wave: u64, phase_hours: f64) -> f64 {
    let hour = (wave % 24) as f64 + phase_hours;
    let radians = (hour - 6.0) / 24.0 * std::f64::consts::TAU;
    (radians.sin() + 1.0) / 2.0
}

/// Linear interpolation helper.
#[must_use]
pub fn lerp(lo: f64, hi: f64, t: f64) -> f64 {
    lo + (hi - lo) * t.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_hash_is_deterministic_and_bounded() {
        for a in 0..50 {
            for b in 0..10 {
                let v = unit_hash(7, a, b);
                assert!((0.0..1.0).contains(&v));
                assert_eq!(v, unit_hash(7, a, b));
            }
        }
    }

    #[test]
    fn unit_hash_differs_across_seeds() {
        let same = (0..100)
            .filter(|&a| unit_hash(1, a, 0) == unit_hash(2, a, 0))
            .count();
        assert!(same < 5);
    }

    #[test]
    fn smooth_noise_has_small_steps() {
        let max_step = (1..200)
            .map(|w| (smooth_noise(3, 0, w, 12) - smooth_noise(3, 0, w - 1, 12)).abs())
            .fold(0.0, f64::max);
        // With period 12, per-wave steps stay well under the knot range.
        assert!(max_step < 0.3, "step {max_step} too steep");
    }

    #[test]
    fn smooth_noise_hits_knots() {
        assert_eq!(smooth_noise(3, 5, 24, 12), unit_hash(3, 5, 2));
    }

    #[test]
    fn periodic_noise_repeats_exactly() {
        for w in 0..168 {
            assert_eq!(
                periodic_noise(5, 3, w, 8, 168),
                periodic_noise(5, 3, w + 168, 8, 168)
            );
            assert_eq!(
                periodic_noise(5, 3, w, 8, 168),
                periodic_noise(5, 3, w + 336, 8, 168)
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be a multiple")]
    fn periodic_noise_rejects_misaligned_cycle() {
        let _ = periodic_noise(1, 1, 0, 5, 168);
    }

    #[test]
    fn diurnal_peaks_in_afternoon() {
        let noon = diurnal(12, 0.0);
        let midnight = diurnal(0, 0.0);
        assert!(noon > 0.9);
        assert!(midnight < 0.1);
        // 24-wave periodicity.
        assert!((diurnal(5, 0.0) - diurnal(29, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn lerp_clamps() {
        assert_eq!(lerp(0.0, 10.0, 0.5), 5.0);
        assert_eq!(lerp(0.0, 10.0, -1.0), 0.0);
        assert_eq!(lerp(0.0, 10.0, 2.0), 10.0);
    }
}

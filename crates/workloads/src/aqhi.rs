//! The Air Quality Health Index (AQHI) workload — Fig. 6 of the paper.
//!
//! A grid of detectors, each with three sensors gauging Ozone (O3),
//! Particulate Matter (PM2.5) and Nitrogen Dioxide (NO2). Each wave is one
//! hour; "each sensor corresponds to a different generating function,
//! following a distribution with smooth variations across space" (§5.1),
//! returning values from 0 to 100. The workflow computes combined
//! concentrations, aggregates them into zones, interpolates a pollution
//! map, detects hotspots, and emits a health-risk index classified as low
//! (1–3), moderate (4–6), high (7–10) or very high (above 10).

use smartflux::eval::WorkloadFactory;
use smartflux_datastore::{ContainerRef, DataStore, ScanFilter, Value};
use smartflux_wms::{FnStep, GraphBuilder, StepContext, StepError, Workflow};

use crate::gen::{diurnal, periodic_noise, unit_hash};

/// Table name used by this workload.
pub const TABLE: &str = "aqhi";
/// Waves in the paper's full simulated week (168 hourly waves).
pub const WEEK_WAVES: u64 = 168;
/// Intermediate (non-output) steps receive this fraction of the workflow's
/// error bound: budgeting half the tolerance to upstream staleness keeps the
/// *output* step's compounded deviation within its own bound.
pub const INTERMEDIATE_BOUND_FRACTION: f64 = 0.5;

/// Configuration of the AQHI workload.
#[derive(Debug, Clone)]
pub struct AqhiConfig {
    /// Detectors per grid side (`grid × grid` detectors total).
    pub grid: usize,
    /// Detectors per zone side (`zone_size × zone_size` detectors per zone).
    pub zone_size: usize,
    /// Error bound applied to every managed step.
    pub bound: f64,
    /// Concentration above which a zone is a hotspot.
    pub hotspot_reference: f64,
    /// Feed seed.
    pub seed: u64,
}

impl Default for AqhiConfig {
    fn default() -> Self {
        Self {
            grid: 8,
            zone_size: 2,
            bound: 0.10,
            hotspot_reference: 38.0,
            seed: 42,
        }
    }
}

impl AqhiConfig {
    /// A configuration with the given uniform error bound.
    #[must_use]
    pub fn with_bound(bound: f64) -> Self {
        Self {
            bound,
            ..Self::default()
        }
    }

    /// Number of detectors.
    #[must_use]
    pub fn detectors(&self) -> usize {
        self.grid * self.grid
    }

    /// Number of zones.
    #[must_use]
    pub fn zones(&self) -> usize {
        let per_side = self.grid / self.zone_size;
        per_side * per_side
    }
}

/// Generating function for one sensor of one detector at one wave.
///
/// Deterministic in `(seed, pollutant, detector, wave)`; smooth in both
/// space (neighbouring detectors share the spatial gradient) and time
/// (diurnal cycles plus slow value-noise drift). Returns `[0, 100]`.
#[must_use]
pub fn sensor_value(seed: u64, pollutant: Pollutant, x: usize, y: usize, wave: u64) -> f64 {
    let (phase, weight_diurnal, drift_period) = match pollutant {
        Pollutant::O3 => (0.0, 0.55, 6),   // photochemical: afternoon peak
        Pollutant::Pm25 => (3.0, 0.4, 8),  // slow-moving particulates
        Pollutant::No2 => (-4.0, 0.45, 4), // traffic-correlated
    };
    let p = pollutant as u64;
    let day = diurnal(wave, phase);
    // Activity regime: pollution dynamics are driven by photochemistry and
    // traffic, so nights are quiet (small input changes AND small output
    // changes) while days are busy — the correlated-regimes premise of
    // §2.3 that makes input impact predictive of output error.
    let activity = 0.02 + 0.98 * day * day.sqrt();
    // A pollution plume wandering smoothly over the grid: the spatial peak
    // moves hour by hour, so zone rankings (and hence hotspots) keep
    // shifting the way real pollution fronts do.
    let cx = 8.0 * periodic_noise(seed ^ 0xC1, p, wave, 56, WEEK_WAVES);
    let cy = 8.0 * periodic_noise(seed ^ 0xC2, p, wave, 84, WEEK_WAVES);
    let dist = (((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt() / 8.0).min(1.0);
    let spatial = 0.3 + 0.55 * (1.0 - dist) + 0.15 * unit_hash(seed, p * 100 + x as u64, y as u64);
    let fast = periodic_noise(
        seed ^ 0xA0,
        p * 10_000 + (x * 97 + y) as u64,
        wave,
        drift_period,
        WEEK_WAVES,
    );
    let temporal = weight_diurnal * day + (1.0 - weight_diurnal) * fast;
    let value = (100.0 * spatial * (0.25 + 0.75 * temporal * activity)).clamp(0.0, 100.0);
    // Detectors report with a finite resolution of one unit — far above the
    // overnight micro-noise but well below daytime swings — so the quiet
    // regime produces genuinely unchanged readings.
    value.round()
}

/// The three pollutants gauged by each detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pollutant {
    /// Ozone.
    O3 = 0,
    /// Particulate matter ≤ 2.5 µm.
    Pm25 = 1,
    /// Nitrogen dioxide.
    No2 = 2,
}

/// Maps an AQHI index value to the paper's health-risk classes.
#[must_use]
pub fn risk_class(index: f64) -> &'static str {
    if index <= 3.0 {
        "low"
    } else if index <= 6.0 {
        "moderate"
    } else if index <= 10.0 {
        "high"
    } else {
        "very-high"
    }
}

fn det_row(x: usize, y: usize) -> String {
    format!("det-{x:02}-{y:02}")
}

fn zone_row(zx: usize, zy: usize) -> String {
    format!("zone-{zx}-{zy}")
}

/// Builds the AQHI workflow over `store` (the [`WorkloadFactory`] for this
/// workload).
///
/// Step structure (Fig. 6): `ingest → concentration → zones → hotspots →
/// index`, with the interpolated pollution map (`interp`) branching off
/// `concentration`.
#[derive(Debug, Clone, Default)]
pub struct AqhiFactory {
    /// Workload parameters.
    pub config: AqhiConfig,
}

impl AqhiFactory {
    /// A factory with the given uniform error bound on all managed steps.
    #[must_use]
    pub fn with_bound(bound: f64) -> Self {
        Self {
            config: AqhiConfig::with_bound(bound),
        }
    }

    /// Container holding the raw sensor readings.
    #[must_use]
    pub fn readings(&self) -> ContainerRef {
        ContainerRef::family(TABLE, "readings")
    }

    /// Container holding the final index.
    #[must_use]
    pub fn index(&self) -> ContainerRef {
        ContainerRef::family(TABLE, "index")
    }
}

impl WorkloadFactory for AqhiFactory {
    fn build(&self, store: &DataStore) -> Workflow {
        let cfg = self.config.clone();
        let families = [
            "readings",
            "concentration",
            "zones",
            "interp",
            "hotspots",
            "index",
        ];
        for f in families {
            store
                .ensure_container(&ContainerRef::family(TABLE, f))
                .expect("container setup cannot fail on a fresh store");
        }

        let mut g = GraphBuilder::new("aqhi");
        let ingest = g.add_step("ingest");
        let concentration = g.add_step("concentration");
        let zones = g.add_step("zones");
        let interp = g.add_step("interp");
        let hotspots = g.add_step("hotspots");
        let index = g.add_step("index");
        g.add_edge(ingest, concentration).expect("valid edge");
        g.add_edge(concentration, zones).expect("valid edge");
        g.add_edge(concentration, interp).expect("valid edge");
        g.add_edge(zones, hotspots).expect("valid edge");
        g.add_edge(hotspots, index).expect("valid edge");
        let mut wf = Workflow::new(g.build().expect("aqhi graph is a DAG"));

        let readings = ContainerRef::family(TABLE, "readings");
        let conc = ContainerRef::family(TABLE, "concentration");
        let zonesc = ContainerRef::family(TABLE, "zones");
        let interpc = ContainerRef::family(TABLE, "interp");
        let hotsc = ContainerRef::family(TABLE, "hotspots");

        // Step 1: simulate asynchronous arrival of sensory data; always runs.
        let c = cfg.clone();
        wf.bind(
            ingest,
            FnStep::new(move |ctx: &StepContext| {
                let wave = ctx.wave();
                for x in 0..c.grid {
                    for y in 0..c.grid {
                        let row = det_row(x, y);
                        for (qual, pollutant) in [
                            ("o3", Pollutant::O3),
                            ("pm25", Pollutant::Pm25),
                            ("no2", Pollutant::No2),
                        ] {
                            let v = sensor_value(c.seed, pollutant, x, y, wave);
                            ctx.put(TABLE, "readings", &row, qual, Value::from(v))?;
                        }
                    }
                }
                Ok(())
            }),
        )
        .source()
        .writes(readings.clone());
        // NOTE: every managed step below also *monitors* the raw readings
        // container. The paper's extended Oozie schema attaches arbitrary
        // data containers to a step's QoD clause; anchoring deep steps to
        // the always-fresh source keeps their input impact informative even
        // when intermediate steps have been skipped (combined with the Max
        // combiner configured in the engine's QoD spec).

        // Step 2: combined concentration via a multiplicative model.
        let c = cfg.clone();
        wf.bind(
            concentration,
            FnStep::new(move |ctx: &StepContext| {
                for x in 0..c.grid {
                    for y in 0..c.grid {
                        let row = det_row(x, y);
                        let o3 = ctx.get_f64(TABLE, "readings", &row, "o3", 0.0)?;
                        let pm = ctx.get_f64(TABLE, "readings", &row, "pm25", 0.0)?;
                        let no2 = ctx.get_f64(TABLE, "readings", &row, "no2", 0.0)?;
                        let combined = 100.0
                            * (o3 / 100.0).powf(0.40)
                            * (pm / 100.0).powf(0.35)
                            * (no2 / 100.0).powf(0.25);
                        ctx.put(TABLE, "concentration", &row, "value", Value::from(combined))?;
                    }
                }
                Ok(())
            }),
        )
        .reads(readings.clone())
        .writes(conc.clone())
        .error_bound(cfg.bound * INTERMEDIATE_BOUND_FRACTION);

        // Step 3a: aggregate concentration per zone.
        let c = cfg.clone();
        wf.bind(
            zones,
            FnStep::new(move |ctx: &StepContext| {
                let per_side = c.grid / c.zone_size;
                for zx in 0..per_side {
                    for zy in 0..per_side {
                        let mut sum = 0.0;
                        for dx in 0..c.zone_size {
                            for dy in 0..c.zone_size {
                                let row = det_row(zx * c.zone_size + dx, zy * c.zone_size + dy);
                                sum += ctx.get_f64(TABLE, "concentration", &row, "value", 0.0)?;
                            }
                        }
                        let avg = sum / (c.zone_size * c.zone_size) as f64;
                        ctx.put(TABLE, "zones", &zone_row(zx, zy), "value", Value::from(avg))?;
                    }
                }
                Ok(())
            }),
        )
        .reads(conc.clone())
        .reads(readings.clone())
        .writes(zonesc.clone())
        .error_bound(cfg.bound * INTERMEDIATE_BOUND_FRACTION);

        // Step 3b: interpolate the concentration between detectors (the
        // monitoring-station chart).
        let c = cfg.clone();
        wf.bind(
            interp,
            FnStep::new(move |ctx: &StepContext| {
                for x in 0..c.grid - 1 {
                    for y in 0..c.grid - 1 {
                        let mut sum = 0.0;
                        for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                            sum += ctx.get_f64(
                                TABLE,
                                "concentration",
                                &det_row(x + dx, y + dy),
                                "value",
                                0.0,
                            )?;
                        }
                        let row = format!("cell-{x:02}-{y:02}");
                        ctx.put(TABLE, "interp", &row, "value", Value::from(sum / 4.0))?;
                    }
                }
                Ok(())
            }),
        )
        .reads(conc.clone())
        .reads(readings.clone())
        .writes(interpc)
        .error_bound(cfg.bound * INTERMEDIATE_BOUND_FRACTION);

        // Step 4: zones above the reference become hotspots.
        let c = cfg.clone();
        wf.bind(
            hotspots,
            FnStep::new(move |ctx: &StepContext| {
                let rows = ctx.scan(TABLE, "zones", &ScanFilter::all())?;
                for row in rows {
                    let v = row.f64("value").unwrap_or(0.0);
                    let hot = v > c.hotspot_reference;
                    // Flags are encoded 1 (clear) / 2 (hotspot) so the
                    // container keeps a non-zero previous-state sum for the
                    // relative error metrics.
                    ctx.put(
                        TABLE,
                        "hotspots",
                        &row.key,
                        "hot",
                        Value::from(if hot { 2i64 } else { 1i64 }),
                    )?;
                    ctx.put(
                        TABLE,
                        "hotspots",
                        &row.key,
                        "excess",
                        Value::from((v - c.hotspot_reference).max(0.0)),
                    )?;
                }
                Ok(())
            }),
        )
        .reads(zonesc)
        .reads(readings.clone())
        .writes(hotsc.clone())
        .error_bound(cfg.bound * INTERMEDIATE_BOUND_FRACTION);

        // Step 5: additive model over the detected hotspots.
        wf.bind(
            index,
            FnStep::new(move |ctx: &StepContext| {
                let rows = ctx.scan(TABLE, "hotspots", &ScanFilter::all())?;
                // Additive model: each hotspot contributes its pollution
                // excess, so the index moves smoothly as fronts build up
                // rather than jumping by whole units per zone flip.
                let mut hot_count = 0.0;
                let mut hot_excess = 0.0;
                for row in &rows {
                    if row.f64("hot").unwrap_or(1.0) > 1.5 {
                        hot_count += 1.0;
                    }
                    hot_excess += row.f64("excess").unwrap_or(0.0);
                }
                let _ = hot_count;
                let index_value = 1.0 + hot_excess / 8.0;
                ctx.put(TABLE, "index", "region", "value", Value::from(index_value))?;
                ctx.put(
                    TABLE,
                    "index",
                    "region",
                    "class",
                    Value::from(risk_class(index_value)),
                )?;
                Ok(())
            }),
        )
        .reads(hotsc)
        .reads(readings)
        .writes(ContainerRef::column(TABLE, "index", "value"))
        .error_bound(cfg.bound);

        debug_assert!(wf.first_unbound().is_none());
        wf
    }

    fn output_step(&self) -> &str {
        "index"
    }

    fn name(&self) -> &str {
        "aqhi"
    }
}

/// Convenience error type alias for step closures.
pub type StepResult = Result<(), StepError>;

#[cfg(test)]
mod tests {
    use super::*;
    use smartflux_wms::{Scheduler, SynchronousPolicy};

    #[test]
    fn sensor_values_bounded_and_smooth() {
        for w in 0..WEEK_WAVES {
            let v = sensor_value(1, Pollutant::O3, 3, 4, w);
            assert!((0.0..=100.0).contains(&v));
        }
        let max_step = (1..WEEK_WAVES)
            .map(|w| {
                (sensor_value(1, Pollutant::Pm25, 2, 2, w)
                    - sensor_value(1, Pollutant::Pm25, 2, 2, w - 1))
                .abs()
            })
            .fold(0.0, f64::max);
        assert!(max_step < 15.0, "hourly jump {max_step} too steep");
    }

    #[test]
    fn risk_classes_match_paper_ranges() {
        assert_eq!(risk_class(1.0), "low");
        assert_eq!(risk_class(3.0), "low");
        assert_eq!(risk_class(5.0), "moderate");
        assert_eq!(risk_class(8.0), "high");
        assert_eq!(risk_class(12.0), "very-high");
    }

    #[test]
    fn workflow_runs_synchronously_and_produces_an_index() {
        let factory = AqhiFactory::with_bound(0.1);
        let store = DataStore::new();
        let wf = factory.build(&store);
        let mut sched = Scheduler::new(wf, store.clone(), Box::new(SynchronousPolicy));
        sched.run_waves(6).unwrap();
        let idx = store.get(TABLE, "index", "region", "value").unwrap();
        assert!(idx.is_some());
        let class = store
            .get(TABLE, "index", "region", "class")
            .unwrap()
            .unwrap();
        assert!(["low", "moderate", "high", "very-high"].contains(&class.as_text().unwrap()));
        // All detectors reported.
        assert_eq!(
            store
                .cell_count(&ContainerRef::family(TABLE, "readings"))
                .unwrap(),
            factory.config.detectors() * 3
        );
        assert_eq!(
            store
                .cell_count(&ContainerRef::family(TABLE, "zones"))
                .unwrap(),
            factory.config.zones()
        );
    }

    #[test]
    fn twin_builds_are_identical() {
        let factory = AqhiFactory::with_bound(0.05);
        let (s1, s2) = (DataStore::new(), DataStore::new());
        let mut a = Scheduler::new(factory.build(&s1), s1.clone(), Box::new(SynchronousPolicy));
        let mut b = Scheduler::new(factory.build(&s2), s2.clone(), Box::new(SynchronousPolicy));
        a.run_waves(5).unwrap();
        b.run_waves(5).unwrap();
        let c = ContainerRef::family(TABLE, "index");
        assert_eq!(s1.snapshot(&c).unwrap(), s2.snapshot(&c).unwrap());
        let c = ContainerRef::family(TABLE, "interp");
        assert_eq!(s1.snapshot(&c).unwrap(), s2.snapshot(&c).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let mut f1 = AqhiFactory::with_bound(0.05);
        f1.config.seed = 1;
        let mut f2 = AqhiFactory::with_bound(0.05);
        f2.config.seed = 2;
        let (s1, s2) = (DataStore::new(), DataStore::new());
        let mut a = Scheduler::new(f1.build(&s1), s1.clone(), Box::new(SynchronousPolicy));
        let mut b = Scheduler::new(f2.build(&s2), s2.clone(), Box::new(SynchronousPolicy));
        a.run_waves(2).unwrap();
        b.run_waves(2).unwrap();
        let c = ContainerRef::family(TABLE, "readings");
        assert_ne!(s1.snapshot(&c).unwrap(), s2.snapshot(&c).unwrap());
    }

    #[test]
    fn factory_declares_output_step() {
        let f = AqhiFactory::default();
        let store = DataStore::new();
        let wf = f.build(&store);
        let id = wf.graph().step_id(f.output_step()).unwrap();
        assert!(wf.graph().sinks().contains(&id));
        assert!(wf.info(id).error_bound().is_some());
    }
}

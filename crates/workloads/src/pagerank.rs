//! The PageRank/web-crawl workload — the first application class of §2.3.
//!
//! "Processes the content of crawled documents and builds an histogram with
//! the differences against previous states of links. It is only worthy to
//! process the new crawled documents if the differences in the link counts
//! is sufficient to significantly change the page rank of documents."
//!
//! A synthetic evolving web: page popularity follows slow periodic cycles,
//! the crawler refreshes a rotating subset of pages each wave, link
//! structure drifts with popularity, and the workflow recomputes link
//! histograms, word counts, PageRank scores and the top-k ranking — the
//! outputs §2.3 names (word counts, page ranking, reverse links).

use smartflux::eval::WorkloadFactory;
use smartflux_datastore::{ContainerRef, DataStore, ScanFilter, Value};
use smartflux_wms::{FnStep, GraphBuilder, StepContext, Workflow};

use crate::gen::{diurnal, periodic_noise, unit_hash};

/// Table name used by this workload.
pub const TABLE: &str = "web";
/// The popularity/link cycle length in waves (one crawl "week").
pub const CYCLE_WAVES: u64 = 168;

/// Configuration of the PageRank workload.
#[derive(Debug, Clone)]
pub struct PagerankConfig {
    /// Number of pages in the synthetic web.
    pub pages: usize,
    /// Outlinks per page.
    pub links_per_page: usize,
    /// Pages the crawler refreshes per wave.
    pub crawl_batch: usize,
    /// Power-iteration rounds per PageRank execution.
    pub iterations: usize,
    /// PageRank damping factor.
    pub damping: f64,
    /// Size of the published top-k ranking.
    pub top_k: usize,
    /// Error bound applied to every managed step.
    pub bound: f64,
    /// Feed seed.
    pub seed: u64,
}

impl Default for PagerankConfig {
    fn default() -> Self {
        Self {
            pages: 120,
            links_per_page: 6,
            crawl_batch: 30,
            iterations: 15,
            damping: 0.85,
            top_k: 10,
            bound: 0.10,
            seed: 23,
        }
    }
}

impl PagerankConfig {
    /// A configuration with the given uniform error bound.
    #[must_use]
    pub fn with_bound(bound: f64) -> Self {
        Self {
            bound,
            ..Self::default()
        }
    }
}

/// Popularity of a page at a wave, in `[0, 1]`: a slow periodic cycle plus
/// a fixed per-page base, busier during "waking hours" so quiet periods
/// produce few link changes (the correlated-regime premise of §2.3).
#[must_use]
pub fn popularity(seed: u64, page: usize, wave: u64) -> f64 {
    let base = unit_hash(seed ^ 0x70, page as u64, 0);
    let trend = periodic_noise(seed ^ 0x71, page as u64, wave, 24, CYCLE_WAVES);
    let activity = 0.15 + 0.85 * diurnal(wave, (page % 7) as f64);
    (0.3 * base + 0.7 * trend * activity).clamp(0.0, 1.0)
}

/// The `i`-th outlink of a page at a wave: preferential attachment toward
/// currently-popular pages, re-rolled only when the link's slot phase
/// matches (links churn slowly).
#[must_use]
pub fn outlink(cfg: &PagerankConfig, page: usize, slot: usize, wave: u64) -> usize {
    // Each slot refreshes on its own 12-wave sub-cycle so per-wave churn is
    // a fraction of the adjacency.
    let epoch = (wave + (slot as u64 * 12) / cfg.links_per_page as u64) / 12;
    // Sample candidates and keep the most popular — preferential
    // attachment without global state.
    let mut best = 0;
    let mut best_score = -1.0;
    for c in 0..4 {
        let candidate = (unit_hash(cfg.seed ^ 0x72, (page * 31 + slot * 7 + c) as u64, epoch)
            * cfg.pages as f64) as usize
            % cfg.pages;
        if candidate == page {
            continue;
        }
        let score = popularity(cfg.seed, candidate, wave);
        if score > best_score {
            best = candidate;
            best_score = score;
        }
    }
    best
}

/// Word count of a page at a wave (content volume drifts with popularity).
#[must_use]
pub fn word_count(cfg: &PagerankConfig, page: usize, wave: u64) -> f64 {
    let base = 300.0 + 500.0 * unit_hash(cfg.seed ^ 0x73, page as u64, 1);
    let drift = periodic_noise(cfg.seed ^ 0x74, page as u64, wave, 12, CYCLE_WAVES);
    (base * (0.8 + 0.4 * drift * popularity(cfg.seed, page, wave))).round()
}

fn page_row(p: usize) -> String {
    format!("page-{p:04}")
}

/// Builds the PageRank workflow over a store.
#[derive(Debug, Clone, Default)]
pub struct PagerankFactory {
    /// Workload parameters.
    pub config: PagerankConfig,
}

impl PagerankFactory {
    /// A factory with the given uniform error bound on all managed steps.
    #[must_use]
    pub fn with_bound(bound: f64) -> Self {
        Self {
            config: PagerankConfig::with_bound(bound),
        }
    }
}

impl WorkloadFactory for PagerankFactory {
    #[allow(clippy::too_many_lines)]
    fn build(&self, store: &DataStore) -> Workflow {
        let cfg = self.config.clone();
        for f in ["crawl", "histogram", "words", "ranks", "top"] {
            store
                .ensure_container(&ContainerRef::family(TABLE, f))
                .expect("container setup cannot fail on a fresh store");
        }

        let mut g = GraphBuilder::new("pagerank");
        let crawl = g.add_step("crawl");
        let histogram = g.add_step("link-histogram");
        let words = g.add_step("word-counts");
        let pagerank = g.add_step("pagerank");
        let ranking = g.add_step("ranking");
        g.add_edge(crawl, histogram).expect("valid edge");
        g.add_edge(crawl, words).expect("valid edge");
        g.add_edge(histogram, pagerank).expect("valid edge");
        g.add_edge(pagerank, ranking).expect("valid edge");
        let mut wf = Workflow::new(g.build().expect("pagerank graph is a DAG"));

        let crawlc = ContainerRef::family(TABLE, "crawl");
        let histc = ContainerRef::family(TABLE, "histogram");
        let wordsc = ContainerRef::family(TABLE, "words");
        let ranksc = ContainerRef::family(TABLE, "ranks");
        let topc = ContainerRef::family(TABLE, "top");

        // Step 1: the crawler refreshes a rotating batch of pages.
        let c = cfg.clone();
        wf.bind(
            crawl,
            FnStep::new(move |ctx: &StepContext| {
                let wave = ctx.wave();
                for b in 0..c.crawl_batch {
                    let page = ((wave as usize * c.crawl_batch + b) * 7919 + b) % c.pages;
                    let row = page_row(page);
                    for slot in 0..c.links_per_page {
                        let target = outlink(&c, page, slot, wave);
                        ctx.put(
                            TABLE,
                            "crawl",
                            &row,
                            &format!("link{slot}"),
                            Value::from(target as i64),
                        )?;
                    }
                    ctx.put(
                        TABLE,
                        "crawl",
                        &row,
                        "words",
                        Value::from(word_count(&c, page, wave)),
                    )?;
                }
                Ok(())
            }),
        )
        .source()
        .writes(crawlc.clone());

        // Step 2: histogram of link-count differences per target page
        // (in-degree — §2.3's "reverse links").
        let c = cfg.clone();
        wf.bind(
            histogram,
            FnStep::new(move |ctx: &StepContext| {
                let mut indegree = vec![0i64; c.pages];
                for row in ctx.scan(TABLE, "crawl", &ScanFilter::all())? {
                    for slot in 0..c.links_per_page {
                        if let Some(target) = row.f64(&format!("link{slot}")) {
                            let t = target as usize;
                            if t < c.pages {
                                indegree[t] += 1;
                            }
                        }
                    }
                }
                for (p, count) in indegree.iter().enumerate() {
                    ctx.put(
                        TABLE,
                        "histogram",
                        &page_row(p),
                        "indegree",
                        Value::from(*count),
                    )?;
                }
                Ok(())
            }),
        )
        .reads(crawlc.clone())
        .writes(histc.clone())
        .error_bound(cfg.bound * 0.5);

        // Step 3: aggregate word counts (a content-volume histogram).
        let c = cfg.clone();
        wf.bind(
            words,
            FnStep::new(move |ctx: &StepContext| {
                let mut buckets = [0i64; 8];
                for row in ctx.scan(TABLE, "crawl", &ScanFilter::all().with_qualifier("words"))? {
                    let w = row.f64("words").unwrap_or(0.0);
                    let b = ((w / 150.0) as usize).min(7);
                    buckets[b] += 1;
                }
                let _ = &c;
                for (i, count) in buckets.iter().enumerate() {
                    ctx.put(
                        TABLE,
                        "words",
                        &format!("bucket-{i}"),
                        "pages",
                        Value::from(*count),
                    )?;
                }
                Ok(())
            }),
        )
        .reads(crawlc.clone())
        .writes(wordsc)
        .error_bound(cfg.bound * 0.5);

        // Step 4: PageRank power iteration over the crawled adjacency.
        let c = cfg.clone();
        wf.bind(
            pagerank,
            FnStep::new(move |ctx: &StepContext| {
                // Load adjacency.
                let mut out: Vec<Vec<usize>> = vec![Vec::new(); c.pages];
                for row in ctx.scan(TABLE, "crawl", &ScanFilter::all())? {
                    let Some(p) = row
                        .key
                        .strip_prefix("page-")
                        .and_then(|s| s.parse::<usize>().ok())
                    else {
                        continue;
                    };
                    for slot in 0..c.links_per_page {
                        if let Some(target) = row.f64(&format!("link{slot}")) {
                            let t = target as usize;
                            if t < c.pages && t != p {
                                out[p].push(t);
                            }
                        }
                    }
                }
                let n = c.pages as f64;
                let mut rank = vec![1.0 / n; c.pages];
                for _ in 0..c.iterations {
                    let mut next = vec![(1.0 - c.damping) / n; c.pages];
                    for (p, targets) in out.iter().enumerate() {
                        if targets.is_empty() {
                            // Dangling mass spreads uniformly.
                            let share = c.damping * rank[p] / n;
                            for v in &mut next {
                                *v += share;
                            }
                        } else {
                            let share = c.damping * rank[p] / targets.len() as f64;
                            for &t in targets {
                                next[t] += share;
                            }
                        }
                    }
                    rank = next;
                }
                for (p, r) in rank.iter().enumerate() {
                    // Scaled to ~[0, 1000] for readability.
                    ctx.put(
                        TABLE,
                        "ranks",
                        &page_row(p),
                        "value",
                        Value::from(r * 1000.0 * n),
                    )?;
                }
                Ok(())
            }),
        )
        .reads(histc)
        .reads(crawlc)
        .writes(ranksc.clone())
        .error_bound(cfg.bound * 0.5);

        // Step 5: publish the top-k ranking — the workflow output whose
        // significance decision makers care about.
        let c = cfg.clone();
        wf.bind(
            ranking,
            FnStep::new(move |ctx: &StepContext| {
                let mut scores: Vec<(String, f64)> = ctx
                    .scan(TABLE, "ranks", &ScanFilter::all())?
                    .into_iter()
                    .map(|row| {
                        let v = row.f64("value").unwrap_or(0.0);
                        (row.key, v)
                    })
                    .collect();
                scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("ranks are finite"));
                for (i, (_page, score)) in scores.iter().take(c.top_k).enumerate() {
                    let row = format!("pos-{i:02}");
                    ctx.put(TABLE, "top", &row, "score", Value::from(*score))?;
                }
                Ok(())
            }),
        )
        .reads(ranksc)
        .writes(topc)
        .error_bound(cfg.bound);

        debug_assert!(wf.first_unbound().is_none());
        wf
    }

    fn output_step(&self) -> &str {
        "ranking"
    }

    fn name(&self) -> &str {
        "pagerank"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartflux_wms::{Scheduler, SynchronousPolicy};

    #[test]
    fn popularity_is_bounded_and_periodic() {
        for w in 0..CYCLE_WAVES {
            let p = popularity(23, 17, w);
            assert!((0.0..=1.0).contains(&p));
            assert_eq!(p, popularity(23, 17, w + CYCLE_WAVES));
        }
    }

    #[test]
    fn outlinks_avoid_self_and_stay_in_range() {
        let cfg = PagerankConfig::default();
        for page in [0, 13, 99] {
            for slot in 0..cfg.links_per_page {
                for wave in [0, 50, 140] {
                    let t = outlink(&cfg, page, slot, wave);
                    assert!(t < cfg.pages);
                    assert_ne!(t, page);
                }
            }
        }
    }

    #[test]
    fn links_churn_slowly() {
        let cfg = PagerankConfig::default();
        let mut changes = 0;
        let mut total = 0;
        for wave in 1..100 {
            for page in 0..20 {
                for slot in 0..cfg.links_per_page {
                    total += 1;
                    if outlink(&cfg, page, slot, wave) != outlink(&cfg, page, slot, wave - 1) {
                        changes += 1;
                    }
                }
            }
        }
        let rate = changes as f64 / total as f64;
        assert!(rate < 0.35, "links churn too fast: {rate}");
        assert!(rate > 0.005, "links never churn: {rate}");
    }

    #[test]
    fn workflow_produces_a_ranking() {
        let factory = PagerankFactory::with_bound(0.1);
        let store = DataStore::new();
        let wf = factory.build(&store);
        assert_eq!(wf.graph().len(), 5);
        let mut sched = Scheduler::new(wf, store.clone(), Box::new(SynchronousPolicy));
        // Crawl enough waves to cover all pages at least once.
        sched.run_waves(8).unwrap();
        let top = store.scan(TABLE, "top", &ScanFilter::all()).unwrap();
        assert_eq!(top.len(), factory.config.top_k);
        // Scores are sorted descending by position.
        let scores: Vec<f64> = top.iter().filter_map(|r| r.f64("score")).collect();
        for pair in scores.windows(2) {
            assert!(pair[0] >= pair[1], "ranking must be sorted: {scores:?}");
        }
        // Power iteration conserves probability mass: Σ rank = 1, and each
        // stored value is rank × 1000 × n, so the stored total is 1000 × n.
        let total: f64 = store
            .scan(TABLE, "ranks", &ScanFilter::all())
            .unwrap()
            .iter()
            .filter_map(|r| r.f64("value"))
            .sum();
        let expected = 1000.0 * factory.config.pages as f64;
        assert!(
            (total - expected).abs() / expected < 0.01,
            "rank mass {total} vs expected {expected}"
        );
    }

    #[test]
    fn twin_builds_are_identical() {
        let factory = PagerankFactory::with_bound(0.05);
        let (s1, s2) = (DataStore::new(), DataStore::new());
        let mut a = Scheduler::new(factory.build(&s1), s1.clone(), Box::new(SynchronousPolicy));
        let mut b = Scheduler::new(factory.build(&s2), s2.clone(), Box::new(SynchronousPolicy));
        a.run_waves(6).unwrap();
        b.run_waves(6).unwrap();
        for fam in ["top", "ranks", "histogram"] {
            let c = ContainerRef::family(TABLE, fam);
            assert_eq!(s1.snapshot(&c).unwrap(), s2.snapshot(&c).unwrap(), "{fam}");
        }
    }

    #[test]
    fn output_step_is_the_bounded_sink() {
        let factory = PagerankFactory::default();
        let store = DataStore::new();
        let wf = factory.build(&store);
        let id = wf.graph().step_id(factory.output_step()).unwrap();
        assert!(wf.graph().sinks().contains(&id));
        assert_eq!(wf.info(id).error_bound(), Some(factory.config.bound));
    }
}

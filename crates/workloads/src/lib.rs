//! Benchmark workloads for the SmartFlux reproduction.
//!
//! Three realistic continuous-processing applications, each exposing a
//! [`WorkloadFactory`] so the evaluation harness can run identical seeded
//! twins:
//!
//! - [`lrb`] — a variable tolling system for an urban expressway structure
//!   based on the Linear Road Benchmark (Fig. 5 of the paper). The paper
//!   feeds it MIT-SIMLab traces; we substitute a deterministic seeded
//!   micro-simulator producing the same statistical regimes (smoothly
//!   drifting congestion, occasional accidents, historical queries).
//! - [`aqhi`] — an Air Quality Health Index monitor over a grid of
//!   O3/PM2.5/NO2 detectors (Fig. 6), with smooth spatio-temporal
//!   generating functions exactly as the paper describes.
//! - [`fire`] — the motivational fire-risk assessment workflow (Fig. 2)
//!   with the diurnal temperature/precipitation/wind curves of Fig. 3.
//! - [`pagerank`] — the web-crawl/PageRank application class of §2.3
//!   (link-difference histograms, word counts, top-k rankings).
//!
//! [`WorkloadFactory`]: smartflux::eval::WorkloadFactory

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aqhi;
pub mod fire;
pub mod gen;
pub mod lrb;
pub mod pagerank;

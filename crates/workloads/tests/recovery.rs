//! Kill-at-wave-k crash-recovery determinism over the LRB workload.
//!
//! The durability acceptance test from the paper-reproduction roadmap: a
//! 200-wave Linear Road run interrupted at an arbitrary wave and recovered
//! via [`SmartFluxSession::recover`] must produce wave decisions and final
//! store contents identical to the uninterrupted run.

use std::path::PathBuf;

use smartflux::eval::WorkloadFactory;
use smartflux::{
    recover_store, CoreError, DurabilityError, DurabilityOptions, EngineConfig, SmartFluxSession,
    SyncPolicy, WaveDiagnostics,
};
use smartflux_datastore::DataStore;
use smartflux_workloads::lrb::LrbFactory;

const TOTAL_WAVES: u64 = 200;
const CHECKPOINT_INTERVAL: u64 = 20;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "smartflux-lrb-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &PathBuf) -> EngineConfig {
    EngineConfig::new()
        .with_training_waves(30)
        .with_quality_gates(0.3, 0.3)
        .with_seed(11)
        .with_durability(
            DurabilityOptions::new(dir)
                .with_sync(SyncPolicy::Never)
                .with_checkpoint_interval(CHECKPOINT_INTERVAL),
        )
}

fn fresh_session(dir: &PathBuf) -> SmartFluxSession {
    let store = DataStore::new();
    let workflow = LrbFactory::with_bound(0.1).build(&store);
    SmartFluxSession::new(workflow, store, config(dir)).expect("session builds")
}

fn run_waves(session: &mut SmartFluxSession, count: u64) {
    for _ in 0..count {
        session.run_wave().expect("wave runs");
    }
}

/// Runs the full uninterrupted reference and returns its per-wave
/// diagnostics plus the final store state and clock.
fn reference_run(dir: &PathBuf) -> (Vec<WaveDiagnostics>, smartflux_datastore::StoreState, u64) {
    let mut session = fresh_session(dir);
    run_waves(&mut session, TOTAL_WAVES);
    let diags = session.diagnostics();
    let store = session.scheduler().store().clone();
    drop(session);
    (diags, store.export_state(), store.clock())
}

#[test]
fn kill_at_wave_k_recovery_is_deterministic() {
    let ref_dir = tmp_dir("ref");
    let (ref_diags, ref_state, ref_clock) = reference_run(&ref_dir);
    assert_eq!(ref_diags.len() as u64, TOTAL_WAVES);

    // Kill points straddle the phases: mid-training (37), early
    // application (95) and deep application (160). None is a checkpoint
    // multiple, so recovery always rewinds to an earlier wave and must
    // re-derive the in-between decisions identically.
    for kill_wave in [37_u64, 95, 160] {
        let dir = tmp_dir(&format!("kill{kill_wave}"));

        // The doomed run: `drop` without any orderly checkpoint stands in
        // for the crash — everything after the last checkpoint interval
        // survives only in the WAL, which recovery deliberately discards
        // in favour of deterministic re-execution.
        let mut doomed = fresh_session(&dir);
        run_waves(&mut doomed, kill_wave);
        let state_at_kill = doomed.scheduler().store().export_state();
        drop(doomed);

        // The standalone store-level path replays checkpoint + WAL tail
        // and must land exactly on the killed run's store.
        let recovered = recover_store(&dir).expect("store recovery succeeds");
        assert_eq!(
            recovered.store.export_state(),
            state_at_kill,
            "WAL replay diverged from the killed store at wave {kill_wave}"
        );
        assert_eq!(recovered.last_wave, kill_wave);
        assert!(!recovered.torn_tail, "clean shutdown left a torn tail");

        // The engine-level path: resume from the checkpoint and replay the
        // remaining waves of the schedule.
        let throwaway = DataStore::new();
        let workflow = LrbFactory::with_bound(0.1).build(&throwaway);
        let mut resumed =
            SmartFluxSession::recover(workflow, config(&dir)).expect("session recovery succeeds");
        let resume_wave = resumed.scheduler().next_wave();
        let checkpoint_wave = kill_wave - kill_wave % CHECKPOINT_INTERVAL;
        assert_eq!(
            resume_wave,
            checkpoint_wave + 1,
            "recovery must resume right after the last checkpoint"
        );
        run_waves(&mut resumed, TOTAL_WAVES - checkpoint_wave);

        // Every wave decision made after recovery matches the
        // uninterrupted run wave for wave.
        let resumed_diags = resumed.diagnostics();
        assert_eq!(
            resumed_diags.len() as u64,
            TOTAL_WAVES - checkpoint_wave,
            "one diagnostics entry per re-executed wave"
        );
        for d in &resumed_diags {
            let reference = ref_diags
                .iter()
                .find(|r| r.wave == d.wave)
                .expect("reference has every wave");
            assert_eq!(
                d.decisions, reference.decisions,
                "decisions diverged at wave {} after kill at {kill_wave}",
                d.wave
            );
            assert_eq!(
                d.impacts, reference.impacts,
                "impacts diverged at wave {} after kill at {kill_wave}",
                d.wave
            );
            assert_eq!(
                d.training, reference.training,
                "phase diverged at {}",
                d.wave
            );
        }

        // And the stores converge bit for bit, clock included.
        let store = resumed.scheduler().store().clone();
        drop(resumed);
        assert_eq!(
            store.export_state(),
            ref_state,
            "final store diverged after kill at {kill_wave}"
        );
        assert_eq!(store.clock(), ref_clock);

        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn recover_without_checkpoint_is_a_typed_error() {
    let dir = tmp_dir("nocheckpoint");
    // A run shorter than one checkpoint interval leaves only WAL records.
    let mut session = fresh_session(&dir);
    run_waves(&mut session, CHECKPOINT_INTERVAL / 2);
    drop(session);

    let throwaway = DataStore::new();
    let workflow = LrbFactory::with_bound(0.1).build(&throwaway);
    let err = SmartFluxSession::recover(workflow, config(&dir)).expect_err("no checkpoint yet");
    assert!(
        matches!(err, CoreError::Durability(DurabilityError::NoCheckpoint(_))),
        "unexpected error: {err}"
    );

    // Without durability configured at all, recovery is refused up front.
    let throwaway = DataStore::new();
    let workflow = LrbFactory::with_bound(0.1).build(&throwaway);
    let plain = EngineConfig::new().with_seed(11);
    let err = SmartFluxSession::recover(workflow, plain).expect_err("not configured");
    assert!(matches!(
        err,
        CoreError::Durability(DurabilityError::NotConfigured)
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_bumps_the_telemetry_counter() {
    let dir = tmp_dir("telemetry");
    let mut session = fresh_session(&dir);
    run_waves(&mut session, CHECKPOINT_INTERVAL + 3);
    drop(session);

    let throwaway = DataStore::new();
    let workflow = LrbFactory::with_bound(0.1).build(&throwaway);
    let recovered = SmartFluxSession::recover(workflow, config(&dir).with_telemetry(true))
        .expect("recovery succeeds");
    let snapshot = recovered.telemetry().snapshot();
    assert_eq!(snapshot.counter(smartflux::telemetry_names::RECOVERIES), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

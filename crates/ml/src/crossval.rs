//! Stratified k-fold cross-validation (the paper's 10-fold test phase).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::metrics::ConfusionMatrix;
use crate::Classifier;

/// Produces stratified fold assignments: positives and negatives are split
/// separately so every fold preserves the class ratio.
///
/// Returns, for each fold, the list of instance indices belonging to it.
/// Folds are deterministic for a given seed.
///
/// # Panics
///
/// Panics if `k < 2` or `k > labels.len()`.
#[must_use]
pub fn stratified_folds(labels: &[bool], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least two folds");
    assert!(k <= labels.len(), "more folds than instances");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);

    let mut folds = vec![Vec::new(); k];
    for (j, &i) in pos.iter().enumerate() {
        folds[j % k].push(i);
    }
    // Continue the round-robin where the positives left off instead of
    // restarting at fold 0. With both classes starting at fold 0, the
    // `len % k` leftovers of BOTH classes piled onto the early folds,
    // overloading them by up to two instances and skewing the class
    // ratio whenever the minority class was small.
    let offset = pos.len() % k;
    for (j, &i) in neg.iter().enumerate() {
        folds[(offset + j) % k].push(i);
    }
    for fold in &mut folds {
        fold.sort_unstable();
    }
    let largest = folds.iter().map(Vec::len).max().unwrap_or(0);
    let smallest = folds.iter().map(Vec::len).min().unwrap_or(0);
    debug_assert!(
        largest - smallest <= 1,
        "stratified folds out of balance: sizes span {smallest}..{largest}"
    );
    folds
}

/// Result of a cross-validation run: the pooled confusion matrix across all
/// held-out folds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossValResult {
    /// Pooled confusion counts over every held-out instance.
    pub confusion: ConfusionMatrix,
    /// Number of folds evaluated.
    pub folds: usize,
}

impl CrossValResult {
    /// Cross-validated accuracy.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }

    /// Cross-validated precision.
    #[must_use]
    pub fn precision(&self) -> f64 {
        self.confusion.precision()
    }

    /// Cross-validated recall.
    #[must_use]
    pub fn recall(&self) -> f64 {
        self.confusion.recall()
    }
}

/// Runs k-fold cross-validation of `make_model` over `data`.
///
/// `make_model` is called once per fold to obtain a fresh classifier, which
/// is trained on the other `k−1` folds and evaluated on the held-out fold.
/// This is how SmartFlux's test phase "assesses the quality of the trained
/// model" before entering the application phase.
///
/// # Errors
///
/// Propagates training errors from the base classifier.
///
/// # Panics
///
/// Panics if `k < 2` or `k > data.len()`.
///
/// # Example
///
/// ```
/// use smartflux_ml::crossval::cross_validate;
/// use smartflux_ml::{Dataset, DecisionTree};
///
/// let data = Dataset::new(
///     (0..50).map(|i| vec![i as f64]).collect(),
///     (0..50).map(|i| i >= 25).collect(),
/// ).unwrap();
/// let result = cross_validate(&data, 10, 0, || DecisionTree::new()).unwrap();
/// assert!(result.accuracy() > 0.9);
/// ```
pub fn cross_validate<C, F>(
    data: &Dataset,
    k: usize,
    seed: u64,
    make_model: F,
) -> Result<CrossValResult, MlError>
where
    C: Classifier,
    F: Fn() -> C,
{
    let folds = stratified_folds(data.y(), k, seed);
    let mut pooled = ConfusionMatrix::default();
    for held_out in &folds {
        let train_idx: Vec<usize> = (0..data.len()).filter(|i| !held_out.contains(i)).collect();
        if train_idx.is_empty() {
            continue;
        }
        let train = data.subset(&train_idx);
        let mut model = make_model();
        model.fit(&train)?;
        let actual: Vec<bool> = held_out.iter().map(|&i| data.label(i)).collect();
        let predicted: Vec<bool> = held_out
            .iter()
            .map(|&i| model.predict(data.features(i)))
            .collect();
        pooled.merge(&ConfusionMatrix::from_pairs(&actual, &predicted));
    }
    Ok(CrossValResult {
        confusion: pooled,
        folds: folds.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DecisionTree;

    #[test]
    fn folds_partition_all_instances() {
        let labels: Vec<bool> = (0..37).map(|i| i % 3 == 0).collect();
        let folds = stratified_folds(&labels, 5, 42);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn folds_preserve_class_ratio() {
        let labels: Vec<bool> = (0..100).map(|i| i < 20).collect(); // 20% positive
        let folds = stratified_folds(&labels, 10, 7);
        for fold in &folds {
            let pos = fold.iter().filter(|&&i| labels[i]).count();
            assert_eq!(pos, 2, "each fold should hold 2 of the 20 positives");
        }
    }

    #[test]
    fn fold_sizes_never_spread_more_than_one() {
        // Exercise awkward (n, k, positive-count) combinations where the
        // old both-classes-start-at-fold-0 assignment piled two leftover
        // instances onto the early folds (e.g. 13 pos + 24 neg over 5
        // folds put fold 0 at 8 while fold 4 sat at 7 — or worse when
        // both remainders overlapped).
        for (n, k, modulus) in [(37, 5, 3), (23, 4, 2), (101, 10, 7), (17, 8, 5), (49, 6, 4)] {
            let labels: Vec<bool> = (0..n).map(|i| i % modulus == 0).collect();
            let folds = stratified_folds(&labels, k, 11);
            let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
            let spread = sizes.iter().max().unwrap() - sizes.iter().min().unwrap();
            assert!(spread <= 1, "n={n} k={k}: fold sizes {sizes:?}");
            // Per-class spread stays ≤1 too (stratification proper).
            let pos_sizes: Vec<usize> = folds
                .iter()
                .map(|f| f.iter().filter(|&&i| labels[i]).count())
                .collect();
            let pos_spread = pos_sizes.iter().max().unwrap() - pos_sizes.iter().min().unwrap();
            assert!(pos_spread <= 1, "n={n} k={k}: positives {pos_sizes:?}");
        }
    }

    #[test]
    fn small_minority_is_not_piled_onto_early_folds() {
        // 7 positives + 13 negatives over 4 folds: the old assignment
        // gave fold 0 both a 2nd positive AND a 4th negative (6 total vs
        // 4 in fold 3). The offset keeps every fold at 5 instances.
        let labels: Vec<bool> = (0..20).map(|i| i < 7).collect();
        let folds = stratified_folds(&labels, 4, 3);
        for fold in &folds {
            assert_eq!(fold.len(), 5, "folds {folds:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let labels: Vec<bool> = (0..50).map(|i| i % 2 == 0).collect();
        assert_eq!(
            stratified_folds(&labels, 5, 9),
            stratified_folds(&labels, 5, 9)
        );
    }

    #[test]
    fn cross_validation_on_separable_data() {
        let data = Dataset::new(
            (0..60).map(|i| vec![i as f64]).collect(),
            (0..60).map(|i| i >= 30).collect(),
        )
        .unwrap();
        let r = cross_validate(&data, 10, 0, DecisionTree::new).unwrap();
        assert_eq!(r.folds, 10);
        assert!(r.accuracy() > 0.9, "accuracy {}", r.accuracy());
        assert!(r.recall() > 0.85);
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn one_fold_panics() {
        let _ = stratified_folds(&[true, false], 1, 0);
    }

    #[test]
    #[should_panic(expected = "more folds than instances")]
    fn too_many_folds_panics() {
        let _ = stratified_folds(&[true, false], 3, 0);
    }
}

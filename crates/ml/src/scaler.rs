//! Feature standardisation.

/// A z-score feature scaler: `(x - mean) / std` per column.
///
/// Scale-sensitive models (logistic regression, SVM, MLP) embed one of these
/// so callers can feed raw impact values — which span nine orders of
/// magnitude across LRB steps (Fig. 7) — without manual preprocessing.
///
/// # Example
///
/// ```
/// use smartflux_ml::StandardScaler;
///
/// let scaler = StandardScaler::fit(&[vec![0.0, 10.0], vec![2.0, 30.0]]);
/// let t = scaler.transform(&[1.0, 20.0]);
/// assert!(t.iter().all(|v| v.abs() < 1e-9)); // both columns centred
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Computes per-column means and standard deviations.
    ///
    /// Columns with zero variance get a standard deviation of 1 so the
    /// transform is well defined (they map to 0).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty.
    #[must_use]
    pub fn fit(x: &[Vec<f64>]) -> Self {
        assert!(!x.is_empty(), "cannot fit a scaler to an empty matrix");
        let n = x.len() as f64;
        let width = x[0].len();
        let mut means = vec![0.0; width];
        for row in x {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; width];
        for row in x {
            for ((var, v), m) in vars.iter_mut().zip(row).zip(&means) {
                *var += (v - m) * (v - m);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { means, stds }
    }

    /// Standardises one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` has a different width from the fitted matrix.
    #[must_use]
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "feature width mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Standardises a whole matrix.
    #[must_use]
    pub fn transform_all(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.transform(r)).collect()
    }

    /// Number of feature columns this scaler was fitted on.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.means.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardises_to_zero_mean_unit_variance() {
        let x = vec![vec![1.0], vec![3.0], vec![5.0]];
        let s = StandardScaler::fit(&x);
        let t = s.transform_all(&x);
        let mean: f64 = t.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        let var: f64 = t.iter().map(|r| r[0] * r[0]).sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let x = vec![vec![7.0], vec![7.0]];
        let s = StandardScaler::fit(&x);
        assert_eq!(s.transform(&[7.0]), vec![0.0]);
        // And does not blow up on out-of-distribution values.
        assert_eq!(s.transform(&[9.0]), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn width_mismatch_panics() {
        let s = StandardScaler::fit(&[vec![1.0, 2.0]]);
        let _ = s.transform(&[1.0]);
    }
}

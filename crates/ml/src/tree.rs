//! CART-style decision trees (the J48 stand-in).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::arena::TreeArena;
use crate::codec;
use crate::dataset::Dataset;
use crate::error::MlError;
use crate::Classifier;

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        /// Fraction of positive training instances at this leaf.
        p_positive: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A binary decision tree trained with Gini impurity.
///
/// Serves two roles: the standalone J48-style classifier of §3.2's
/// comparison, and the base learner of [`RandomForest`]. Feature
/// subsampling (`max_features`) is only used in the forest role.
///
/// [`RandomForest`]: crate::RandomForest
///
/// # Example
///
/// ```
/// use smartflux_ml::{Classifier, Dataset, DecisionTree};
///
/// let data = Dataset::new(
///     vec![vec![1.0], vec![2.0], vec![8.0], vec![9.0]],
///     vec![false, false, true, true],
/// ).unwrap();
/// let mut tree = DecisionTree::new();
/// tree.fit(&data).unwrap();
/// assert!(tree.predict(&[7.5]));
/// assert!(!tree.predict(&[1.5]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    max_depth: usize,
    min_samples_split: usize,
    max_features: Option<usize>,
    seed: u64,
    root: Option<Node>,
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionTree {
    /// A tree with default hyper-parameters (depth ≤ 16, splits need ≥ 2
    /// instances, all features considered at every split).
    #[must_use]
    pub fn new() -> Self {
        Self {
            max_depth: 16,
            min_samples_split: 2,
            max_features: None,
            seed: 0,
            root: None,
        }
    }

    /// Sets the maximum tree depth (the paper's RF tuning knob).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "max depth must be positive");
        self.max_depth = depth;
        self
    }

    /// Sets the minimum number of instances required to split a node.
    #[must_use]
    pub fn with_min_samples_split(mut self, min: usize) -> Self {
        self.min_samples_split = min.max(2);
        self
    }

    /// Considers only a random subset of `k` features at each split
    /// (Random-Forest-style decorrelation).
    #[must_use]
    pub fn with_max_features(mut self, k: usize) -> Self {
        self.max_features = Some(k.max(1));
        self
    }

    /// Seeds the feature-subsampling RNG.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Depth of the fitted tree (0 for a single leaf). Returns `None`
    /// before fitting.
    #[must_use]
    pub fn depth(&self) -> Option<usize> {
        fn depth_of(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth_of(left).max(depth_of(right)),
            }
        }
        self.root.as_ref().map(depth_of)
    }

    fn build(&self, data: &Dataset, indices: &[usize], depth: usize, rng: &mut StdRng) -> Node {
        let positives = indices.iter().filter(|&&i| data.label(i)).count();
        let p_positive = positives as f64 / indices.len() as f64;

        let pure = positives == 0 || positives == indices.len();
        if pure || depth >= self.max_depth || indices.len() < self.min_samples_split {
            return Node::Leaf { p_positive };
        }

        let Some((feature, threshold)) = self.best_split(data, indices, rng) else {
            return Node::Leaf { p_positive };
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| data.features(i)[feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return Node::Leaf { p_positive };
        }

        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(data, &left_idx, depth + 1, rng)),
            right: Box::new(self.build(data, &right_idx, depth + 1, rng)),
        }
    }

    /// Finds the `(feature, threshold)` minimising weighted Gini impurity,
    /// or `None` when no split separates anything.
    fn best_split(
        &self,
        data: &Dataset,
        indices: &[usize],
        rng: &mut StdRng,
    ) -> Option<(usize, f64)> {
        let mut features: Vec<usize> = (0..data.n_features()).collect();
        if let Some(k) = self.max_features {
            features.shuffle(rng);
            features.truncate(k.min(features.len()));
            features.sort_unstable(); // deterministic evaluation order
        }

        let total = indices.len() as f64;
        let mut best: Option<(f64, usize, f64)> = None; // (gini, feature, threshold)

        for &f in &features {
            // Sort instances by this feature value.
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|&a, &b| data.features(a)[f].total_cmp(&data.features(b)[f]));

            let total_pos = order.iter().filter(|&&i| data.label(i)).count() as f64;
            let mut left_pos = 0.0;
            for (k, window) in order.windows(2).enumerate() {
                let (i, j) = (window[0], window[1]);
                if data.label(i) {
                    left_pos += 1.0;
                }
                let vi = data.features(i)[f];
                let vj = data.features(j)[f];
                if vi == vj {
                    continue; // cannot split between equal values
                }
                let left_n = (k + 1) as f64;
                let right_n = total - left_n;
                let right_pos = total_pos - left_pos;
                let gini = |pos: f64, n: f64| {
                    let p = pos / n;
                    2.0 * p * (1.0 - p)
                };
                let weighted = (left_n / total) * gini(left_pos, left_n)
                    + (right_n / total) * gini(right_pos, right_n);
                let threshold = f64::midpoint(vi, vj);
                if best.is_none_or(|(g, _, _)| weighted < g) {
                    best = Some((weighted, f, threshold));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }

    /// Serialises the fitted tree into a compact line-based text form
    /// (preorder; `S <feature> <threshold>` for splits, `L <p>` for
    /// leaves). Returns `None` before fitting.
    #[must_use]
    pub fn to_text(&self) -> Option<String> {
        fn emit(node: &Node, out: &mut String) {
            match node {
                Node::Leaf { p_positive } => {
                    out.push_str(&format!("L {p_positive:e}\n"));
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    out.push_str(&format!("S {feature} {threshold:e}\n"));
                    emit(left, out);
                    emit(right, out);
                }
            }
        }
        let root = self.root.as_ref()?;
        let mut out = String::new();
        emit(root, &mut out);
        Some(out)
    }

    /// Reconstructs a fitted tree from its [`to_text`](Self::to_text) form.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        fn parse<'a, I: Iterator<Item = &'a str>>(lines: &mut I) -> Result<Node, String> {
            let line = lines.next().ok_or("unexpected end of tree text")?;
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("L") => {
                    let p: f64 = parts
                        .next()
                        .ok_or("leaf missing probability")?
                        .parse()
                        .map_err(|e| format!("bad leaf probability: {e}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("leaf probability {p} out of range"));
                    }
                    Ok(Node::Leaf { p_positive: p })
                }
                Some("S") => {
                    let feature: usize = parts
                        .next()
                        .ok_or("split missing feature")?
                        .parse()
                        .map_err(|e| format!("bad split feature: {e}"))?;
                    let threshold: f64 = parts
                        .next()
                        .ok_or("split missing threshold")?
                        .parse()
                        .map_err(|e| format!("bad split threshold: {e}"))?;
                    let left = parse(lines)?;
                    let right = parse(lines)?;
                    Ok(Node::Split {
                        feature,
                        threshold,
                        left: Box::new(left),
                        right: Box::new(right),
                    })
                }
                other => Err(format!("unknown node tag {other:?}")),
            }
        }
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let root = parse(&mut lines)?;
        if lines.next().is_some() {
            return Err("trailing lines after tree".into());
        }
        let mut tree = DecisionTree::new();
        tree.root = Some(root);
        Ok(tree)
    }

    /// Appends the fitted tree in binary preorder form (tag 0 = leaf with
    /// probability bits, tag 1 = split with feature index and threshold
    /// bits). Returns `false` (appending nothing) before fitting.
    pub(crate) fn write_binary(&self, out: &mut Vec<u8>) -> bool {
        fn emit(node: &Node, out: &mut Vec<u8>) {
            match node {
                Node::Leaf { p_positive } => {
                    codec::put_u8(out, 0);
                    codec::put_f64(out, *p_positive);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    codec::put_u8(out, 1);
                    codec::put_u32(out, *feature as u32);
                    codec::put_f64(out, *threshold);
                    emit(left, out);
                    emit(right, out);
                }
            }
        }
        match &self.root {
            Some(root) => {
                emit(root, out);
                true
            }
            None => false,
        }
    }

    /// Reads one tree in [`write_binary`](Self::write_binary) form from
    /// the reader, consuming exactly the tree's bytes. Restores default
    /// hyper-parameters (they do not affect a fitted tree's predictions).
    pub(crate) fn read_binary(r: &mut codec::Reader<'_>) -> Result<Self, MlError> {
        // Depth-bounded so corrupt bytes cannot encode a pathologically
        // nested chain of splits and overflow the stack during recovery.
        // Real trees never exceed their max_depth (default 16).
        const MAX_DECODE_DEPTH: usize = 512;
        fn parse(r: &mut codec::Reader<'_>, depth: usize) -> Result<Node, MlError> {
            if depth > MAX_DECODE_DEPTH {
                return Err(MlError::Decode(format!(
                    "tree nesting exceeds {MAX_DECODE_DEPTH} levels"
                )));
            }
            match r.u8()? {
                0 => {
                    let p = r.f64()?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(MlError::Decode(format!(
                            "leaf probability {p} out of range"
                        )));
                    }
                    Ok(Node::Leaf { p_positive: p })
                }
                1 => {
                    let feature = r.u32()? as usize;
                    let threshold = r.f64()?;
                    if !threshold.is_finite() {
                        return Err(MlError::Decode(format!(
                            "split threshold {threshold} is not finite"
                        )));
                    }
                    let left = parse(r, depth + 1)?;
                    let right = parse(r, depth + 1)?;
                    Ok(Node::Split {
                        feature,
                        threshold,
                        left: Box::new(left),
                        right: Box::new(right),
                    })
                }
                tag => Err(MlError::Decode(format!("unknown tree node tag {tag}"))),
            }
        }
        let root = parse(r, 0)?;
        let mut tree = DecisionTree::new();
        tree.root = Some(root);
        Ok(tree)
    }

    /// Appends the fitted tree to a forest arena: the root slot is
    /// reserved first, then each split reserves its two children as an
    /// adjacent pair before recursing, so sibling nodes always end up
    /// next to each other. Each `emit` returns its subtree's minimum
    /// leaf depth so the arena can record the tree's check-free walk
    /// prefix. Returns `false` (appending nothing) before fitting.
    pub(crate) fn flatten_into(&self, arena: &mut TreeArena) -> bool {
        fn emit(node: &Node, at: u32, arena: &mut TreeArena) -> u32 {
            match node {
                Node::Leaf { p_positive } => {
                    arena.set_leaf(at, *p_positive);
                    0
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let kids = arena.alloc_pair();
                    arena.set_split(at, *feature as u32, *threshold, kids);
                    let l = emit(left, kids, arena);
                    let r = emit(right, kids + 1, arena);
                    1 + l.min(r)
                }
            }
        }
        match &self.root {
            Some(root) => {
                let at = arena.alloc_root();
                let depth = emit(root, at, arena);
                arena.record_depth(depth);
                true
            }
            None => false,
        }
    }

    /// The reference prediction path: a pointer walk over the `Box`ed
    /// training representation. The forest predicts through its
    /// flattened [`TreeArena`] instead; this walk is kept as the
    /// independent oracle the parity suite compares against.
    fn leaf_probability(&self, features: &[f64]) -> f64 {
        let mut node = match &self.root {
            Some(n) => n,
            None => return 0.5,
        };
        loop {
            match node {
                Node::Leaf { p_positive } => return *p_positive,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.root = Some(self.build(data, &indices, 0, &mut rng));
        Ok(())
    }

    fn is_fitted(&self) -> bool {
        self.root.is_some()
    }

    fn predict_proba(&self, features: &[f64]) -> f64 {
        self.leaf_probability(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> Dataset {
        // positive iff x > 5
        Dataset::new(
            (0..20).map(|i| vec![i as f64]).collect(),
            (0..20).map(|i| i > 5).collect(),
        )
        .unwrap()
    }

    #[test]
    fn learns_a_threshold() {
        let mut t = DecisionTree::new();
        t.fit(&step_data()).unwrap();
        assert!(t.predict(&[10.0]));
        assert!(!t.predict(&[2.0]));
        assert_eq!(t.depth(), Some(1));
    }

    #[test]
    fn pure_dataset_is_a_leaf() {
        let d = Dataset::new(vec![vec![1.0], vec![2.0]], vec![true, true]).unwrap();
        let mut t = DecisionTree::new();
        t.fit(&d).unwrap();
        assert_eq!(t.depth(), Some(0));
        assert_eq!(t.predict_proba(&[100.0]), 1.0);
    }

    #[test]
    fn depth_limit_is_respected() {
        // XOR-ish data needs depth 2; cap at 1.
        let d = Dataset::new(
            vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![1.0, 1.0],
            ],
            vec![false, true, true, false],
        )
        .unwrap();
        let mut t = DecisionTree::new().with_max_depth(1);
        t.fit(&d).unwrap();
        assert!(t.depth().unwrap() <= 1);

        let mut deep = DecisionTree::new();
        deep.fit(&d).unwrap();
        // Unconstrained, the tree solves XOR exactly.
        assert!(deep.predict(&[0.0, 1.0]));
        assert!(!deep.predict(&[1.0, 1.0]));
    }

    #[test]
    fn unfitted_returns_prior() {
        let t = DecisionTree::new();
        assert_eq!(t.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    fn constant_features_yield_leaf() {
        let d = Dataset::new(vec![vec![3.0], vec![3.0]], vec![true, false]).unwrap();
        let mut t = DecisionTree::new();
        t.fit(&d).unwrap();
        assert_eq!(t.depth(), Some(0));
        assert_eq!(t.predict_proba(&[3.0]), 0.5);
    }

    #[test]
    fn text_roundtrip_preserves_predictions() {
        let mut t = DecisionTree::new();
        t.fit(&step_data()).unwrap();
        let text = t.to_text().unwrap();
        let restored = DecisionTree::from_text(&text).unwrap();
        for x in -5..30 {
            assert_eq!(
                t.predict_proba(&[f64::from(x)]),
                restored.predict_proba(&[f64::from(x)])
            );
        }
        assert!(DecisionTree::new().to_text().is_none());
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(DecisionTree::from_text("").is_err());
        assert!(DecisionTree::from_text("X 1 2").is_err());
        assert!(DecisionTree::from_text("L 2.5").is_err()); // out of range
        assert!(DecisionTree::from_text("S 0 1.0\nL 0.5").is_err()); // missing child
        assert!(DecisionTree::from_text("L 0.5\nL 0.5").is_err()); // trailing
    }

    #[test]
    fn probability_reflects_leaf_composition() {
        // One feature, left region has 1/3 positives.
        let d = Dataset::new(
            vec![vec![0.0], vec![0.0], vec![0.0], vec![10.0]],
            vec![true, false, false, true],
        )
        .unwrap();
        let mut t = DecisionTree::new();
        t.fit(&d).unwrap();
        let p_left = t.predict_proba(&[0.0]);
        assert!((p_left - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.predict_proba(&[10.0]), 1.0);
    }
}

//! Random Forests — the paper's default learning approach.

use std::num::NonZeroUsize;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::arena::TreeArena;
use crate::codec;
use crate::dataset::Dataset;
use crate::error::MlError;
use crate::tree::DecisionTree;
use crate::Classifier;

/// Worker budget for [`RandomForest::fit`].
///
/// Training is deterministic at every setting: bootstrap samples are
/// drawn sequentially from the forest RNG before any tree is fitted and
/// per-tree feature-subsampling seeds derive from the tree index, so
/// `Fixed(1)` and `Auto` produce bit-identical forests — `Fixed(1)` is
/// kept for parity tests and single-core baselines, not correctness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TrainParallelism {
    /// One worker per available hardware thread (the default).
    #[default]
    Auto,
    /// Exactly `n` workers; `Fixed(1)` fits trees on the calling thread.
    Fixed(usize),
}

impl TrainParallelism {
    /// Resolved worker count (always ≥ 1).
    #[must_use]
    pub fn workers(self) -> usize {
        match self {
            Self::Auto => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
            Self::Fixed(n) => n.max(1),
        }
    }
}

/// A Random Forest classifier: bagged decision trees with per-split feature
/// subsampling, as in Breiman 2001.
///
/// The paper adopts RF as SmartFlux's default classifier because "default
/// parameterization in RF often performs well"; the two knobs the paper
/// calls out for recall/precision trading — the number of trees and the
/// maximum tree depth — are exposed here, plus a decision threshold used by
/// SmartFlux to optimise for recall (fewer missed `maxε` violations at the
/// cost of extra executions).
///
/// # Example
///
/// ```
/// use smartflux_ml::{Classifier, Dataset, RandomForest};
///
/// let data = Dataset::new(
///     (0..40).map(|i| vec![i as f64, (40 - i) as f64]).collect(),
///     (0..40).map(|i| i >= 20).collect(),
/// ).unwrap();
/// let mut rf = RandomForest::new(15).with_seed(42);
/// rf.fit(&data).unwrap();
/// assert!(rf.predict(&[35.0, 5.0]));
/// assert!(!rf.predict(&[3.0, 37.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    n_trees: usize,
    max_depth: usize,
    min_samples_split: usize,
    max_features: Option<usize>,
    threshold: f64,
    seed: u64,
    parallelism: TrainParallelism,
    trees: Vec<DecisionTree>,
    /// Flattened prediction arena, rebuilt from `trees` at every fit and
    /// decode; empty exactly when `trees` is empty.
    arena: TreeArena,
}

impl Default for RandomForest {
    fn default() -> Self {
        Self::new(50)
    }
}

impl RandomForest {
    /// A forest of `n_trees` trees with default depth (16) and `√d` feature
    /// subsampling.
    ///
    /// # Panics
    ///
    /// Panics if `n_trees` is zero.
    #[must_use]
    pub fn new(n_trees: usize) -> Self {
        assert!(n_trees > 0, "a forest needs at least one tree");
        Self {
            n_trees,
            max_depth: 16,
            min_samples_split: 2,
            max_features: None, // √d chosen at fit time
            threshold: 0.5,
            seed: 0,
            parallelism: TrainParallelism::Auto,
            trees: Vec::new(),
            arena: TreeArena::new(),
        }
    }

    /// Sets the maximum depth of every tree.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "max depth must be positive");
        self.max_depth = depth;
        self
    }

    /// Sets the number of features considered per split (default `√d`).
    #[must_use]
    pub fn with_max_features(mut self, k: usize) -> Self {
        self.max_features = Some(k.max(1));
        self
    }

    /// Sets the minimum number of instances required to split a node.
    #[must_use]
    pub fn with_min_samples_split(mut self, min: usize) -> Self {
        self.min_samples_split = min.max(2);
        self
    }

    /// Sets the probability threshold above which [`predict`] returns
    /// positive.
    ///
    /// Thresholds below 0.5 bias the model toward recall — SmartFlux uses
    /// this for workloads like LRB where missing a `maxε` violation is
    /// costlier than a wasted execution.
    ///
    /// [`predict`]: Classifier::predict
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `(0, 1)`.
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0, 1)"
        );
        self.threshold = threshold;
        self
    }

    /// Seeds bootstrap sampling and feature subsampling.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the training worker budget (default [`TrainParallelism::Auto`]).
    ///
    /// The fitted forest is bit-identical at every setting; see
    /// [`TrainParallelism`].
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: TrainParallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Number of trees in the (fitted or configured) ensemble.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// The configured decision threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The configured training worker budget.
    #[must_use]
    pub fn parallelism(&self) -> TrainParallelism {
        self.parallelism
    }

    /// The flattened prediction arena (empty before fitting).
    #[must_use]
    pub fn arena(&self) -> &TreeArena {
        &self.arena
    }

    /// Rebuilds the flat arena from the pointer trees. Every path that
    /// installs trees (fit, text/binary decode) calls this, so the two
    /// representations can never diverge.
    fn rebuild_arena(&mut self) {
        self.arena.clear();
        for tree in &self.trees {
            tree.flatten_into(&mut self.arena);
        }
    }

    /// The reference prediction path: per-tree `Box`-node pointer walks,
    /// averaged in ensemble order. Kept as the independent oracle for
    /// the parity suite and the scalar baseline of the
    /// `forest_inference` micro-bench; [`predict_proba`] serves the same
    /// values from the flat arena.
    ///
    /// Returns the 0.5 prior before fitting, like [`predict_proba`].
    ///
    /// [`predict_proba`]: Classifier::predict_proba
    #[must_use]
    pub fn predict_proba_reference(&self, features: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        let sum: f64 = self.trees.iter().map(|t| t.predict_proba(features)).sum();
        sum / self.trees.len() as f64
    }

    /// Ensemble probabilities for a batch of samples in one
    /// cache-friendly pass (trees outer, samples inner), bit-identical
    /// to calling [`predict_proba`] per sample.
    ///
    /// Unlike the trait path this is export-consistent about training
    /// state: an unfitted forest is rejected instead of answering with
    /// the prior.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before a successful fit or decode.
    ///
    /// [`predict_proba`]: Classifier::predict_proba
    pub fn predict_batch<S: AsRef<[f64]>>(&self, samples: &[S]) -> Result<Vec<f64>, MlError> {
        if self.arena.is_empty() {
            return Err(MlError::NotFitted);
        }
        Ok(self.arena.predict_batch(samples))
    }
}

impl RandomForest {
    /// Split-frequency feature importance of the fitted forest: how often
    /// each feature was chosen as a split, normalised to sum to 1.
    ///
    /// Useful for diagnosing which steps' impacts actually drive a
    /// full-vector predictor. Returns `None` before fitting; returns a
    /// uniform vector when the forest is all leaves.
    #[must_use]
    pub fn feature_importance(&self, n_features: usize) -> Option<Vec<f64>> {
        if self.trees.is_empty() {
            return None;
        }
        let mut counts = vec![0.0; n_features];
        for tree in &self.trees {
            if let Some(text) = tree.to_text() {
                for line in text.lines() {
                    if let Some(rest) = line.strip_prefix("S ") {
                        if let Some(feature) = rest
                            .split_whitespace()
                            .next()
                            .and_then(|f| f.parse::<usize>().ok())
                        {
                            if feature < n_features {
                                counts[feature] += 1.0;
                            }
                        }
                    }
                }
            }
        }
        let total: f64 = counts.iter().sum();
        if total == 0.0 {
            return Some(vec![1.0 / n_features as f64; n_features]);
        }
        Some(counts.into_iter().map(|c| c / total).collect())
    }

    /// Serialises the fitted forest into a versioned text form.
    ///
    /// Returns `None` before fitting.
    #[must_use]
    pub fn to_text(&self) -> Option<String> {
        if self.trees.is_empty() {
            return None;
        }
        let mut out = format!(
            "forest v1 trees={} threshold={:e}\n",
            self.trees.len(),
            self.threshold
        );
        for tree in &self.trees {
            out.push_str("tree\n");
            out.push_str(&tree.to_text()?);
        }
        Some(out)
    }

    /// Reconstructs a fitted forest from its [`to_text`](Self::to_text)
    /// form.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first structural problem.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty forest text")?;
        let mut fields = header.split_whitespace();
        if fields.next() != Some("forest") || fields.next() != Some("v1") {
            return Err("bad forest header".into());
        }
        let mut n_trees = None;
        let mut threshold = 0.5;
        for field in fields {
            if let Some(v) = field.strip_prefix("trees=") {
                n_trees = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("bad tree count: {e}"))?,
                );
            } else if let Some(v) = field.strip_prefix("threshold=") {
                threshold = v.parse().map_err(|e| format!("bad threshold: {e}"))?;
            } else {
                return Err(format!("unknown header field `{field}`"));
            }
        }
        let n_trees = n_trees.ok_or("header missing tree count")?;
        if n_trees == 0 {
            return Err("forest must hold at least one tree".into());
        }
        if !(threshold > 0.0 && threshold < 1.0) {
            return Err(format!("threshold {threshold} out of range"));
        }

        // Split the remainder on "tree" sentinel lines.
        let mut chunks: Vec<String> = Vec::new();
        for line in lines {
            if line.trim() == "tree" {
                chunks.push(String::new());
            } else if let Some(current) = chunks.last_mut() {
                current.push_str(line);
                current.push('\n');
            } else if !line.trim().is_empty() {
                return Err("tree data before first `tree` sentinel".into());
            }
        }
        if chunks.len() != n_trees {
            return Err(format!(
                "header declared {n_trees} trees, found {}",
                chunks.len()
            ));
        }
        let trees = chunks
            .iter()
            .map(|c| DecisionTree::from_text(c))
            .collect::<Result<Vec<_>, _>>()?;
        let mut forest = Self {
            n_trees,
            max_depth: 16,
            min_samples_split: 2,
            max_features: None,
            threshold,
            seed: 0,
            parallelism: TrainParallelism::Auto,
            trees,
            arena: TreeArena::new(),
        };
        forest.rebuild_arena();
        Ok(forest)
    }

    /// Serialises the fitted forest into a versioned binary form.
    ///
    /// Unlike [`to_text`](Self::to_text), every `f64` travels as its exact
    /// IEEE-754 bit pattern, so [`from_bytes`](Self::from_bytes) restores
    /// a forest whose predictions are bit-identical — the property the
    /// engine checkpoint relies on for recovery determinism. Returns
    /// `None` before fitting.
    #[must_use]
    pub fn to_bytes(&self) -> Option<Vec<u8>> {
        if self.trees.is_empty() {
            return None;
        }
        let mut out = Vec::new();
        out.extend_from_slice(b"SFRF");
        codec::put_u16(&mut out, 1); // format version
        codec::put_f64(&mut out, self.threshold);
        codec::put_u32(&mut out, self.trees.len() as u32);
        for tree in &self.trees {
            if !tree.write_binary(&mut out) {
                return None;
            }
        }
        Some(out)
    }

    /// Reconstructs a fitted forest from its [`to_bytes`](Self::to_bytes)
    /// form. Training hyper-parameters not needed for prediction are
    /// restored to defaults, mirroring [`from_text`](Self::from_text).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::Decode`] describing the first structural
    /// problem; malformed bytes never panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MlError> {
        let mut r = codec::Reader::new(bytes);
        let magic = r.slice(4, "forest magic")?;
        if magic != b"SFRF" {
            return Err(MlError::Decode("bad forest magic".into()));
        }
        let version = r.u16()?;
        if version != 1 {
            return Err(MlError::Decode(format!(
                "unsupported forest format version {version}"
            )));
        }
        let threshold = r.f64()?;
        if !(threshold > 0.0 && threshold < 1.0) {
            return Err(MlError::Decode(format!(
                "threshold {threshold} out of range"
            )));
        }
        let n_trees = r.u32()? as usize;
        if n_trees == 0 {
            return Err(MlError::Decode("forest must hold at least one tree".into()));
        }
        let mut trees = Vec::with_capacity(n_trees.min(4096));
        for _ in 0..n_trees {
            trees.push(DecisionTree::read_binary(&mut r)?);
        }
        if !r.is_exhausted() {
            return Err(MlError::Decode("trailing bytes after forest".into()));
        }
        // Decoded forests predict through the same flat arena as freshly
        // fitted ones: the checkpoint/recovery path must not fall back to
        // a different (if bit-identical) traversal strategy.
        let mut forest = Self {
            n_trees,
            max_depth: 16,
            min_samples_split: 2,
            max_features: None,
            threshold,
            seed: 0,
            parallelism: TrainParallelism::Auto,
            trees,
            arena: TreeArena::new(),
        };
        forest.rebuild_arena();
        Ok(forest)
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let k = self
            .max_features
            .unwrap_or_else(|| (data.n_features() as f64).sqrt().ceil() as usize)
            .max(1);
        // Bootstrap samples (with replacement) are drawn sequentially
        // from the single forest RNG *before* any tree is fitted,
        // preserving the historical draw order: tree `t` always receives
        // draws [t·n, (t+1)·n), no matter how many workers then fit the
        // trees. Per-tree feature subsampling is seeded from the tree
        // index, so the fitted ensemble is bit-identical at every
        // parallelism setting.
        let samples: Vec<Vec<usize>> = (0..self.n_trees)
            .map(|_| {
                (0..data.len())
                    .map(|_| rng.random_range(0..data.len()))
                    .collect()
            })
            .collect();

        let fit_one = |t: usize, sample: &[usize]| -> Result<DecisionTree, MlError> {
            let boot = data.subset(sample);
            let mut tree = DecisionTree::new()
                .with_max_depth(self.max_depth)
                .with_min_samples_split(self.min_samples_split)
                .with_max_features(k)
                .with_seed(self.seed.wrapping_add(t as u64).wrapping_mul(0x9E37_79B9));
            tree.fit(&boot)?;
            Ok(tree)
        };

        let workers = self.parallelism.workers().min(self.n_trees);
        let mut slots: Vec<Option<Result<DecisionTree, MlError>>> = Vec::new();
        slots.resize_with(self.n_trees, || None);
        if workers <= 1 {
            for (t, sample) in samples.iter().enumerate() {
                slots[t] = Some(fit_one(t, sample));
            }
        } else {
            // Contiguous chunks keep every worker's output slots disjoint;
            // scoped threads propagate worker panics at join, so no
            // channel plumbing or unwraps are needed.
            let per = self.n_trees.div_ceil(workers);
            std::thread::scope(|scope| {
                for (w, (sample_chunk, slot_chunk)) in
                    samples.chunks(per).zip(slots.chunks_mut(per)).enumerate()
                {
                    let fit_one = &fit_one;
                    scope.spawn(move || {
                        for (i, (sample, slot)) in
                            sample_chunk.iter().zip(slot_chunk.iter_mut()).enumerate()
                        {
                            *slot = Some(fit_one(w * per + i, sample));
                        }
                    });
                }
            });
        }

        let mut trees = Vec::with_capacity(self.n_trees);
        for slot in slots {
            match slot {
                Some(Ok(tree)) => trees.push(tree),
                Some(Err(e)) => return Err(e),
                // Unreachable — the chunked loops fill every slot — but
                // handled without panicking per the lib-code discipline.
                None => return Err(MlError::NotFitted),
            }
        }
        self.trees = trees;
        self.rebuild_arena();
        Ok(())
    }

    fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }

    /// Flat-arena traversal; see [`predict_proba_reference`] for the
    /// pointer-walk oracle it is parity-tested against.
    ///
    /// [`predict_proba_reference`]: RandomForest::predict_proba_reference
    fn predict_proba(&self, features: &[f64]) -> f64 {
        if self.arena.is_empty() {
            return 0.5; // the trait-level unfitted prior
        }
        self.arena.predict_proba(features)
    }

    fn predict(&self, features: &[f64]) -> bool {
        self.predict_proba(features) >= self.threshold
    }

    fn export_bytes(&self) -> Option<Vec<u8>> {
        self.to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banded() -> Dataset {
        // Positive iff x in [10, 20).
        Dataset::new(
            (0..30).map(|i| vec![i as f64]).collect(),
            (0..30).map(|i| (10..20).contains(&i)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn learns_a_band() {
        let mut rf = RandomForest::new(30).with_seed(1);
        rf.fit(&banded()).unwrap();
        assert!(rf.predict(&[15.0]));
        assert!(!rf.predict(&[25.0]));
        assert!(!rf.predict(&[5.0]));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = RandomForest::new(10).with_seed(99);
        let mut b = RandomForest::new(10).with_seed(99);
        a.fit(&banded()).unwrap();
        b.fit(&banded()).unwrap();
        for x in 0..30 {
            assert_eq!(a.predict_proba(&[x as f64]), b.predict_proba(&[x as f64]));
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let mut a = RandomForest::new(5).with_seed(1);
        let mut b = RandomForest::new(5).with_seed(2);
        a.fit(&banded()).unwrap();
        b.fit(&banded()).unwrap();
        let differs = (0..300)
            .map(|x| x as f64 / 10.0)
            .any(|x| a.predict_proba(&[x]) != b.predict_proba(&[x]));
        assert!(differs);
    }

    #[test]
    fn lower_threshold_is_more_recall_hungry() {
        let mut rf = RandomForest::new(20).with_seed(5);
        rf.fit(&banded()).unwrap();
        let p = rf.predict_proba(&[9.6]); // boundary region
        let strict = p >= 0.5;
        let recall_biased = p >= 0.2;
        // The recall-biased cut never predicts negative where strict said positive.
        assert!(recall_biased || !strict);
    }

    #[test]
    fn unfitted_returns_prior() {
        let rf = RandomForest::new(3);
        assert_eq!(rf.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    fn unfitted_is_rejected_on_checked_paths() {
        let rf = RandomForest::new(3).with_threshold(0.2);
        assert!(!rf.is_fitted());
        // The trait-level prior (0.5) would cross the recall-tuned
        // threshold and read as a confident "execute"…
        assert!(rf.predict(&[1.0]));
        // …which is exactly why the checked paths refuse to answer.
        assert_eq!(rf.try_predict_proba(&[1.0]), Err(MlError::NotFitted));
        assert_eq!(rf.try_predict(&[1.0]), Err(MlError::NotFitted));
        assert_eq!(rf.predict_batch(&[vec![1.0]]), Err(MlError::NotFitted));
    }

    #[test]
    fn flat_path_matches_reference_walk() {
        let mut rf = RandomForest::new(25).with_seed(7);
        rf.fit(&banded()).unwrap();
        assert!(rf.is_fitted());
        assert_eq!(rf.arena().n_trees(), 25);
        for x in -10..40 {
            let probe = [f64::from(x)];
            assert_eq!(
                rf.predict_proba(&probe),
                rf.predict_proba_reference(&probe),
                "x={x}"
            );
        }
    }

    #[test]
    fn batch_matches_per_sample_predictions() {
        let mut rf = RandomForest::new(12).with_seed(8);
        rf.fit(&banded()).unwrap();
        let samples: Vec<Vec<f64>> = (-10..40).map(|x| vec![f64::from(x)]).collect();
        let batched = rf.predict_batch(&samples).unwrap();
        for (sample, p) in samples.iter().zip(&batched) {
            assert_eq!(rf.predict_proba(sample), *p);
        }
    }

    #[test]
    fn parallel_training_is_bit_identical() {
        let mut sequential = RandomForest::new(16)
            .with_seed(21)
            .with_parallelism(TrainParallelism::Fixed(1));
        let mut parallel = RandomForest::new(16)
            .with_seed(21)
            .with_parallelism(TrainParallelism::Fixed(4));
        sequential.fit(&banded()).unwrap();
        parallel.fit(&banded()).unwrap();
        // Tree-for-tree identity, not just equal predictions: the codec
        // serialises every node, so equal bytes mean equal forests.
        assert_eq!(sequential.to_bytes(), parallel.to_bytes());
        assert_eq!(TrainParallelism::Fixed(0).workers(), 1);
        assert!(TrainParallelism::Auto.workers() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let _ = RandomForest::new(0);
    }

    #[test]
    fn feature_importance_highlights_the_informative_feature() {
        // Feature 1 is pure noise; feature 0 carries the signal.
        let data = Dataset::new(
            (0..60)
                .map(|i| vec![i as f64, ((i * 7919) % 13) as f64])
                .collect(),
            (0..60).map(|i| i >= 30).collect(),
        )
        .unwrap();
        let mut rf = RandomForest::new(20).with_seed(3);
        rf.fit(&data).unwrap();
        let imp = rf.feature_importance(2).unwrap();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[1], "importance {imp:?}");
        assert!(RandomForest::new(2).feature_importance(2).is_none());
    }

    #[test]
    fn text_roundtrip_preserves_predictions() {
        let mut rf = RandomForest::new(9).with_threshold(0.3).with_seed(2);
        rf.fit(&banded()).unwrap();
        let text = rf.to_text().unwrap();
        let restored = RandomForest::from_text(&text).unwrap();
        assert_eq!(restored.n_trees(), 9);
        assert_eq!(restored.threshold(), 0.3);
        for x in -10..40 {
            let probe = [f64::from(x)];
            assert_eq!(rf.predict_proba(&probe), restored.predict_proba(&probe));
            assert_eq!(rf.predict(&probe), restored.predict(&probe));
        }
        assert!(RandomForest::new(3).to_text().is_none());
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let mut rf = RandomForest::new(9).with_threshold(0.3).with_seed(2);
        rf.fit(&banded()).unwrap();
        let bytes = rf.to_bytes().unwrap();
        let restored = RandomForest::from_bytes(&bytes).unwrap();
        assert_eq!(restored.n_trees(), 9);
        assert_eq!(restored.threshold(), 0.3);
        // Bit-exact: the restored forest is the same PartialEq value up to
        // non-serialized training hyper-parameters, so probe predictions
        // must match everywhere.
        for x in -10..40 {
            let probe = [f64::from(x)];
            assert_eq!(rf.predict_proba(&probe), restored.predict_proba(&probe));
            assert_eq!(rf.predict(&probe), restored.predict(&probe));
        }
        // And the codec is stable: re-serialising reproduces the bytes.
        assert_eq!(restored.to_bytes().unwrap(), bytes);
        assert!(RandomForest::new(3).to_bytes().is_none());
        // export_bytes (the Classifier hook) is the same codec.
        assert_eq!(rf.export_bytes().unwrap(), bytes);
    }

    #[test]
    fn from_bytes_rejects_malformed_input() {
        assert!(matches!(
            RandomForest::from_bytes(b""),
            Err(MlError::Decode(_))
        ));
        assert!(RandomForest::from_bytes(b"NOPE").is_err());
        let mut rf = RandomForest::new(3).with_seed(1);
        rf.fit(&banded()).unwrap();
        let good = rf.to_bytes().unwrap();
        // Every truncation is rejected cleanly, never a panic.
        for cut in 0..good.len() {
            assert!(RandomForest::from_bytes(&good[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage is rejected too.
        let mut extended = good.clone();
        extended.push(0);
        assert!(RandomForest::from_bytes(&extended).is_err());
        // A version bump is refused rather than misread.
        let mut vbumped = good;
        vbumped[4] = 2;
        assert!(RandomForest::from_bytes(&vbumped).is_err());
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(RandomForest::from_text("").is_err());
        assert!(RandomForest::from_text("forest v2 trees=1").is_err());
        assert!(RandomForest::from_text("forest v1 trees=2 threshold=0.5\ntree\nL 0.5\n").is_err());
        assert!(RandomForest::from_text("forest v1 trees=1 threshold=2.0\ntree\nL 0.5\n").is_err());
        assert!(RandomForest::from_text("forest v1 trees=1 threshold=0.5\nL 0.5\n").is_err());
    }

    #[test]
    fn probability_within_unit_interval() {
        let mut rf = RandomForest::new(17).with_seed(3);
        rf.fit(&banded()).unwrap();
        for x in -50..80 {
            let p = rf.predict_proba(&[x as f64]);
            assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        }
    }
}

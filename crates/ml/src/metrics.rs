//! Classification metrics: accuracy, precision, recall, F1 and ROC AUC.
//!
//! Semantics follow the paper's §3.2 definitions: *recall* measures how many
//! truly-must-execute waves the model caught (avoiding `maxε` violations),
//! *precision* measures how many predicted executions were truly needed
//! (avoiding wasted resources).

/// A 2×2 confusion matrix for binary classification.
///
/// # Example
///
/// ```
/// use smartflux_ml::metrics::ConfusionMatrix;
///
/// let cm = ConfusionMatrix::from_pairs(
///     &[true, true, false, false],
///     &[true, false, false, true],
/// );
/// assert_eq!(cm.tp, 1);
/// assert_eq!(cm.fn_, 1);
/// assert_eq!(cm.fp, 1);
/// assert_eq!(cm.tn, 1);
/// assert_eq!(cm.accuracy(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Builds a matrix from `(actual, predicted)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[must_use]
    pub fn from_pairs(actual: &[bool], predicted: &[bool]) -> Self {
        assert_eq!(actual.len(), predicted.len(), "length mismatch");
        let mut cm = ConfusionMatrix::default();
        for (&a, &p) in actual.iter().zip(predicted) {
            match (a, p) {
                (true, true) => cm.tp += 1,
                (false, true) => cm.fp += 1,
                (false, false) => cm.tn += 1,
                (true, false) => cm.fn_ += 1,
            }
        }
        cm
    }

    /// Merges counts from another matrix (e.g. across folds or labels).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Total number of instances.
    #[must_use]
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Proportion of instances correctly classified. 1.0 when empty.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        (self.tp + self.tn) as f64 / total as f64
    }

    /// `tp / (tp + fp)`: of the instances classified positive, how many
    /// truly were. 1.0 when nothing was classified positive.
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// `tp / (tp + fn)`: of the truly positive instances, how many were
    /// caught. 1.0 when there were no positives.
    #[must_use]
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// Harmonic mean of precision and recall.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Proportion of correct predictions.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn accuracy(actual: &[bool], predicted: &[bool]) -> f64 {
    ConfusionMatrix::from_pairs(actual, predicted).accuracy()
}

/// Precision of the positive class. See [`ConfusionMatrix::precision`].
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn precision(actual: &[bool], predicted: &[bool]) -> f64 {
    ConfusionMatrix::from_pairs(actual, predicted).precision()
}

/// Recall of the positive class. See [`ConfusionMatrix::recall`].
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn recall(actual: &[bool], predicted: &[bool]) -> f64 {
    ConfusionMatrix::from_pairs(actual, predicted).recall()
}

/// F1 score of the positive class.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn f1(actual: &[bool], predicted: &[bool]) -> f64 {
    ConfusionMatrix::from_pairs(actual, predicted).f1()
}

/// Area under the ROC curve, computed by the rank statistic
/// (Mann–Whitney U with midrank tie handling).
///
/// 1.0 is a perfect ranker; 0.5 is random guessing — the scale the paper
/// uses to report RF = 0.86 and SVM = 0.82. Degenerate inputs (all one
/// class) return 0.5.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Example
///
/// ```
/// use smartflux_ml::metrics::roc_auc;
///
/// let auc = roc_auc(&[false, false, true, true], &[0.1, 0.4, 0.35, 0.8]);
/// assert!((auc - 0.75).abs() < 1e-12);
/// ```
#[must_use]
pub fn roc_auc(actual: &[bool], scores: &[f64]) -> f64 {
    assert_eq!(actual.len(), scores.len(), "length mismatch");
    let n_pos = actual.iter().filter(|&&a| a).count();
    let n_neg = actual.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }

    // Midranks of the scores.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = midrank;
        }
        i = j + 1;
    }

    let rank_sum_pos: f64 = actual
        .iter()
        .zip(&ranks)
        .filter(|(&a, _)| a)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Per-label and aggregate quality of a multi-label prediction matrix.
///
/// The aggregate pools the per-label confusion counts (micro-averaging),
/// matching how the paper reports a single accuracy/precision/recall per
/// workload across all QoD steps.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLabelReport {
    per_label: Vec<ConfusionMatrix>,
    pooled: ConfusionMatrix,
}

impl MultiLabelReport {
    /// Builds a report from actual and predicted label matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrices differ in shape.
    #[must_use]
    pub fn from_matrices(actual: &[Vec<bool>], predicted: &[Vec<bool>]) -> Self {
        assert_eq!(actual.len(), predicted.len(), "row count mismatch");
        let n_labels = actual.first().map_or(0, Vec::len);
        let mut per_label = vec![ConfusionMatrix::default(); n_labels];
        for (a_row, p_row) in actual.iter().zip(predicted) {
            assert_eq!(a_row.len(), n_labels, "ragged actual labels");
            assert_eq!(p_row.len(), n_labels, "ragged predicted labels");
            for ((cm, &a), &p) in per_label.iter_mut().zip(a_row).zip(p_row) {
                cm.merge(&ConfusionMatrix::from_pairs(&[a], &[p]));
            }
        }
        let mut pooled = ConfusionMatrix::default();
        for cm in &per_label {
            pooled.merge(cm);
        }
        Self { per_label, pooled }
    }

    /// The confusion matrix for label `j`.
    #[must_use]
    pub fn label(&self, j: usize) -> &ConfusionMatrix {
        &self.per_label[j]
    }

    /// Number of labels.
    #[must_use]
    pub fn n_labels(&self) -> usize {
        self.per_label.len()
    }

    /// Micro-averaged confusion matrix across all labels.
    #[must_use]
    pub fn pooled(&self) -> &ConfusionMatrix {
        &self.pooled
    }

    /// Exact-match ratio: fraction of instances whose whole label row was
    /// predicted correctly (the strictest multi-label accuracy).
    ///
    /// # Panics
    ///
    /// Panics if the matrices differ in shape.
    #[must_use]
    pub fn exact_match(actual: &[Vec<bool>], predicted: &[Vec<bool>]) -> f64 {
        assert_eq!(actual.len(), predicted.len(), "row count mismatch");
        if actual.is_empty() {
            return 1.0;
        }
        let hits = actual.iter().zip(predicted).filter(|(a, p)| a == p).count();
        hits as f64 / actual.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [true, false, true];
        assert_eq!(accuracy(&y, &y), 1.0);
        assert_eq!(precision(&y, &y), 1.0);
        assert_eq!(recall(&y, &y), 1.0);
        assert_eq!(f1(&y, &y), 1.0);
    }

    #[test]
    fn degenerate_edges() {
        // Nothing predicted positive → precision defaults to 1.
        assert_eq!(precision(&[true, false], &[false, false]), 1.0);
        // No actual positives → recall defaults to 1.
        assert_eq!(recall(&[false, false], &[true, false]), 1.0);
        // Empty input.
        assert_eq!(accuracy(&[], &[]), 1.0);
    }

    #[test]
    fn recall_counts_missed_violations() {
        // 3 true positives, 1 missed.
        let actual = [true, true, true, true, false];
        let predicted = [true, true, true, false, false];
        assert_eq!(recall(&actual, &predicted), 0.75);
        assert_eq!(precision(&actual, &predicted), 1.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let y = [false, false, true, true];
        assert_eq!(roc_auc(&y, &[0.1, 0.2, 0.8, 0.9]), 1.0);
        assert_eq!(roc_auc(&y, &[0.9, 0.8, 0.2, 0.1]), 0.0);
    }

    #[test]
    fn auc_handles_ties() {
        let y = [false, true, false, true];
        let auc = roc_auc(&y, &[0.5, 0.5, 0.5, 0.5]);
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[true, true], &[0.1, 0.9]), 0.5);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let actual = [true, true, false, false];
        let predicted = [true, false, true, false];
        // precision 0.5, recall 0.5 → f1 0.5
        assert_eq!(f1(&actual, &predicted), 0.5);
    }

    #[test]
    fn multilabel_report_pools_counts() {
        let actual = vec![vec![true, false], vec![false, true]];
        let predicted = vec![vec![true, true], vec![false, true]];
        let r = MultiLabelReport::from_matrices(&actual, &predicted);
        assert_eq!(r.n_labels(), 2);
        assert_eq!(r.label(0).tp, 1);
        assert_eq!(r.label(1).fp, 1);
        assert_eq!(r.pooled().total(), 4);
        assert_eq!(r.pooled().accuracy(), 0.75);
        assert_eq!(MultiLabelReport::exact_match(&actual, &predicted), 0.5);
    }
}

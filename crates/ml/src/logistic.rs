//! Logistic regression.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::scaler::StandardScaler;
use crate::Classifier;

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// L2-regularised logistic regression trained by batch gradient descent.
///
/// Features are standardised internally (see [`StandardScaler`]) so raw
/// impact magnitudes can be fed directly.
///
/// # Example
///
/// ```
/// use smartflux_ml::{Classifier, Dataset, LogisticRegression};
///
/// let data = Dataset::new(
///     (0..20).map(|i| vec![i as f64]).collect(),
///     (0..20).map(|i| i >= 10).collect(),
/// ).unwrap();
/// let mut lr = LogisticRegression::new();
/// lr.fit(&data).unwrap();
/// assert!(lr.predict(&[18.0]));
/// assert!(!lr.predict(&[1.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    learning_rate: f64,
    l2: f64,
    epochs: usize,
    weights: Vec<f64>,
    bias: f64,
    scaler: Option<StandardScaler>,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl LogisticRegression {
    /// A model with default hyper-parameters (η = 0.1, λ = 1e-4,
    /// 500 epochs).
    #[must_use]
    pub fn new() -> Self {
        Self {
            learning_rate: 0.1,
            l2: 1e-4,
            epochs: 500,
            weights: Vec::new(),
            bias: 0.0,
            scaler: None,
        }
    }

    /// Sets the gradient-descent learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    #[must_use]
    pub fn with_learning_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "learning rate must be positive");
        self.learning_rate = rate;
        self
    }

    /// Sets the L2 regularisation strength.
    #[must_use]
    pub fn with_l2(mut self, l2: f64) -> Self {
        assert!(l2 >= 0.0, "l2 strength must be non-negative");
        self.l2 = l2;
        self
    }

    /// Sets the number of training epochs.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        assert!(epochs > 0, "need at least one epoch");
        self.epochs = epochs;
        self
    }

    /// Fitted weights (standardised feature space); empty before fitting.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        let scaler = StandardScaler::fit(data.x());
        let x = scaler.transform_all(data.x());
        let n = data.len() as f64;
        let d = data.n_features();
        let mut w = vec![0.0; d];
        let mut b = 0.0;

        for _ in 0..self.epochs {
            let mut grad_w = vec![0.0; d];
            let mut grad_b = 0.0;
            for (row, &label) in x.iter().zip(data.y()) {
                let z: f64 = b + row.iter().zip(&w).map(|(xi, wi)| xi * wi).sum::<f64>();
                let err = sigmoid(z) - if label { 1.0 } else { 0.0 };
                for (g, xi) in grad_w.iter_mut().zip(row) {
                    *g += err * xi;
                }
                grad_b += err;
            }
            for (wi, g) in w.iter_mut().zip(&grad_w) {
                *wi -= self.learning_rate * (g / n + self.l2 * *wi);
            }
            b -= self.learning_rate * grad_b / n;
        }

        self.weights = w;
        self.bias = b;
        self.scaler = Some(scaler);
        Ok(())
    }

    fn is_fitted(&self) -> bool {
        self.scaler.is_some()
    }

    fn predict_proba(&self, features: &[f64]) -> f64 {
        let Some(scaler) = &self.scaler else {
            return 0.5;
        };
        let x = scaler.transform(features);
        let z: f64 = self.bias
            + x.iter()
                .zip(&self.weights)
                .map(|(xi, wi)| xi * wi)
                .sum::<f64>();
        sigmoid(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn separable_2d() {
        let data = Dataset::new(
            (0..40)
                .map(|i| vec![(i % 8) as f64, (i / 8) as f64])
                .collect(),
            (0..40).map(|i| (i % 8) + (i / 8) > 6).collect(),
        )
        .unwrap();
        let mut lr = LogisticRegression::new();
        lr.fit(&data).unwrap();
        assert!(lr.predict(&[7.0, 4.0]));
        assert!(!lr.predict(&[0.0, 0.0]));
    }

    #[test]
    fn handles_huge_feature_scales() {
        // Raw LRB impacts reach 1e9; internal scaling must cope.
        let data = Dataset::new(
            (0..20).map(|i| vec![i as f64 * 1e9]).collect(),
            (0..20).map(|i| i >= 10).collect(),
        )
        .unwrap();
        let mut lr = LogisticRegression::new();
        lr.fit(&data).unwrap();
        assert!(lr.predict(&[19.0e9]));
        assert!(!lr.predict(&[0.0]));
    }

    #[test]
    fn single_class_learns_constant() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![true, true]).unwrap();
        let mut lr = LogisticRegression::new();
        lr.fit(&data).unwrap();
        assert!(lr.predict_proba(&[1.5]) > 0.5);
    }

    #[test]
    fn unfitted_returns_prior() {
        assert_eq!(LogisticRegression::new().predict_proba(&[0.0]), 0.5);
    }
}

//! A from-scratch machine-learning library for the SmartFlux reproduction.
//!
//! Stands in for the paper's WEKA/MEKA stack. Implements the six classifier
//! families compared in §3.2 of the paper — Bayes (Gaussian naive Bayes),
//! a CART/J48-style [`DecisionTree`], [`LogisticRegression`], a small
//! [`NeuralNetwork`] (MLP), [`RandomForest`], and a linear [`LinearSvm`]
//! (Pegasos) — plus the supporting machinery:
//!
//! - [`Dataset`] / [`MultiLabelDataset`] containers;
//! - [`BinaryRelevance`] multi-label wrapping (the MEKA role: one binary
//!   classifier per label, shared feature vector);
//! - evaluation [`metrics`]: accuracy, precision, recall, F1, ROC AUC;
//! - stratified k-fold [`crossval`] (the paper's 10-fold test phase).
//!
//! All training is deterministic given a seed; randomised algorithms take
//! explicit seeds rather than global RNG state.
//!
//! # Example
//!
//! ```
//! use smartflux_ml::{Classifier, Dataset, RandomForest};
//!
//! // A linearly separable toy problem: positive iff x0 + x1 > 1.
//! let x: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![(i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0])
//!     .collect();
//! let y: Vec<bool> = x.iter().map(|r| r[0] + r[1] > 1.0).collect();
//! let data = Dataset::new(x, y).unwrap();
//!
//! let mut rf = RandomForest::new(25).with_seed(7);
//! rf.fit(&data).unwrap();
//! assert!(rf.predict(&[0.9, 0.9]));
//! assert!(!rf.predict(&[0.1, 0.0]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossval;
pub mod metrics;

mod arena;
mod codec;
mod dataset;
mod error;
mod forest;
mod kernel_svm;
mod logistic;
mod mlp;
mod multilabel;
mod naive_bayes;
mod scaler;
mod svm;
mod tree;

pub use arena::TreeArena;
pub use dataset::{Dataset, MultiLabelDataset};
pub use error::MlError;
pub use forest::{RandomForest, TrainParallelism};
pub use kernel_svm::{Kernel, KernelSvm};
pub use logistic::LogisticRegression;
pub use mlp::NeuralNetwork;
pub use multilabel::BinaryRelevance;
pub use naive_bayes::GaussianNaiveBayes;
pub use scaler::StandardScaler;
pub use svm::LinearSvm;
pub use tree::DecisionTree;

/// A trainable binary classifier producing a positive-class probability.
///
/// All SmartFlux predictors are expressed against this trait, so the Random
/// Forest default can be swapped for any other implementation (§3.2: "we
/// adopted RF as our default learning approach, although they can be
/// switched").
pub trait Classifier: Send + Sync {
    /// Fits the model to a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] when `data` has no rows. Fitting a
    /// dataset whose labels are all one class is not an error — a constant
    /// model is learned.
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError>;

    /// `true` once a successful [`fit`](Classifier::fit) (or a codec
    /// decode of a fitted model) has produced queryable state.
    fn is_fitted(&self) -> bool;

    /// Probability that `features` belongs to the positive class.
    ///
    /// Returns a value in `[0, 1]`. Calling this before a successful
    /// [`fit`](Classifier::fit) returns an implementation-defined prior
    /// (typically 0.5) — infrastructure that must not silently answer
    /// from an untrained model uses
    /// [`try_predict_proba`](Classifier::try_predict_proba) instead.
    fn predict_proba(&self, features: &[f64]) -> f64;

    /// Hard classification at the 0.5 threshold.
    fn predict(&self, features: &[f64]) -> bool {
        self.predict_proba(features) >= 0.5
    }

    /// [`predict_proba`](Classifier::predict_proba) that rejects
    /// untrained models instead of answering with the prior,
    /// export-consistent with `to_text`/`to_bytes` returning `None`
    /// before a fit.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] when
    /// [`is_fitted`](Classifier::is_fitted) is `false`.
    fn try_predict_proba(&self, features: &[f64]) -> Result<f64, MlError> {
        if self.is_fitted() {
            Ok(self.predict_proba(features))
        } else {
            Err(MlError::NotFitted)
        }
    }

    /// [`predict`](Classifier::predict) that rejects untrained models.
    ///
    /// This is the path SmartFlux's `Predictor` queries through: a
    /// recall-tuned decision threshold below 0.5 would otherwise turn
    /// the unfitted 0.5 prior into a confident-looking positive.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] when
    /// [`is_fitted`](Classifier::is_fitted) is `false`.
    fn try_predict(&self, features: &[f64]) -> Result<bool, MlError> {
        if self.is_fitted() {
            Ok(self.predict(features))
        } else {
            Err(MlError::NotFitted)
        }
    }

    /// Serialises the fitted model into a self-describing binary form
    /// suitable for checkpoints, if the implementation supports it.
    ///
    /// The default returns `None` — engines checkpoint such models by
    /// retraining deterministically from the knowledge base instead.
    /// [`RandomForest`] overrides this with its exact binary codec.
    fn export_bytes(&self) -> Option<Vec<u8>> {
        None
    }
}

impl Classifier for Box<dyn Classifier> {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        (**self).fit(data)
    }

    fn is_fitted(&self) -> bool {
        (**self).is_fitted()
    }

    fn predict_proba(&self, features: &[f64]) -> f64 {
        (**self).predict_proba(features)
    }

    fn predict(&self, features: &[f64]) -> bool {
        (**self).predict(features)
    }

    fn try_predict_proba(&self, features: &[f64]) -> Result<f64, MlError> {
        (**self).try_predict_proba(features)
    }

    fn try_predict(&self, features: &[f64]) -> Result<bool, MlError> {
        (**self).try_predict(features)
    }

    fn export_bytes(&self) -> Option<Vec<u8>> {
        (**self).export_bytes()
    }
}

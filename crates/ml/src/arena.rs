//! Flattened struct-of-arrays tree storage for the forest hot path.
//!
//! The pointer-based [`DecisionTree`] representation is ideal for
//! training (recursive splitting) and for the text/binary codecs, but
//! prediction over `Box`ed nodes chases one heap allocation per level
//! per tree. A fitted forest is immutable, so at fit/decode time every
//! tree is flattened into one contiguous arena shared by the whole
//! forest: four parallel arrays (`feature`/`threshold`/`left`/
//! `leaf_proba`) plus the root index and minimum leaf depth of each
//! tree.
//!
//! Layout invariants:
//!
//! - A split stores its feature index and threshold in place, and its
//!   two children **adjacently**: the left child at `left[i]`, the right
//!   at `left[i] + 1`. Walking a tree therefore touches a single array
//!   region instead of scattered heap nodes.
//! - A leaf is a *self-looping* node: `threshold[i]` is NaN (every
//!   comparison with NaN is false, so the walk always takes the "right"
//!   branch) and `left[i] = i - 1` (wrapping), making the right child
//!   `left[i] + 1 = i` — the node itself. Stepping a lane that already
//!   sits on a leaf is a harmless no-op, which lets the walk loops run a
//!   fixed, branch-free number of steps. The leaf's probability lives in
//!   `leaf_proba[i]`; `feature[i]` is 0 so the (dead) feature load stays
//!   in bounds.
//! - `min_depths[t]` is the *shortest* root-to-leaf edge count of tree
//!   `t`: a walk's first `min_depths[t]` levels cannot terminate, so
//!   they run with no completion checks at all.
//! - Trees are appended in ensemble order and `roots[t]` indexes tree
//!   `t`, so averaging over `roots` reproduces the pointer walk's exact
//!   f64 summation order — the arena changes memory layout, never
//!   arithmetic. This is what keeps flat predictions bit-identical to
//!   the reference path (see `tests/parity.rs`).
//!
//! The predict paths walk several trees (or several samples) in
//! interleaved lanes: a tree descent is a chain of dependent loads, so a
//! single walk is bound by memory latency, not bandwidth or compute.
//! Stepping [`LANES`] descents round-robin keeps that many loads in
//! flight, and the self-looping leaves make the inner loop branchless —
//! together these are what make the flat layout measurably faster than
//! pointer chasing; the layout alone merely matches it (the
//! `forest_inference` bench in `smartflux-bench` measures all paths).
//!
//! [`DecisionTree`]: crate::DecisionTree

/// Concurrent walk width: how many independent tree descents are kept in
/// flight at once (trees per group in [`TreeArena::predict_proba`],
/// samples per block in [`TreeArena::predict_batch`]). Sixteen dependent
/// load chains keep the load units saturated across L1/L2 latency on
/// current cores while the lane cursors still fit in registers; the
/// `forest_inference` bench measured 16 consistently ahead of 8 here.
const LANES: usize = 16;

/// A forest's flattened node storage: one allocation per array, shared
/// by every tree in the ensemble.
///
/// Built internally by [`RandomForest`](crate::RandomForest) at fit and
/// decode time; exposed read-only for diagnostics and benchmarks.
#[derive(Debug, Clone, Default)]
pub struct TreeArena {
    /// Split feature per node; 0 (a dead in-bounds load) for leaves.
    feature: Vec<u32>,
    /// Split threshold per node; NaN for leaves (self-loop routing).
    threshold: Vec<f64>,
    /// Left-child index per node; the right child is `left[i] + 1`.
    /// Leaves store `i - 1` (wrapping) so their right child is `i`.
    left: Vec<u32>,
    /// Positive-class probability per leaf (unused for splits).
    leaf_proba: Vec<f64>,
    /// Root node index of each tree, in ensemble order.
    roots: Vec<u32>,
    /// Shortest root-to-leaf edge count of each tree: the walk prefix
    /// that is guaranteed branch-free (no lane can rest on a leaf yet).
    min_depths: Vec<u32>,
}

/// Bitwise f64 slice equality: leaf thresholds are NaN by construction,
/// so semantic `==` would report equal arenas as different.
fn f64_bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

impl PartialEq for TreeArena {
    fn eq(&self, other: &Self) -> bool {
        self.feature == other.feature
            && self.left == other.left
            && self.roots == other.roots
            && self.min_depths == other.min_depths
            && f64_bits_eq(&self.threshold, &other.threshold)
            && f64_bits_eq(&self.leaf_proba, &other.leaf_proba)
    }
}

impl TreeArena {
    /// An arena with no trees.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all trees but keeps the allocations for rebuilding.
    pub(crate) fn clear(&mut self) {
        self.feature.clear();
        self.threshold.clear();
        self.left.clear();
        self.leaf_proba.clear();
        self.roots.clear();
        self.min_depths.clear();
    }

    /// Number of flattened trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total node count across all trees.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// `true` when no tree has been flattened in.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Appends one node slot, initialised as a self-looping leaf.
    fn push_node(&mut self) -> u32 {
        let idx = self.feature.len() as u32;
        self.feature.push(0);
        self.threshold.push(f64::NAN);
        self.left.push(idx.wrapping_sub(1));
        self.leaf_proba.push(0.5);
        idx
    }

    /// Reserves the root slot of a new tree and records it in `roots`.
    pub(crate) fn alloc_root(&mut self) -> u32 {
        let idx = self.push_node();
        self.roots.push(idx);
        idx
    }

    /// Records the minimum leaf depth of the most recently allocated
    /// root's tree. Every `alloc_root` must be paired with one
    /// `record_depth` once the tree's nodes are filled in.
    pub(crate) fn record_depth(&mut self, min_depth: u32) {
        debug_assert_eq!(self.min_depths.len() + 1, self.roots.len());
        self.min_depths.push(min_depth);
    }

    /// Reserves two adjacent child slots, returning the left index (the
    /// right child is the returned index + 1).
    pub(crate) fn alloc_pair(&mut self) -> u32 {
        let idx = self.push_node();
        self.push_node();
        idx
    }

    /// Fills a reserved slot as a leaf.
    pub(crate) fn set_leaf(&mut self, at: u32, p_positive: f64) {
        let i = at as usize;
        self.feature[i] = 0;
        self.threshold[i] = f64::NAN;
        self.left[i] = at.wrapping_sub(1);
        self.leaf_proba[i] = p_positive;
    }

    /// Fills a reserved slot as a split whose children start at `kids`.
    pub(crate) fn set_split(&mut self, at: u32, feature: u32, threshold: f64, kids: u32) {
        let at = at as usize;
        self.feature[at] = feature;
        self.threshold[at] = threshold;
        self.left[at] = kids;
    }

    /// Advances one lane cursor one level down its tree. Branchless: a
    /// lane resting on a leaf self-loops (NaN threshold compares false,
    /// routing to `left + 1 = i`).
    #[inline(always)]
    fn step(&self, c: &mut u32, features: &[f64]) {
        let i = *c as usize;
        let go_left = features[self.feature[i] as usize] <= self.threshold[i];
        *c = self.left[i].wrapping_add(u32::from(!go_left));
    }

    /// `true` when node `c` is a leaf. Exact: only leaves store the
    /// wrapping `i - 1` left pointer (split children are always
    /// allocated after their parent, so a split's `left[i] > i`).
    #[inline(always)]
    fn is_leaf(&self, c: u32) -> bool {
        self.left[c as usize] == c.wrapping_sub(1)
    }

    /// Drives every lane from its root to its leaf.
    ///
    /// The first `safe` levels run with no completion checks at all —
    /// callers pass the minimum leaf depth, below which no lane can
    /// terminate. After that the loop stays branch-free in the steps
    /// themselves (finished lanes self-loop harmlessly) and only tests
    /// for completion every second level, trading at most one wasted
    /// double-step per group for a much shorter dependency path.
    #[inline]
    fn walk_lanes<'a>(&self, lanes: &mut [u32], safe: u32, features: impl Fn(usize) -> &'a [f64]) {
        for _ in 0..safe {
            for (l, c) in lanes.iter_mut().enumerate() {
                self.step(c, features(l));
            }
        }
        while !lanes.iter().all(|&c| self.is_leaf(c)) {
            for (l, c) in lanes.iter_mut().enumerate() {
                self.step(c, features(l));
            }
            for (l, c) in lanes.iter_mut().enumerate() {
                self.step(c, features(l));
            }
        }
    }

    /// Ensemble-averaged positive probability for one sample, summing
    /// trees in ensemble order (bit-identical to the pointer walk).
    ///
    /// Walks up to [`LANES`] trees concurrently (one lane per tree) so
    /// their per-level loads overlap; the leaf probabilities are still
    /// added strictly in ensemble order, so the f64 sum is unchanged.
    ///
    /// # Panics
    ///
    /// Panics when the arena is empty; callers check [`is_empty`] first.
    ///
    /// [`is_empty`]: Self::is_empty
    #[must_use]
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        let mut sum = 0.0_f64;
        let mut cur = [0_u32; LANES];
        for (group, depths) in self.roots.chunks(LANES).zip(self.min_depths.chunks(LANES)) {
            let lanes = &mut cur[..group.len()];
            lanes.copy_from_slice(group);
            let safe = depths.iter().copied().min().unwrap_or(0);
            self.walk_lanes(lanes, safe, |_| features);
            for &c in lanes.iter() {
                sum += self.leaf_proba[c as usize];
            }
        }
        sum / self.roots.len() as f64
    }

    /// Ensemble-averaged probabilities for a batch of samples.
    ///
    /// Iterates trees in the outer loop so each tree's node region stays
    /// hot in cache across the whole batch, walking [`LANES`] samples
    /// concurrently per tree (one lane per sample). Per sample the tree
    /// contributions accumulate in ensemble order — the same f64
    /// addition sequence as [`predict_proba`] — keeping batch results
    /// bit-identical to per-sample results.
    #[must_use]
    pub fn predict_batch<S: AsRef<[f64]>>(&self, samples: &[S]) -> Vec<f64> {
        let mut sums = vec![0.0_f64; samples.len()];
        let mut cur = [0_u32; LANES];
        for (&root, &safe) in self.roots.iter().zip(&self.min_depths) {
            for (block, sums_block) in samples.chunks(LANES).zip(sums.chunks_mut(LANES)) {
                let mut refs: [&[f64]; LANES] = [&[]; LANES];
                for (r, s) in refs.iter_mut().zip(block) {
                    *r = s.as_ref();
                }
                let lanes = &mut cur[..block.len()];
                lanes.fill(root);
                self.walk_lanes(lanes, safe, |l| refs[l]);
                for (sum, &c) in sums_block.iter_mut().zip(lanes.iter()) {
                    *sum += self.leaf_proba[c as usize];
                }
            }
        }
        let n = self.roots.len() as f64;
        for sum in &mut sums {
            *sum /= n;
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-build the arena for: root split on feature 0 at 5.0;
    /// left = leaf 0.1, right = split on feature 1 at 2.0 with
    /// leaves 0.6 / 0.9.
    fn small_arena() -> TreeArena {
        let mut a = TreeArena::new();
        let root = a.alloc_root();
        let kids = a.alloc_pair();
        a.set_split(root, 0, 5.0, kids);
        a.set_leaf(kids, 0.1);
        let grandkids = a.alloc_pair();
        a.set_split(kids + 1, 1, 2.0, grandkids);
        a.set_leaf(grandkids, 0.6);
        a.set_leaf(grandkids + 1, 0.9);
        // Minimum leaf depth: the left leaf sits one level down.
        a.record_depth(1);
        a
    }

    #[test]
    fn walks_to_the_right_leaf() {
        let a = small_arena();
        assert_eq!(a.n_trees(), 1);
        assert_eq!(a.n_nodes(), 5);
        assert_eq!(a.predict_proba(&[1.0, 0.0]), 0.1);
        assert_eq!(a.predict_proba(&[9.0, 1.0]), 0.6);
        assert_eq!(a.predict_proba(&[9.0, 3.0]), 0.9);
        // Boundary goes left (<=), matching the pointer walk.
        assert_eq!(a.predict_proba(&[5.0, 0.0]), 0.1);
    }

    #[test]
    fn shallow_lanes_self_loop_while_deep_lanes_finish() {
        // A depth-0 tree grouped with the depth-2 tree: the leaf lane
        // must idle on its self-loop for the group's extra steps.
        let mut a = small_arena();
        let r1 = a.alloc_root();
        a.set_leaf(r1, 1.0);
        a.record_depth(0);
        assert_eq!(a.predict_proba(&[1.0, 0.0]), (0.1 + 1.0) / 2.0);
        assert_eq!(a.predict_proba(&[9.0, 3.0]), (0.9 + 1.0) / 2.0);
    }

    #[test]
    fn batch_matches_per_sample() {
        let a = small_arena();
        let samples: Vec<Vec<f64>> = vec![
            vec![1.0, 0.0],
            vec![9.0, 1.0],
            vec![9.0, 3.0],
            vec![5.0, 2.0],
        ];
        let batched = a.predict_batch(&samples);
        for (s, b) in samples.iter().zip(&batched) {
            assert_eq!(a.predict_proba(s), *b);
        }
    }

    #[test]
    fn multiple_trees_average_in_order() {
        let mut a = TreeArena::new();
        let r0 = a.alloc_root();
        a.set_leaf(r0, 0.25);
        a.record_depth(0);
        let r1 = a.alloc_root();
        a.set_leaf(r1, 0.75);
        a.record_depth(0);
        assert_eq!(a.n_trees(), 2);
        assert_eq!(a.predict_proba(&[]), (0.25 + 0.75) / 2.0);
    }

    #[test]
    fn nan_features_route_right_exactly_like_the_reference_walk() {
        // `x <= t` is false for NaN, so a NaN feature always goes right
        // — on both the reference walk and the flat walk — and a leaf's
        // NaN threshold self-loops regardless of the feature value.
        let a = small_arena();
        assert_eq!(a.predict_proba(&[f64::NAN, f64::NAN]), 0.9);
    }

    #[test]
    fn equality_is_bitwise_despite_nan_thresholds() {
        assert_eq!(small_arena(), small_arena());
        let mut other = small_arena();
        let r = other.alloc_root();
        other.set_leaf(r, 0.5);
        other.record_depth(0);
        assert_ne!(small_arena(), other);
    }

    #[test]
    fn clear_keeps_nothing() {
        let mut a = small_arena();
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.n_nodes(), 0);
    }
}

//! ML error types.

use std::error::Error;
use std::fmt;

/// Errors raised by dataset construction and model training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// The dataset has no rows.
    EmptyDataset,
    /// Rows have inconsistent numbers of features.
    RaggedFeatures {
        /// Feature count of the first row.
        expected: usize,
        /// Feature count of the offending row.
        found: usize,
        /// Index of the offending row.
        row: usize,
    },
    /// Feature and label counts differ.
    LabelMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A feature value is NaN or infinite.
    NonFiniteFeature {
        /// Row of the offending value.
        row: usize,
        /// Column of the offending value.
        column: usize,
    },
    /// An operation requires a fitted model but none was trained.
    NotFitted,
    /// An invalid hyper-parameter was supplied.
    InvalidParameter(String),
    /// Serialized model bytes failed validation during decoding.
    Decode(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyDataset => f.write_str("dataset has no rows"),
            MlError::RaggedFeatures {
                expected,
                found,
                row,
            } => write!(f, "row {row} has {found} features, expected {expected}"),
            MlError::LabelMismatch { rows, labels } => {
                write!(f, "{rows} feature rows but {labels} labels")
            }
            MlError::NonFiniteFeature { row, column } => {
                write!(f, "non-finite feature at row {row}, column {column}")
            }
            MlError::NotFitted => f.write_str("model has not been fitted"),
            MlError::InvalidParameter(p) => write!(f, "invalid parameter: {p}"),
            MlError::Decode(detail) => write!(f, "model decode failed: {detail}"),
        }
    }
}

impl Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(MlError::EmptyDataset.to_string(), "dataset has no rows");
        assert_eq!(
            MlError::LabelMismatch { rows: 3, labels: 2 }.to_string(),
            "3 feature rows but 2 labels"
        );
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MlError>();
    }
}

//! Linear support vector machine (Pegasos).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::scaler::StandardScaler;
use crate::Classifier;

/// A linear SVM trained with the Pegasos stochastic sub-gradient method.
///
/// The paper found SVM the runner-up to Random Forest (ROC area 0.82 vs
/// 0.86) but rejected it as the default because of its parameterisation
/// burden; it is provided here both for the §3.2 comparison and as an
/// alternative predictor. Probability estimates squash the signed margin
/// through a logistic link.
///
/// Features are standardised internally.
///
/// # Example
///
/// ```
/// use smartflux_ml::{Classifier, Dataset, LinearSvm};
///
/// let data = Dataset::new(
///     (0..30).map(|i| vec![i as f64]).collect(),
///     (0..30).map(|i| i >= 15).collect(),
/// ).unwrap();
/// let mut svm = LinearSvm::new();
/// svm.fit(&data).unwrap();
/// assert!(svm.predict(&[29.0]));
/// assert!(!svm.predict(&[0.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    lambda: f64,
    epochs: usize,
    seed: u64,
    weights: Vec<f64>,
    bias: f64,
    scaler: Option<StandardScaler>,
}

impl Default for LinearSvm {
    fn default() -> Self {
        Self::new()
    }
}

impl LinearSvm {
    /// A model with default hyper-parameters (λ = 1e-3, 60 epochs).
    #[must_use]
    pub fn new() -> Self {
        Self {
            lambda: 1e-3,
            epochs: 60,
            seed: 0,
            weights: Vec::new(),
            bias: 0.0,
            scaler: None,
        }
    }

    /// Sets the regularisation strength λ.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not positive.
    #[must_use]
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        self.lambda = lambda;
        self
    }

    /// Sets the number of passes over the data.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        assert!(epochs > 0, "need at least one epoch");
        self.epochs = epochs;
        self
    }

    /// Seeds the stochastic sampling of training instances.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Signed margin `w·x + b` in standardised feature space. Returns 0
    /// before fitting.
    #[must_use]
    pub fn decision_function(&self, features: &[f64]) -> f64 {
        let Some(scaler) = &self.scaler else {
            return 0.0;
        };
        let x = scaler.transform(features);
        self.bias
            + x.iter()
                .zip(&self.weights)
                .map(|(xi, wi)| xi * wi)
                .sum::<f64>()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        let scaler = StandardScaler::fit(data.x());
        let x = scaler.transform_all(data.x());
        let n = data.len();
        let d = data.n_features();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Averaged Pegasos: the running average of the iterates converges
        // far more stably than the final iterate.
        let mut w_avg = vec![0.0; d];
        let mut b_avg = 0.0;
        let iterations = self.epochs * n;
        for t in 1..=iterations {
            let i = rng.random_range(0..n);
            let yi = if data.label(i) { 1.0 } else { -1.0 };
            let eta = 1.0 / (self.lambda * t as f64);
            let margin: f64 = yi * (b + x[i].iter().zip(&w).map(|(xi, wi)| xi * wi).sum::<f64>());
            // Sub-gradient step: always shrink, add the instance if it
            // violates the margin.
            for wi in &mut w {
                *wi *= 1.0 - eta * self.lambda;
            }
            if margin < 1.0 {
                for (wi, xi) in w.iter_mut().zip(&x[i]) {
                    *wi += eta * yi * xi;
                }
                b += eta * yi;
            }
            let blend = 1.0 / t as f64;
            for (a, wi) in w_avg.iter_mut().zip(&w) {
                *a += (wi - *a) * blend;
            }
            b_avg += (b - b_avg) * blend;
        }

        self.weights = w_avg;
        self.bias = b_avg;
        self.scaler = Some(scaler);
        Ok(())
    }

    fn is_fitted(&self) -> bool {
        self.scaler.is_some()
    }

    fn predict_proba(&self, features: &[f64]) -> f64 {
        if self.scaler.is_none() {
            return 0.5;
        }
        let margin = self.decision_function(features);
        1.0 / (1.0 + (-2.0 * margin).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_problem() {
        let data = Dataset::new(
            (0..40)
                .map(|i| vec![(i % 8) as f64, (i / 8) as f64])
                .collect(),
            (0..40)
                .map(|i| (i % 8) as f64 - (i / 8) as f64 > 1.0)
                .collect(),
        )
        .unwrap();
        let mut svm = LinearSvm::new().with_seed(3);
        svm.fit(&data).unwrap();
        assert!(svm.predict(&[7.0, 0.0]));
        assert!(!svm.predict(&[0.0, 4.0]));
    }

    #[test]
    fn margin_sign_matches_prediction() {
        let data = Dataset::new(
            (0..20).map(|i| vec![i as f64]).collect(),
            (0..20).map(|i| i >= 10).collect(),
        )
        .unwrap();
        let mut svm = LinearSvm::new();
        svm.fit(&data).unwrap();
        assert!(svm.decision_function(&[19.0]) > 0.0);
        assert!(svm.decision_function(&[0.0]) < 0.0);
        assert!(svm.predict_proba(&[19.0]) > 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = Dataset::new(
            (0..20).map(|i| vec![i as f64]).collect(),
            (0..20).map(|i| i >= 10).collect(),
        )
        .unwrap();
        let mut a = LinearSvm::new().with_seed(7);
        let mut b = LinearSvm::new().with_seed(7);
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_eq!(a.decision_function(&[4.2]), b.decision_function(&[4.2]));
    }

    #[test]
    fn unfitted_returns_prior() {
        assert_eq!(LinearSvm::new().predict_proba(&[1.0]), 0.5);
    }
}

//! A small feed-forward neural network (the "Neuronal Network" of §3.2).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::scaler::StandardScaler;
use crate::Classifier;

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// A one-hidden-layer multilayer perceptron with sigmoid activations,
/// trained by stochastic gradient descent with backpropagation.
///
/// Features are standardised internally.
///
/// # Example
///
/// ```
/// use smartflux_ml::{Classifier, Dataset, NeuralNetwork};
///
/// // XOR — not linearly separable, needs the hidden layer.
/// let data = Dataset::new(
///     vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]],
///     vec![false, true, true, false],
/// ).unwrap();
/// let mut nn = NeuralNetwork::new(8).with_epochs(4000).with_seed(1);
/// nn.fit(&data).unwrap();
/// assert!(nn.predict(&[0.0, 1.0]));
/// assert!(!nn.predict(&[1.0, 1.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralNetwork {
    hidden: usize,
    learning_rate: f64,
    epochs: usize,
    seed: u64,
    // weights_hidden[h][d], bias_hidden[h], weights_out[h], bias_out
    weights_hidden: Vec<Vec<f64>>,
    bias_hidden: Vec<f64>,
    weights_out: Vec<f64>,
    bias_out: f64,
    scaler: Option<StandardScaler>,
}

impl NeuralNetwork {
    /// A network with `hidden` hidden units (η = 0.5, 800 epochs).
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is zero.
    #[must_use]
    pub fn new(hidden: usize) -> Self {
        assert!(hidden > 0, "need at least one hidden unit");
        Self {
            hidden,
            learning_rate: 0.5,
            epochs: 800,
            seed: 0,
            weights_hidden: Vec::new(),
            bias_hidden: Vec::new(),
            weights_out: Vec::new(),
            bias_out: 0.0,
            scaler: None,
        }
    }

    /// Sets the SGD learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    #[must_use]
    pub fn with_learning_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "learning rate must be positive");
        self.learning_rate = rate;
        self
    }

    /// Sets the number of epochs.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        assert!(epochs > 0, "need at least one epoch");
        self.epochs = epochs;
        self
    }

    /// Seeds weight initialisation and instance shuffling.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, f64) {
        let hidden_out: Vec<f64> = self
            .weights_hidden
            .iter()
            .zip(&self.bias_hidden)
            .map(|(w, b)| sigmoid(b + w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>()))
            .collect();
        let out = sigmoid(
            self.bias_out
                + hidden_out
                    .iter()
                    .zip(&self.weights_out)
                    .map(|(h, w)| h * w)
                    .sum::<f64>(),
        );
        (hidden_out, out)
    }
}

impl Classifier for NeuralNetwork {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        let scaler = StandardScaler::fit(data.x());
        let x = scaler.transform_all(data.x());
        let d = data.n_features();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let init = |rng: &mut StdRng| rng.random_range(-0.5..0.5);

        self.weights_hidden = (0..self.hidden)
            .map(|_| (0..d).map(|_| init(&mut rng)).collect())
            .collect();
        self.bias_hidden = (0..self.hidden).map(|_| init(&mut rng)).collect();
        self.weights_out = (0..self.hidden).map(|_| init(&mut rng)).collect();
        self.bias_out = init(&mut rng);
        self.scaler = Some(scaler);

        let n = data.len();
        for _ in 0..self.epochs {
            for _ in 0..n {
                let i = rng.random_range(0..n);
                let target = if data.label(i) { 1.0 } else { 0.0 };
                let (hidden_out, out) = self.forward(&x[i]);

                // Output layer gradient (cross-entropy with sigmoid).
                let delta_out = out - target;
                // Hidden layer gradients.
                let delta_hidden: Vec<f64> = hidden_out
                    .iter()
                    .zip(&self.weights_out)
                    .map(|(h, w)| delta_out * w * h * (1.0 - h))
                    .collect();

                for (w, h) in self.weights_out.iter_mut().zip(&hidden_out) {
                    *w -= self.learning_rate * delta_out * h;
                }
                self.bias_out -= self.learning_rate * delta_out;

                for ((wrow, b), dh) in self
                    .weights_hidden
                    .iter_mut()
                    .zip(&mut self.bias_hidden)
                    .zip(&delta_hidden)
                {
                    for (w, xi) in wrow.iter_mut().zip(&x[i]) {
                        *w -= self.learning_rate * dh * xi;
                    }
                    *b -= self.learning_rate * dh;
                }
            }
        }
        Ok(())
    }

    fn is_fitted(&self) -> bool {
        self.scaler.is_some()
    }

    fn predict_proba(&self, features: &[f64]) -> f64 {
        let Some(scaler) = &self.scaler else {
            return 0.5;
        };
        let x = scaler.transform(features);
        self.forward(&x).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_boundary() {
        let data = Dataset::new(
            (0..30).map(|i| vec![i as f64]).collect(),
            (0..30).map(|i| i >= 15).collect(),
        )
        .unwrap();
        let mut nn = NeuralNetwork::new(4).with_epochs(300).with_seed(2);
        nn.fit(&data).unwrap();
        assert!(nn.predict(&[28.0]));
        assert!(!nn.predict(&[1.0]));
    }

    #[test]
    fn learns_xor() {
        let data = Dataset::new(
            vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![1.0, 1.0],
            ],
            vec![false, true, true, false],
        )
        .unwrap();
        let mut nn = NeuralNetwork::new(8).with_epochs(4000).with_seed(1);
        nn.fit(&data).unwrap();
        assert!(nn.predict(&[0.0, 1.0]));
        assert!(nn.predict(&[1.0, 0.0]));
        assert!(!nn.predict(&[0.0, 0.0]));
        assert!(!nn.predict(&[1.0, 1.0]));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = Dataset::new(
            (0..10).map(|i| vec![i as f64]).collect(),
            (0..10).map(|i| i >= 5).collect(),
        )
        .unwrap();
        let mut a = NeuralNetwork::new(3).with_epochs(50).with_seed(11);
        let mut b = NeuralNetwork::new(3).with_epochs(50).with_seed(11);
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_eq!(a.predict_proba(&[3.3]), b.predict_proba(&[3.3]));
    }

    #[test]
    #[should_panic(expected = "at least one hidden unit")]
    fn zero_hidden_units_panics() {
        let _ = NeuralNetwork::new(0);
    }

    #[test]
    fn unfitted_returns_prior() {
        assert_eq!(NeuralNetwork::new(2).predict_proba(&[1.0]), 0.5);
    }
}

//! Gaussian naive Bayes (the Bayes-network stand-in of §3.2).

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::Classifier;

const MIN_VARIANCE: f64 = 1e-9;

#[derive(Debug, Clone, PartialEq)]
struct ClassModel {
    prior_log: f64,
    means: Vec<f64>,
    variances: Vec<f64>,
}

impl ClassModel {
    fn log_likelihood(&self, features: &[f64]) -> f64 {
        let mut ll = self.prior_log;
        for ((x, m), v) in features.iter().zip(&self.means).zip(&self.variances) {
            let var = v.max(MIN_VARIANCE);
            ll += -0.5 * ((x - m) * (x - m) / var + var.ln() + std::f64::consts::TAU.ln());
        }
        ll
    }
}

/// A Gaussian naive Bayes classifier.
///
/// Models each feature as an independent normal distribution per class.
/// This is our stand-in for WEKA's "BayesNet" entry in the paper's
/// algorithm comparison — with continuous impact features and independent
/// per-step impacts, a naive structure is the natural network.
///
/// # Example
///
/// ```
/// use smartflux_ml::{Classifier, Dataset, GaussianNaiveBayes};
///
/// let data = Dataset::new(
///     vec![vec![1.0], vec![1.2], vec![8.0], vec![8.4]],
///     vec![false, false, true, true],
/// ).unwrap();
/// let mut nb = GaussianNaiveBayes::new();
/// nb.fit(&data).unwrap();
/// assert!(nb.predict(&[7.9]));
/// assert!(!nb.predict(&[1.1]));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GaussianNaiveBayes {
    positive: Option<ClassModel>,
    negative: Option<ClassModel>,
}

impl GaussianNaiveBayes {
    /// Creates an unfitted model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn class_model(data: &Dataset, label: bool, smoothing_prior: f64) -> Option<ClassModel> {
        let rows: Vec<&[f64]> = (0..data.len())
            .filter(|&i| data.label(i) == label)
            .map(|i| data.features(i))
            .collect();
        if rows.is_empty() {
            return None;
        }
        let n = rows.len() as f64;
        let d = data.n_features();
        let mut means = vec![0.0; d];
        for row in &rows {
            for (m, x) in means.iter_mut().zip(*row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut variances = vec![0.0; d];
        for row in &rows {
            for ((v, x), m) in variances.iter_mut().zip(*row).zip(&means) {
                *v += (x - m) * (x - m);
            }
        }
        for v in &mut variances {
            *v = (*v / n).max(MIN_VARIANCE);
        }
        Some(ClassModel {
            prior_log: ((n + smoothing_prior) / (data.len() as f64 + 2.0 * smoothing_prior)).ln(),
            means,
            variances,
        })
    }
}

impl Classifier for GaussianNaiveBayes {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        // Laplace-style prior smoothing keeps single-class datasets usable.
        self.positive = Self::class_model(data, true, 1.0);
        self.negative = Self::class_model(data, false, 1.0);
        Ok(())
    }

    fn is_fitted(&self) -> bool {
        // A single-class dataset legitimately fits only one class model.
        self.positive.is_some() || self.negative.is_some()
    }

    fn predict_proba(&self, features: &[f64]) -> f64 {
        match (&self.positive, &self.negative) {
            (Some(p), Some(n)) => {
                let lp = p.log_likelihood(features);
                let ln = n.log_likelihood(features);
                // Softmax over the two log-joint scores.
                let m = lp.max(ln);
                let ep = (lp - m).exp();
                let en = (ln - m).exp();
                ep / (ep + en)
            }
            (Some(_), None) => 1.0,
            (None, Some(_)) => 0.0,
            (None, None) => 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_gaussian_clusters() {
        let data = Dataset::new(
            (0..50)
                .map(|i| {
                    if i < 25 {
                        vec![(i % 5) as f64 * 0.1]
                    } else {
                        vec![10.0 + (i % 5) as f64 * 0.1]
                    }
                })
                .collect(),
            (0..50).map(|i| i >= 25).collect(),
        )
        .unwrap();
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&data).unwrap();
        assert!(nb.predict(&[10.2]));
        assert!(!nb.predict(&[0.2]));
        let p = nb.predict_proba(&[5.1]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn single_class_dataset() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![false, false]).unwrap();
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&data).unwrap();
        assert_eq!(nb.predict_proba(&[1.5]), 0.0);
    }

    #[test]
    fn zero_variance_feature_does_not_nan() {
        let data = Dataset::new(
            vec![
                vec![5.0, 1.0],
                vec![5.0, 2.0],
                vec![5.0, 9.0],
                vec![5.0, 10.0],
            ],
            vec![false, false, true, true],
        )
        .unwrap();
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&data).unwrap();
        let p = nb.predict_proba(&[5.0, 9.5]);
        assert!(p.is_finite());
        assert!(p > 0.5);
    }

    #[test]
    fn unfitted_returns_prior() {
        assert_eq!(GaussianNaiveBayes::new().predict_proba(&[0.0]), 0.5);
    }
}

//! Multi-label classification via binary relevance (the MEKA role).

use crate::codec;
use crate::dataset::MultiLabelDataset;
use crate::error::MlError;
use crate::Classifier;

/// A multi-label classifier built from one binary classifier per label.
///
/// This is the transformation MEKA applies on top of WEKA in the paper: the
/// shared feature vector (per-step input impacts for a wave) is fed to an
/// independent copy of the base classifier per label column (per step), and
/// the predictions are concatenated into the execution configuration `Y`
/// of §3.1.
///
/// # Example
///
/// ```
/// use smartflux_ml::{BinaryRelevance, MultiLabelDataset, RandomForest};
///
/// // Label 0 fires when feature 0 is high; label 1 when feature 1 is high.
/// let data = MultiLabelDataset::new(
///     (0..40).map(|i| vec![(i % 10) as f64, (i / 10) as f64]).collect(),
///     (0..40).map(|i| vec![(i % 10) >= 5, (i / 10) >= 2]).collect(),
/// ).unwrap();
///
/// let mut model = BinaryRelevance::new(RandomForest::new(10).with_seed(1));
/// model.fit(&data).unwrap();
/// assert_eq!(model.predict(&[9.0, 0.0]), vec![true, false]);
/// assert_eq!(model.predict(&[0.0, 3.0]), vec![false, true]);
/// ```
#[derive(Debug, Clone)]
pub struct BinaryRelevance<C> {
    template: C,
    models: Vec<C>,
}

impl<C> BinaryRelevance<C>
where
    C: Classifier + Clone,
{
    /// Creates a wrapper that clones `template` for each label at fit time.
    #[must_use]
    pub fn new(template: C) -> Self {
        Self {
            template,
            models: Vec::new(),
        }
    }

    /// Fits one model per label column.
    ///
    /// # Errors
    ///
    /// Propagates dataset and training errors from the base classifier.
    pub fn fit(&mut self, data: &MultiLabelDataset) -> Result<(), MlError> {
        let mut models = Vec::with_capacity(data.n_labels());
        for j in 0..data.n_labels() {
            let view = data.binary_view(j)?;
            let mut model = self.template.clone();
            model.fit(&view)?;
            models.push(model);
        }
        self.models = models;
        Ok(())
    }

    /// Number of fitted label models (0 before fitting).
    #[must_use]
    pub fn n_labels(&self) -> usize {
        self.models.len()
    }

    /// `true` once every per-label model has been fitted (or decoded
    /// from a fitted model's bytes).
    #[must_use]
    pub fn is_fitted(&self) -> bool {
        !self.models.is_empty() && self.models.iter().all(|m| m.is_fitted())
    }

    /// Per-label positive probabilities for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if called before [`fit`](Self::fit).
    #[must_use]
    pub fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        assert!(!self.models.is_empty(), "model has not been fitted");
        self.models
            .iter()
            .map(|m| m.predict_proba(features))
            .collect()
    }

    /// Per-label hard predictions (each base model applies its own
    /// threshold).
    ///
    /// # Panics
    ///
    /// Panics if called before [`fit`](Self::fit).
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> Vec<bool> {
        assert!(!self.models.is_empty(), "model has not been fitted");
        self.models.iter().map(|m| m.predict(features)).collect()
    }

    /// The fitted model for label `j`, if fitted.
    #[must_use]
    pub fn label_model(&self, j: usize) -> Option<&C> {
        self.models.get(j)
    }
}

impl BinaryRelevance<crate::RandomForest> {
    /// Serialises a fitted Random-Forest multi-label model into a versioned
    /// text form (one forest block per label).
    ///
    /// Deployments that want to ship a trained SmartFlux model rather than
    /// a training log can persist this next to the knowledge-base CSV.
    /// Returns `None` before fitting.
    #[must_use]
    pub fn to_text(&self) -> Option<String> {
        if self.models.is_empty() {
            return None;
        }
        let mut out = format!("multilabel v1 labels={}\n", self.models.len());
        for model in &self.models {
            out.push_str("label\n");
            out.push_str(&model.to_text()?);
        }
        Some(out)
    }

    /// Reconstructs a fitted multi-label model from its
    /// [`to_text`](Self::to_text) form.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first structural problem.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty multilabel text")?;
        let mut fields = header.split_whitespace();
        if fields.next() != Some("multilabel") || fields.next() != Some("v1") {
            return Err("bad multilabel header".into());
        }
        let labels: usize = fields
            .next()
            .and_then(|f| f.strip_prefix("labels="))
            .ok_or("header missing label count")?
            .parse()
            .map_err(|e| format!("bad label count: {e}"))?;

        let mut chunks: Vec<String> = Vec::new();
        for line in lines {
            if line.trim() == "label" {
                chunks.push(String::new());
            } else if let Some(current) = chunks.last_mut() {
                current.push_str(line);
                current.push('\n');
            } else if !line.trim().is_empty() {
                return Err("model data before first `label` sentinel".into());
            }
        }
        if chunks.len() != labels {
            return Err(format!(
                "header declared {labels} labels, found {}",
                chunks.len()
            ));
        }
        let models = chunks
            .iter()
            .map(|c| crate::RandomForest::from_text(c))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            template: crate::RandomForest::new(models.first().map_or(1, |m| m.n_trees())),
            models,
        })
    }

    /// Serialises a fitted Random-Forest multi-label model into a
    /// versioned binary form (one length-prefixed forest blob per label),
    /// preserving exact `f64` bit patterns. Returns `None` before fitting.
    #[must_use]
    pub fn to_bytes(&self) -> Option<Vec<u8>> {
        if self.models.is_empty() {
            return None;
        }
        let mut out = Vec::new();
        out.extend_from_slice(b"SFML");
        codec::put_u16(&mut out, 1); // format version
        codec::put_u32(&mut out, self.models.len() as u32);
        for model in &self.models {
            let blob = model.to_bytes()?;
            codec::put_u32(&mut out, blob.len() as u32);
            out.extend_from_slice(&blob);
        }
        Some(out)
    }

    /// Reconstructs a fitted multi-label model from its
    /// [`to_bytes`](Self::to_bytes) form.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::Decode`] describing the first structural
    /// problem; malformed bytes never panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MlError> {
        let mut r = codec::Reader::new(bytes);
        let magic = r.slice(4, "multilabel magic")?;
        if magic != b"SFML" {
            return Err(MlError::Decode("bad multilabel magic".into()));
        }
        let version = r.u16()?;
        if version != 1 {
            return Err(MlError::Decode(format!(
                "unsupported multilabel format version {version}"
            )));
        }
        let labels = r.u32()? as usize;
        if labels == 0 {
            return Err(MlError::Decode(
                "multilabel model must hold at least one label".into(),
            ));
        }
        let mut models = Vec::with_capacity(labels.min(4096));
        for _ in 0..labels {
            let len = r.u32()? as usize;
            let blob = r.slice(len, "forest blob")?;
            models.push(crate::RandomForest::from_bytes(blob)?);
        }
        if !r.is_exhausted() {
            return Err(MlError::Decode(
                "trailing bytes after multilabel model".into(),
            ));
        }
        Ok(Self {
            template: crate::RandomForest::new(models.first().map_or(1, |m| m.n_trees())),
            models,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForest;
    use crate::tree::DecisionTree;

    fn data() -> MultiLabelDataset {
        MultiLabelDataset::new(
            (0..60)
                .map(|i| vec![(i % 12) as f64, (i / 12) as f64])
                .collect(),
            (0..60)
                .map(|i| vec![(i % 12) >= 6, (i / 12) >= 3, i % 12 == 0])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn fits_one_model_per_label() {
        let mut m = BinaryRelevance::new(DecisionTree::new());
        assert!(!m.is_fitted());
        m.fit(&data()).unwrap();
        assert!(m.is_fitted());
        assert_eq!(m.n_labels(), 3);
        assert!(m.label_model(2).is_some());
        assert!(m.label_model(3).is_none());
    }

    #[test]
    fn labels_are_independent() {
        let mut m = BinaryRelevance::new(RandomForest::new(15).with_seed(4));
        m.fit(&data()).unwrap();
        assert_eq!(m.predict(&[11.0, 0.0])[..2], [true, false]);
        assert_eq!(m.predict(&[0.0, 4.0])[..2], [false, true]);
    }

    #[test]
    fn probabilities_have_label_arity() {
        let mut m = BinaryRelevance::new(DecisionTree::new());
        m.fit(&data()).unwrap();
        let p = m.predict_proba(&[3.0, 3.0]);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn text_roundtrip_preserves_predictions() {
        let mut m = BinaryRelevance::new(RandomForest::new(7).with_seed(5));
        m.fit(&data()).unwrap();
        let text = m.to_text().unwrap();
        let restored = BinaryRelevance::<RandomForest>::from_text(&text).unwrap();
        assert_eq!(restored.n_labels(), 3);
        for probe in [[0.0, 0.0], [11.0, 4.0], [6.0, 2.0]] {
            assert_eq!(m.predict(&probe), restored.predict(&probe));
            assert_eq!(m.predict_proba(&probe), restored.predict_proba(&probe));
        }
        let unfitted: BinaryRelevance<RandomForest> = BinaryRelevance::new(RandomForest::new(3));
        assert!(unfitted.to_text().is_none());
    }

    #[test]
    fn binary_roundtrip_preserves_predictions() {
        let mut m = BinaryRelevance::new(RandomForest::new(7).with_seed(5));
        m.fit(&data()).unwrap();
        let bytes = m.to_bytes().unwrap();
        let restored = BinaryRelevance::<RandomForest>::from_bytes(&bytes).unwrap();
        assert_eq!(restored.n_labels(), 3);
        for probe in [[0.0, 0.0], [11.0, 4.0], [6.0, 2.0]] {
            assert_eq!(m.predict(&probe), restored.predict(&probe));
            assert_eq!(m.predict_proba(&probe), restored.predict_proba(&probe));
        }
        assert_eq!(restored.to_bytes().unwrap(), bytes);
        let unfitted: BinaryRelevance<RandomForest> = BinaryRelevance::new(RandomForest::new(3));
        assert!(unfitted.to_bytes().is_none());
    }

    #[test]
    fn from_bytes_rejects_malformed_input() {
        let mut m = BinaryRelevance::new(RandomForest::new(3).with_seed(9));
        m.fit(&data()).unwrap();
        let good = m.to_bytes().unwrap();

        assert!(BinaryRelevance::<RandomForest>::from_bytes(&[]).is_err());
        assert!(BinaryRelevance::<RandomForest>::from_bytes(b"XXML").is_err());
        for cut in 0..good.len() {
            assert!(BinaryRelevance::<RandomForest>::from_bytes(&good[..cut]).is_err());
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(BinaryRelevance::<RandomForest>::from_bytes(&trailing).is_err());
        let mut versioned = good;
        versioned[4] = 9;
        assert!(BinaryRelevance::<RandomForest>::from_bytes(&versioned).is_err());
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(BinaryRelevance::<RandomForest>::from_text("").is_err());
        assert!(BinaryRelevance::<RandomForest>::from_text("multilabel v2 labels=1").is_err());
        assert!(BinaryRelevance::<RandomForest>::from_text(
            "multilabel v1 labels=2\nlabel\nforest v1 trees=1 threshold=0.5\ntree\nL 0.5\n"
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "has not been fitted")]
    fn predicting_unfitted_panics() {
        let m: BinaryRelevance<DecisionTree> = BinaryRelevance::new(DecisionTree::new());
        let _ = m.predict(&[1.0, 2.0]);
    }
}

//! Little-endian binary primitives shared by the model codecs.
//!
//! The text forms (`to_text`/`from_text`) are for human inspection; the
//! binary forms (`to_bytes`/`from_bytes`) are for checkpoints, where
//! exactness matters: `f64` values travel as raw IEEE-754 bit patterns,
//! so a restored model is bit-identical to the one serialised.

use crate::error::MlError;

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A bounds-checked cursor whose failures are typed [`MlError::Decode`]
/// values, never panics — checkpoint restore feeds this attacker-grade
/// input (arbitrary bytes from disk).
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], MlError> {
        let remaining = self.buf.len() - self.pos;
        if remaining < n {
            return Err(MlError::Decode(format!(
                "truncated model bytes: needed {n} bytes for {what}, had {remaining}"
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, MlError> {
        Ok(self.take(1, "u8")?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, MlError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, MlError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, MlError> {
        let b = self.take(8, "f64")?;
        Ok(f64::from_bits(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ])))
    }

    pub(crate) fn slice(&mut self, n: usize, what: &str) -> Result<&'a [u8], MlError> {
        self.take(n, what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_truncation() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 3);
        put_u16(&mut buf, 700);
        put_u32(&mut buf, 1 << 20);
        put_f64(&mut buf, -0.25);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 3);
        assert_eq!(r.u16().unwrap(), 700);
        assert_eq!(r.u32().unwrap(), 1 << 20);
        assert_eq!(r.f64().unwrap(), -0.25);
        assert!(r.is_exhausted());
        assert!(matches!(r.u8(), Err(MlError::Decode(_))));
    }
}

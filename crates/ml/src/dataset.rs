//! Feature/label containers.

use crate::error::MlError;

fn validate_features(x: &[Vec<f64>]) -> Result<usize, MlError> {
    if x.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    let width = x[0].len();
    for (i, row) in x.iter().enumerate() {
        if row.len() != width {
            return Err(MlError::RaggedFeatures {
                expected: width,
                found: row.len(),
                row: i,
            });
        }
        for (j, v) in row.iter().enumerate() {
            if !v.is_finite() {
                return Err(MlError::NonFiniteFeature { row: i, column: j });
            }
        }
    }
    Ok(width)
}

/// A binary-classification dataset: numeric feature rows plus boolean labels.
///
/// Construction validates shape (rectangular, finite, labels aligned), so a
/// `Dataset` handed to a classifier is always well-formed.
///
/// # Example
///
/// ```
/// use smartflux_ml::Dataset;
///
/// let d = Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![true, false]).unwrap();
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.n_features(), 2);
/// assert_eq!(d.positives(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    x: Vec<Vec<f64>>,
    y: Vec<bool>,
    n_features: usize,
}

impl Dataset {
    /// Builds a dataset from feature rows and labels.
    ///
    /// # Errors
    ///
    /// Fails if `x` is empty, ragged or non-finite, or if `y` is not the
    /// same length as `x`.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<bool>) -> Result<Self, MlError> {
        let n_features = validate_features(&x)?;
        if x.len() != y.len() {
            return Err(MlError::LabelMismatch {
                rows: x.len(),
                labels: y.len(),
            });
        }
        Ok(Self { x, y, n_features })
    }

    /// Number of instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` if the dataset has no instances (never true for a
    /// successfully constructed dataset).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of features per instance.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature row `i`.
    #[must_use]
    pub fn features(&self, i: usize) -> &[f64] {
        &self.x[i]
    }

    /// Label of instance `i`.
    #[must_use]
    pub fn label(&self, i: usize) -> bool {
        self.y[i]
    }

    /// All feature rows.
    #[must_use]
    pub fn x(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// All labels.
    #[must_use]
    pub fn y(&self) -> &[bool] {
        &self.y
    }

    /// Number of positive instances.
    #[must_use]
    pub fn positives(&self) -> usize {
        self.y.iter().filter(|&&b| b).count()
    }

    /// Builds a dataset from a subset of instance indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            n_features: self.n_features,
        }
    }
}

/// A multi-label dataset: shared feature rows, one boolean per label column.
///
/// This mirrors the paper's learning problem: the feature vector is the
/// per-step input impacts for a wave; label column `j` says whether step
/// `j`'s output error exceeds its bound (i.e. the step must execute).
///
/// # Example
///
/// ```
/// use smartflux_ml::MultiLabelDataset;
///
/// let d = MultiLabelDataset::new(
///     vec![vec![694.86, 601.6], vec![191.24, 886.1]],
///     vec![vec![true, false], vec![false, false]],
/// ).unwrap();
/// assert_eq!(d.n_labels(), 2);
/// assert!(d.label_column(0).unwrap()[0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLabelDataset {
    x: Vec<Vec<f64>>,
    y: Vec<Vec<bool>>,
    n_features: usize,
    n_labels: usize,
}

impl MultiLabelDataset {
    /// Builds a multi-label dataset.
    ///
    /// # Errors
    ///
    /// Fails on the same shape violations as [`Dataset::new`], applied to
    /// both the feature matrix and the label matrix.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<Vec<bool>>) -> Result<Self, MlError> {
        let n_features = validate_features(&x)?;
        if x.len() != y.len() {
            return Err(MlError::LabelMismatch {
                rows: x.len(),
                labels: y.len(),
            });
        }
        let n_labels = y[0].len();
        for (i, row) in y.iter().enumerate() {
            if row.len() != n_labels {
                return Err(MlError::RaggedFeatures {
                    expected: n_labels,
                    found: row.len(),
                    row: i,
                });
            }
        }
        Ok(Self {
            x,
            y,
            n_features,
            n_labels,
        })
    }

    /// Number of instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` if there are no instances.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of features per instance.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of label columns.
    #[must_use]
    pub fn n_labels(&self) -> usize {
        self.n_labels
    }

    /// All feature rows.
    #[must_use]
    pub fn x(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// All label rows.
    #[must_use]
    pub fn y(&self) -> &[Vec<bool>] {
        &self.y
    }

    /// Projects label column `j` into a single-label [`Dataset`]
    /// (the binary-relevance transformation).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] if `j` is out of range.
    pub fn binary_view(&self, j: usize) -> Result<Dataset, MlError> {
        if j >= self.n_labels {
            return Err(MlError::InvalidParameter(format!(
                "label column {j} out of range (have {})",
                self.n_labels
            )));
        }
        Dataset::new(self.x.clone(), self.y.iter().map(|r| r[j]).collect())
    }

    /// Label column `j` as a plain vector.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] if `j` is out of range.
    pub fn label_column(&self, j: usize) -> Result<Vec<bool>, MlError> {
        if j >= self.n_labels {
            return Err(MlError::InvalidParameter(format!(
                "label column {j} out of range (have {})",
                self.n_labels
            )));
        }
        Ok(self.y.iter().map(|r| r[j]).collect())
    }

    /// Takes the first `n` instances (a training prefix, as the paper does
    /// when varying training-set size in Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the dataset length.
    #[must_use]
    pub fn prefix(&self, n: usize) -> MultiLabelDataset {
        assert!(n > 0 && n <= self.len(), "prefix length out of range");
        MultiLabelDataset {
            x: self.x[..n].to_vec(),
            y: self.y[..n].to_vec(),
            n_features: self.n_features,
            n_labels: self.n_labels,
        }
    }

    /// Takes the instances from `start` to the end (the paper's test sets
    /// are "taken in subsequent waves as those of training-sets").
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    #[must_use]
    pub fn suffix(&self, start: usize) -> MultiLabelDataset {
        assert!(start < self.len(), "suffix start out of range");
        MultiLabelDataset {
            x: self.x[start..].to_vec(),
            y: self.y[start..].to_vec(),
            n_features: self.n_features,
            n_labels: self.n_labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert_eq!(Dataset::new(vec![], vec![]), Err(MlError::EmptyDataset));
    }

    #[test]
    fn rejects_ragged() {
        let e = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![true, false]).unwrap_err();
        assert!(matches!(e, MlError::RaggedFeatures { row: 1, .. }));
    }

    #[test]
    fn rejects_nan() {
        let e = Dataset::new(vec![vec![f64::NAN]], vec![true]).unwrap_err();
        assert!(matches!(e, MlError::NonFiniteFeature { row: 0, column: 0 }));
    }

    #[test]
    fn rejects_label_mismatch() {
        let e = Dataset::new(vec![vec![1.0]], vec![true, false]).unwrap_err();
        assert!(matches!(e, MlError::LabelMismatch { rows: 1, labels: 2 }));
    }

    #[test]
    fn subset_selects_rows() {
        let d = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![false, true, false],
        )
        .unwrap();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.features(0), &[2.0]);
        assert_eq!(s.features(1), &[0.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn multilabel_binary_view() {
        let d = MultiLabelDataset::new(
            vec![vec![1.0], vec![2.0]],
            vec![vec![true, false], vec![true, true]],
        )
        .unwrap();
        let col1 = d.binary_view(1).unwrap();
        assert_eq!(col1.y(), &[false, true]);
        assert!(d.binary_view(2).is_err());
    }

    #[test]
    fn prefix_suffix_split() {
        let d = MultiLabelDataset::new(
            (0..10).map(|i| vec![i as f64]).collect(),
            (0..10).map(|i| vec![i % 2 == 0]).collect(),
        )
        .unwrap();
        let train = d.prefix(6);
        let test = d.suffix(6);
        assert_eq!(train.len(), 6);
        assert_eq!(test.len(), 4);
        assert_eq!(test.x()[0], vec![6.0]);
    }

    #[test]
    #[should_panic(expected = "prefix length out of range")]
    fn oversized_prefix_panics() {
        let d = MultiLabelDataset::new(vec![vec![1.0]], vec![vec![true]]).unwrap();
        let _ = d.prefix(2);
    }
}

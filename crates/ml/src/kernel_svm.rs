//! Kernelised support vector machine (kernel Pegasos).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::scaler::StandardScaler;
use crate::Classifier;

/// Kernels available to [`KernelSvm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// The linear kernel `⟨x, z⟩` (equivalent to [`LinearSvm`] up to the
    /// optimiser).
    ///
    /// [`LinearSvm`]: crate::LinearSvm
    Linear,
    /// The Gaussian radial-basis-function kernel `exp(−γ‖x − z‖²)`.
    Rbf {
        /// The bandwidth γ.
        gamma: f64,
    },
    /// The polynomial kernel `(⟨x, z⟩ + c)^d`.
    Polynomial {
        /// The degree `d`.
        degree: u32,
        /// The offset `c`.
        offset: f64,
    },
}

impl Kernel {
    fn eval(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Kernel::Linear => dot(a, b),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, z)| (x - z) * (x - z)).sum();
                (-gamma * d2).exp()
            }
            Kernel::Polynomial { degree, offset } => (dot(a, b) + offset).powi(degree as i32),
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, z)| x * z).sum()
}

/// A kernel SVM trained with the kernelised Pegasos algorithm.
///
/// This is the stand-in for WEKA's SMO with a user-selected kernel — the
/// configuration the paper's §3.2 comparison used and whose
/// parameterisation burden ("selecting a proper kernel to capture linear or
/// non-linear data correlations") it cites for preferring Random Forests.
/// The default RBF kernel with the median-distance heuristic for γ handles
/// the non-linear impact/error relations well.
///
/// Features are standardised internally. Prediction cost is linear in the
/// number of support vectors, which Pegasos keeps sparse.
///
/// # Example
///
/// ```
/// use smartflux_ml::{Classifier, Dataset, KernelSvm};
///
/// // A band: positive only in the middle — not linearly separable.
/// let data = Dataset::new(
///     (0..60).map(|i| vec![i as f64]).collect(),
///     (0..60).map(|i| (20..40).contains(&i)).collect(),
/// ).unwrap();
/// let mut svm = KernelSvm::rbf();
/// svm.fit(&data).unwrap();
/// assert!(svm.predict(&[30.0]));
/// assert!(!svm.predict(&[5.0]));
/// assert!(!svm.predict(&[55.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSvm {
    kernel: Option<Kernel>,
    lambda: f64,
    epochs: usize,
    seed: u64,
    /// Pegasos counts per training instance (α).
    alphas: Vec<f64>,
    /// 1/(λT) normalisation captured at the end of training.
    scale: f64,
    support_x: Vec<Vec<f64>>,
    support_y: Vec<f64>,
    scaler: Option<StandardScaler>,
}

impl Default for KernelSvm {
    fn default() -> Self {
        Self::rbf()
    }
}

impl KernelSvm {
    /// An RBF-kernel SVM; γ is chosen at fit time by the median-distance
    /// heuristic.
    #[must_use]
    pub fn rbf() -> Self {
        Self {
            kernel: None, // resolved at fit time
            lambda: 1e-2,
            epochs: 30,
            seed: 0,
            alphas: Vec::new(),
            scale: 0.0,
            support_x: Vec::new(),
            support_y: Vec::new(),
            scaler: None,
        }
    }

    /// An SVM with an explicit kernel.
    #[must_use]
    pub fn with_kernel(kernel: Kernel) -> Self {
        Self {
            kernel: Some(kernel),
            ..Self::rbf()
        }
    }

    /// Sets the regularisation strength λ.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not positive.
    #[must_use]
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        self.lambda = lambda;
        self
    }

    /// Sets the number of passes over the data.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        assert!(epochs > 0, "need at least one epoch");
        self.epochs = epochs;
        self
    }

    /// Seeds the stochastic instance sampling.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of support vectors of the fitted model (0 before fitting).
    #[must_use]
    pub fn support_vectors(&self) -> usize {
        self.alphas.iter().filter(|&&a| a > 0.0).count()
    }

    /// The kernel in use (`None` before an RBF model is fitted, since γ is
    /// data-dependent).
    #[must_use]
    pub fn kernel(&self) -> Option<Kernel> {
        self.kernel
    }

    /// Median-distance heuristic: `γ = 1 / (2 · median‖x − z‖²)` over a
    /// sample of pairs.
    fn heuristic_gamma(x: &[Vec<f64>], seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let n = x.len();
        let mut d2s: Vec<f64> = (0..256)
            .map(|_| {
                let a = rng.random_range(0..n);
                let b = rng.random_range(0..n);
                x[a].iter().zip(&x[b]).map(|(p, q)| (p - q) * (p - q)).sum()
            })
            .filter(|d: &f64| *d > 0.0)
            .collect();
        if d2s.is_empty() {
            return 1.0;
        }
        d2s.sort_by(f64::total_cmp);
        let median = d2s[d2s.len() / 2];
        1.0 / (2.0 * median)
    }

    /// Signed decision value. Returns 0 before fitting.
    #[must_use]
    pub fn decision_function(&self, features: &[f64]) -> f64 {
        let (Some(scaler), Some(kernel)) = (&self.scaler, self.kernel) else {
            return 0.0;
        };
        let x = scaler.transform(features);
        let mut sum = 0.0;
        for ((alpha, sx), sy) in self.alphas.iter().zip(&self.support_x).zip(&self.support_y) {
            if *alpha > 0.0 {
                sum += alpha * sy * kernel.eval(sx, &x);
            }
        }
        sum * self.scale
    }
}

impl Classifier for KernelSvm {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        let scaler = StandardScaler::fit(data.x());
        let x = scaler.transform_all(data.x());
        let y: Vec<f64> = data
            .y()
            .iter()
            .map(|&b| if b { 1.0 } else { -1.0 })
            .collect();
        let n = data.len();

        let kernel = self.kernel.unwrap_or_else(|| Kernel::Rbf {
            gamma: Self::heuristic_gamma(&x, self.seed),
        });

        let mut alphas = vec![0.0_f64; n];
        let mut rng = StdRng::seed_from_u64(self.seed);
        let iterations = self.epochs * n;
        for t in 1..=iterations {
            let i = rng.random_range(0..n);
            // decision_i = (1 / λt) Σ_j α_j y_j K(x_j, x_i)
            let mut sum = 0.0;
            for j in 0..n {
                if alphas[j] > 0.0 {
                    sum += alphas[j] * y[j] * kernel.eval(&x[j], &x[i]);
                }
            }
            let decision = sum / (self.lambda * t as f64);
            if y[i] * decision < 1.0 {
                alphas[i] += 1.0;
            }
        }

        self.scale = 1.0 / (self.lambda * iterations as f64);
        self.kernel = Some(kernel);
        // Keep only the support vectors.
        let mut kept_alphas = Vec::new();
        let mut kept_x = Vec::new();
        let mut kept_y = Vec::new();
        for ((alpha, xi), yi) in alphas.into_iter().zip(x).zip(y) {
            if alpha > 0.0 {
                kept_alphas.push(alpha);
                kept_x.push(xi);
                kept_y.push(yi);
            }
        }
        self.alphas = kept_alphas;
        self.support_x = kept_x;
        self.support_y = kept_y;
        self.scaler = Some(scaler);
        Ok(())
    }

    fn is_fitted(&self) -> bool {
        self.scaler.is_some()
    }

    fn predict_proba(&self, features: &[f64]) -> f64 {
        if self.scaler.is_none() {
            return 0.5;
        }
        let margin = self.decision_function(features);
        1.0 / (1.0 + (-2.0 * margin).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band_data() -> Dataset {
        Dataset::new(
            (0..60).map(|i| vec![i as f64]).collect(),
            (0..60).map(|i| (20..40).contains(&i)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn rbf_learns_a_band() {
        let mut svm = KernelSvm::rbf().with_seed(1);
        svm.fit(&band_data()).unwrap();
        assert!(svm.predict(&[25.0]));
        assert!(svm.predict(&[35.0]));
        assert!(!svm.predict(&[5.0]));
        assert!(!svm.predict(&[55.0]));
        assert!(svm.support_vectors() > 0);
        assert!(matches!(svm.kernel(), Some(Kernel::Rbf { .. })));
    }

    #[test]
    fn linear_kernel_matches_linear_separability() {
        let data = Dataset::new(
            (0..40).map(|i| vec![i as f64]).collect(),
            (0..40).map(|i| i >= 20).collect(),
        )
        .unwrap();
        let mut svm = KernelSvm::with_kernel(Kernel::Linear).with_seed(2);
        svm.fit(&data).unwrap();
        assert!(svm.predict(&[39.0]));
        assert!(!svm.predict(&[0.0]));
    }

    #[test]
    fn polynomial_kernel_learns_xor() {
        let xor = Dataset::new(
            vec![
                vec![-1.0, -1.0],
                vec![-1.0, 1.0],
                vec![1.0, -1.0],
                vec![1.0, 1.0],
            ],
            vec![false, true, true, false],
        )
        .unwrap();
        let mut svm = KernelSvm::with_kernel(Kernel::Polynomial {
            degree: 2,
            offset: 1.0,
        })
        .with_epochs(200)
        .with_seed(3);
        svm.fit(&xor).unwrap();
        assert!(svm.predict(&[-1.0, 1.0]));
        assert!(svm.predict(&[1.0, -1.0]));
        assert!(!svm.predict(&[1.0, 1.0]));
        assert!(!svm.predict(&[-1.0, -1.0]));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = KernelSvm::rbf().with_seed(9);
        let mut b = KernelSvm::rbf().with_seed(9);
        a.fit(&band_data()).unwrap();
        b.fit(&band_data()).unwrap();
        assert_eq!(a.decision_function(&[23.0]), b.decision_function(&[23.0]));
    }

    #[test]
    fn gamma_heuristic_is_positive_and_finite() {
        let x: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * 3 % 17) as f64])
            .collect();
        let g = KernelSvm::heuristic_gamma(&x, 0);
        assert!(g.is_finite() && g > 0.0);
        // Degenerate identical points fall back to 1.0.
        let same = vec![vec![2.0, 2.0]; 10];
        assert_eq!(KernelSvm::heuristic_gamma(&same, 0), 1.0);
    }

    #[test]
    fn probability_contract() {
        let mut svm = KernelSvm::rbf().with_seed(4);
        svm.fit(&band_data()).unwrap();
        for probe in [-10.0, 0.0, 30.0, 70.0] {
            let p = svm.predict_proba(&[probe]);
            assert!((0.0..=1.0).contains(&p));
        }
        assert_eq!(KernelSvm::rbf().predict_proba(&[1.0]), 0.5);
    }
}

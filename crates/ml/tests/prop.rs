//! Property-based tests for the ML library.

use proptest::prelude::*;

use smartflux_ml::crossval::stratified_folds;
use smartflux_ml::metrics::{accuracy, precision, recall, roc_auc, ConfusionMatrix};
use smartflux_ml::{Classifier, Dataset, DecisionTree, RandomForest, StandardScaler};

fn labels() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 4..60)
}

proptest! {
    /// All ratio metrics stay within [0, 1].
    #[test]
    fn metrics_are_ratios(actual in labels(), flips in prop::collection::vec(any::<bool>(), 4..60)) {
        let n = actual.len().min(flips.len());
        let actual = &actual[..n];
        let predicted: Vec<bool> = actual.iter().zip(&flips[..n]).map(|(&a, &f)| a ^ f).collect();
        for v in [
            accuracy(actual, &predicted),
            precision(actual, &predicted),
            recall(actual, &predicted),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "metric {v} out of range");
        }
    }

    /// Confusion-matrix counts always total the number of instances.
    #[test]
    fn confusion_counts_total(actual in labels(), flips in prop::collection::vec(any::<bool>(), 4..60)) {
        let n = actual.len().min(flips.len());
        let actual = &actual[..n];
        let predicted: Vec<bool> = actual.iter().zip(&flips[..n]).map(|(&a, &f)| a ^ f).collect();
        let cm = ConfusionMatrix::from_pairs(actual, &predicted);
        prop_assert_eq!(cm.total(), n);
    }

    /// Negating scores flips the AUC around 0.5.
    #[test]
    fn auc_negation_symmetry(
        actual in labels(),
        scores in prop::collection::vec(-100.0f64..100.0, 4..60),
    ) {
        let n = actual.len().min(scores.len());
        let actual = &actual[..n];
        let scores = &scores[..n];
        let neg: Vec<f64> = scores.iter().map(|s| -s).collect();
        let a = roc_auc(actual, scores);
        let b = roc_auc(actual, &neg);
        prop_assert!((a + b - 1.0).abs() < 1e-9 || (a == 0.5 && b == 0.5));
    }

    /// AUC is invariant under any strictly monotone transform of scores.
    #[test]
    fn auc_monotone_invariance(
        actual in labels(),
        scores in prop::collection::vec(-10.0f64..10.0, 4..60),
    ) {
        let n = actual.len().min(scores.len());
        let actual = &actual[..n];
        let scores = &scores[..n];
        let transformed: Vec<f64> = scores.iter().map(|s| s.exp()).collect();
        prop_assert!((roc_auc(actual, scores) - roc_auc(actual, &transformed)).abs() < 1e-9);
    }

    /// Stratified folds partition the instances exactly once.
    #[test]
    fn folds_partition(labels in prop::collection::vec(any::<bool>(), 10..80), k in 2usize..6) {
        let folds = stratified_folds(&labels, k, 7);
        let mut seen: Vec<usize> = folds.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..labels.len()).collect();
        prop_assert_eq!(seen, expected);
    }

    /// Scaler transform is exactly invertible from its stored statistics.
    #[test]
    fn scaler_is_affine(rows in prop::collection::vec(
        prop::collection::vec(-1e4f64..1e4, 3), 2..30,
    )) {
        let scaler = StandardScaler::fit(&rows);
        // Affine check: t(a) - t(b) is proportional to a - b per column.
        let a = &rows[0];
        let b = &rows[rows.len() - 1];
        let ta = scaler.transform(a);
        let tb = scaler.transform(b);
        for j in 0..3 {
            let lhs = ta[j] - tb[j];
            // Reconstruct the scale from another pair of points.
            let probe_hi = scaler.transform(&[a[0] + 1.0, a[1] + 1.0, a[2] + 1.0]);
            let scale = probe_hi[j] - ta[j];
            prop_assert!((lhs - (a[j] - b[j]) * scale).abs() < 1e-6);
        }
    }

    /// Tree and forest probabilities always stay within [0, 1] and their
    /// hard predictions agree with thresholding.
    #[test]
    fn classifier_probability_contract(
        xs in prop::collection::vec(-100.0f64..100.0, 8..40),
        threshold in -50.0f64..50.0,
    ) {
        let y: Vec<bool> = xs.iter().map(|&x| x > threshold).collect();
        // Skip degenerate single-class datasets — they are legal but make
        // the prediction check vacuous.
        let data = Dataset::new(xs.iter().map(|&x| vec![x]).collect(), y).unwrap();

        let mut tree = DecisionTree::new();
        tree.fit(&data).unwrap();
        let mut forest = RandomForest::new(7).with_seed(1);
        forest.fit(&data).unwrap();

        for probe in [-150.0, -1.0, 0.0, 1.0, 150.0, threshold] {
            let pt = tree.predict_proba(&[probe]);
            let pf = forest.predict_proba(&[probe]);
            prop_assert!((0.0..=1.0).contains(&pt));
            prop_assert!((0.0..=1.0).contains(&pf));
            prop_assert_eq!(tree.predict(&[probe]), pt >= 0.5);
        }
    }

    /// A forest trained on a separable threshold classifies far-away points
    /// correctly.
    #[test]
    fn forest_learns_clear_margins(threshold in -20.0f64..20.0) {
        let xs: Vec<f64> = (-40..40).map(f64::from).collect();
        let y: Vec<bool> = xs.iter().map(|&x| x > threshold).collect();
        let data = Dataset::new(xs.iter().map(|&x| vec![x]).collect(), y).unwrap();
        let mut forest = RandomForest::new(20).with_seed(3);
        forest.fit(&data).unwrap();
        prop_assert!(forest.predict(&[threshold + 15.0]));
        prop_assert!(!forest.predict(&[threshold - 15.0]));
    }
}

//! Seeded parity suite for the flattened forest kernel.
//!
//! The flat struct-of-arrays arena, the batched predict path, and the
//! parallel trainer are pure performance work: every one of them must be
//! bit-identical to the original pointer-walking, sequential
//! implementation. These tests pin that equivalence with `==` on `f64`
//! (never a tolerance) across a grid of seeds, ensemble sizes, and
//! depths, including the `SFRF`/`SFML` codec round-trips the recovery
//! path relies on.

use smartflux_ml::{
    BinaryRelevance, Classifier, Dataset, MultiLabelDataset, RandomForest, TrainParallelism,
};

/// Deterministic multi-feature dataset with interacting signal, noise,
/// and duplicated values (so trees exercise tie handling).
fn dataset(n: usize, seed: u64) -> Dataset {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        // splitmix64
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let a = (next() % 1000) as f64 / 100.0;
        let b = (next() % 100) as f64 / 10.0;
        let c = (next() % 7) as f64; // heavy duplication
        let d = (next() % 1000) as f64 / 250.0;
        let label = a + b * 0.5 > 7.5 || (c >= 4.0 && d > 2.0);
        x.push(vec![a, b, c, d]);
        y.push(label);
    }
    Dataset::new(x, y).expect("synthetic dataset is well-formed")
}

fn probes(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            vec![
                (t * 0.37) % 10.0,
                (t * 0.11) % 10.0,
                (t % 7.0),
                (t * 0.53) % 4.0,
            ]
        })
        .collect()
}

#[test]
fn flat_arena_is_bit_identical_to_pointer_walk() {
    for seed in [0_u64, 1, 42, 0xDEAD_BEEF] {
        for (n_trees, depth) in [(1, 1), (5, 4), (20, 8), (50, 16)] {
            let mut rf = RandomForest::new(n_trees)
                .with_max_depth(depth)
                .with_seed(seed);
            rf.fit(&dataset(300, seed)).expect("fit");
            for probe in probes(200) {
                let flat = rf.predict_proba(&probe);
                let reference = rf.predict_proba_reference(&probe);
                assert!(
                    flat == reference,
                    "seed={seed} trees={n_trees} depth={depth}: flat {flat} != ref {reference}"
                );
            }
        }
    }
}

#[test]
fn batched_predictions_are_bit_identical_to_per_sample() {
    for seed in [3_u64, 99] {
        let mut rf = RandomForest::new(30).with_max_depth(12).with_seed(seed);
        rf.fit(&dataset(400, seed)).expect("fit");
        let batch = probes(500);
        let batched = rf.predict_batch(&batch).expect("fitted");
        assert_eq!(batched.len(), batch.len());
        for (probe, p) in batch.iter().zip(&batched) {
            assert!(rf.predict_proba(probe) == *p, "seed={seed}");
            assert!(rf.predict_proba_reference(probe) == *p, "seed={seed}");
        }
    }
}

#[test]
fn sfrf_round_trip_rebuilds_the_same_flat_arena() {
    let mut rf = RandomForest::new(25)
        .with_max_depth(10)
        .with_threshold(0.3)
        .with_seed(17);
    rf.fit(&dataset(350, 17)).expect("fit");
    let bytes = rf.to_bytes().expect("fitted");
    let restored = RandomForest::from_bytes(&bytes).expect("decode");

    // The decoded forest predicts through the same arena contents, not
    // merely equivalent values: identical node arrays, identical roots.
    assert_eq!(restored.arena(), rf.arena());
    assert_eq!(restored.arena().n_nodes(), rf.arena().n_nodes());

    // And the batched path over the decoded forest matches the original
    // per-sample path bit-for-bit.
    let batch = probes(300);
    let original = rf.predict_batch(&batch).expect("fitted");
    let decoded = restored.predict_batch(&batch).expect("fitted");
    assert_eq!(original, decoded);

    // Text codec too (decimal round-trip is exact for these values or
    // not — so compare through the stricter arena equality only after
    // re-encoding to bytes agrees).
    let text = rf.to_text().expect("fitted");
    let from_text = RandomForest::from_text(&text).expect("decode");
    assert_eq!(from_text.arena().n_trees(), rf.arena().n_trees());
}

#[test]
fn sfml_round_trip_rebuilds_per_label_arenas() {
    let data = MultiLabelDataset::new(
        (0..120)
            .map(|i| vec![(i % 12) as f64, (i / 12) as f64, (i % 5) as f64])
            .collect(),
        (0..120)
            .map(|i| vec![(i % 12) >= 6, (i / 12) >= 5, i % 5 == 0])
            .collect(),
    )
    .expect("well-formed");
    let mut ml = BinaryRelevance::new(RandomForest::new(11).with_seed(5));
    ml.fit(&data).expect("fit");
    assert!(ml.is_fitted());

    let bytes = ml.to_bytes().expect("fitted");
    let restored = BinaryRelevance::<RandomForest>::from_bytes(&bytes).expect("decode");
    assert!(restored.is_fitted());
    for j in 0..3 {
        let a = ml.label_model(j).expect("label");
        let b = restored.label_model(j).expect("label");
        assert_eq!(a.arena(), b.arena(), "label {j}");
        assert!(!b.arena().is_empty(), "label {j}");
    }
    for probe in probes(100) {
        let probe3 = &probe[..3];
        assert_eq!(ml.predict_proba(probe3), restored.predict_proba(probe3));
    }
}

#[test]
fn train_parallelism_is_tree_for_tree_identical() {
    for seed in [2_u64, 77] {
        for workers in [2_usize, 3, 8, 64] {
            let mut baseline = RandomForest::new(13)
                .with_max_depth(9)
                .with_seed(seed)
                .with_parallelism(TrainParallelism::Fixed(1));
            let mut parallel = RandomForest::new(13)
                .with_max_depth(9)
                .with_seed(seed)
                .with_parallelism(TrainParallelism::Fixed(workers));
            let data = dataset(250, seed);
            baseline.fit(&data).expect("fit");
            parallel.fit(&data).expect("fit");
            // Byte-level identity of the serialised forests proves the
            // ensembles match node-for-node, and the arenas must agree
            // because they are derived from the trees.
            assert_eq!(
                baseline.to_bytes(),
                parallel.to_bytes(),
                "seed={seed} workers={workers}"
            );
            assert_eq!(baseline.arena(), parallel.arena());
        }
    }
}

#[test]
fn auto_parallelism_matches_sequential_training() {
    let mut baseline = RandomForest::new(10)
        .with_seed(4)
        .with_parallelism(TrainParallelism::Fixed(1));
    let mut auto = RandomForest::new(10)
        .with_seed(4)
        .with_parallelism(TrainParallelism::Auto);
    let data = dataset(200, 4);
    baseline.fit(&data).expect("fit");
    auto.fit(&data).expect("fit");
    assert_eq!(baseline.to_bytes(), auto.to_bytes());
}

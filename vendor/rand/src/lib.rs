//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! Vendored because the build environment has no crates.io access. Provides
//! the exact subset this workspace uses: [`Rng::random`],
//! [`Rng::random_range`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! and [`seq::SliceRandom::shuffle`]. The generator is xoshiro256**
//! seeded through SplitMix64 — deterministic for a given seed, which is
//! all the SmartFlux reproduction requires of it.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The raw entropy source: a 64-bit generator.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produces the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait Random: Sized {
    /// Samples a value from the type's standard distribution.
    fn random_from(rng: &mut impl RngCore) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random_from(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random_from(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random_from(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

/// Maps a raw 64-bit draw onto `[0, span)` without modulo bias
/// (Lemire's multiply-shift; the tiny residual bias is irrelevant here).
fn bounded(rng: &mut impl RngCore, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Random>::random_from(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Random>::random_from(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the type's standard distribution
    /// (`[0, 1)` for floats).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (deterministic; not cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into four words.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle(&mut self, rng: &mut impl RngCore);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut impl RngCore) {
            for i in (1..self.len()).rev() {
                let j = super::bounded(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v = rng.random_range(0usize..6);
            seen[v] = true;
            let f = rng.random_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.random_range(-3i32..=3);
            assert!((-3..=3).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Vendored because the build environment has no crates.io access. The
//! statistical machinery is replaced by a simple calibrated loop: each
//! benchmark is warmed up, the iteration count is scaled so a sample takes
//! a measurable amount of wall time, and the median ns/iter over a handful
//! of samples is printed. Good enough to compare orders of magnitude and
//! keep `cargo bench` working; not a substitute for real criterion when
//! publishing numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id like `scan/1000` from a function name and parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing state handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the calibrated number of iterations, timing the
    /// whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

const SAMPLES: usize = 7;
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Calibrates an iteration count, takes [`SAMPLES`] timed samples, and
/// prints the median ns/iter for `id`.
fn run_bench(id: &str, mut routine: impl FnMut(&mut Bencher)) {
    // Warm-up and calibration: grow the batch until it takes long enough
    // for the clock to resolve it meaningfully.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (TARGET_SAMPLE.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(grow);
    }

    let mut per_iter: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            b.elapsed.as_nanos() / u128::from(iters.max(1))
        })
        .collect();
    per_iter.sort_unstable();
    println!(
        "bench {id:<50} {:>12} ns/iter ({} iters/sample)",
        per_iter[SAMPLES / 2],
        iters
    );
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility with generated harness mains.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into one group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        assert!(b.elapsed > Duration::ZERO || b.iters == 100);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(10)
            .bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| b.iter(|| n * n));
        group.finish();
    }

    #[test]
    fn id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("scan", 1000).to_string(), "scan/1000");
    }
}

//! The [`Strategy`] trait and combinators for the offline proptest stand-in.
//!
//! Generation-only: `generate` draws one value from a deterministic RNG.
//! Shrinking is intentionally absent — failures report the case index
//! instead, which is enough to reproduce them under a fixed seed.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a self-referential strategy: starting from `self` as the
    /// leaf, applies `recurse` up to `depth` times, choosing uniformly
    /// between shallower and deeper alternatives at generation time.
    /// (`desired_size` and `expected_branch_size` are accepted for API
    /// compatibility; this stand-in bounds recursion by `depth` alone.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(strat.clone()).boxed();
            strat = Union::new(vec![strat, deeper]).boxed();
        }
        strat
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy (`prop_oneof!` arms,
/// `prop_recursive` inner handles).
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among same-valued strategies (backs `prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5),
);

/// String literals act as regex-ish strategies. This stand-in supports
/// the `.{lo,hi}` form (any chars, bounded length) used by the test
/// suite; any other pattern generates itself literally.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_dot_repeat(self) {
            Some((lo, hi)) => {
                let len = rng.random_range(lo..=hi);
                (0..len).map(|_| random_char(rng)).collect()
            }
            None => (*self).to_owned(),
        }
    }
}

/// Parses `.{lo,hi}` into its inclusive length bounds.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    (lo <= hi).then_some((lo, hi))
}

/// Character pool for `.` — mostly printable ASCII, salted with the
/// syntax characters and non-ASCII points most likely to trip parsers.
fn random_char(rng: &mut TestRng) -> char {
    const SPICE: &[char] = &[
        '<', '>', '&', '"', '\'', '/', '\\', '\n', '\t', 'é', 'λ', '→', '𝕊', '\u{0}',
    ];
    if rng.random_range(0..4usize) == 0 {
        SPICE[rng.random_range(0..SPICE.len())]
    } else {
        char::from(rng.random_range(0x20u8..0x7F))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn just_and_map_compose() {
        let strat = Just(21u32).prop_map(|v| v * 2);
        assert_eq!(strat.generate(&mut case_rng(0)), 42);
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let strat = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0u8..10, n).prop_map(move |v| (n, v)));
        let mut rng = case_rng(1);
        for _ in 0..50 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn dot_repeat_parser_accepts_only_the_supported_form() {
        assert_eq!(parse_dot_repeat(".{0,200}"), Some((0, 200)));
        assert_eq!(parse_dot_repeat(".{3,3}"), Some((3, 3)));
        assert_eq!(parse_dot_repeat("abc"), None);
        assert_eq!(parse_dot_repeat(".{5,1}"), None);
    }
}

//! Offline stand-in for the `proptest` crate (API subset).
//!
//! Vendored because the build environment has no crates.io access. It keeps
//! proptest's surface — `proptest!`, `prop_assert!*`, [`Strategy`] with
//! `prop_map`/`prop_flat_map`/`prop_recursive`, `Just`, `prop_oneof!`,
//! `prop::collection::vec`, `proptest::option::of`, `any::<T>()`, and
//! ranges / tuples / string patterns as strategies — but swaps the engine
//! for straightforward seeded random generation: each test body runs for a
//! fixed number of cases (default 32, override with `PROPTEST_CASES`) with
//! deterministic per-case seeds. Failing cases are not shrunk; the panic
//! message carries the case index so a failure is still reproducible.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod test_runner {
    //! Deterministic RNG plumbing used by the `proptest!` macro expansion.

    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Number of cases each property runs for (env-overridable).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32)
    }

    /// Builds the deterministic RNG for one case of one property.
    pub fn case_rng(case: u64) -> TestRng {
        TestRng::seed_from_u64(0x5337_F10C_u64.wrapping_mul(case.wrapping_add(1)))
    }
}

/// `prop::collection` — strategies for containers.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::option` — strategies for `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `None` or `Some(inner)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.random::<bool>() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Samples an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random::<bool>()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random::<u64>() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random::<u32>()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random::<u64>()
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random::<u32>() as i32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Bounded arbitrary floats: plenty for property tests, and
            // avoids NaN/inf poisoning assertions that real proptest's
            // default float strategy also avoids by default.
            rng.random_range(-1e9..1e9)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// Strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The glob-import surface test files use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Uniform choice between strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body for many seeded random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __proptest_case in 0..$crate::test_runner::case_count() {
                    let mut __proptest_rng = $crate::test_runner::case_rng(__proptest_case);
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    let run = || -> () { $body };
                    if let Err(panic) = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest case {__proptest_case} failed (set PROPTEST_CASES to adjust case count)"
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_tuples_and_vec_compose() {
        let strat = prop::collection::vec((0u8..6, -1.0f64..1.0), 3..10);
        let mut rng = case_rng(0);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((3..10).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 6);
                assert!((-1.0..1.0).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_and_recursive_generate() {
        let leaf = prop_oneof![Just(1u32), Just(2u32), 10u32..20];
        let nested = leaf.prop_recursive(3, 24, 4, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        });
        let mut rng = case_rng(1);
        for _ in 0..100 {
            let v = nested.generate(&mut rng);
            assert!(v >= 1, "compositions of positive leaves stay positive");
        }
    }

    #[test]
    fn string_pattern_respects_length_bounds() {
        let strat = ".{0,16}";
        let mut rng = case_rng(2);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(s.chars().count() <= 16);
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let strat = crate::option::of(0.0f64..=1.0);
        let mut rng = case_rng(3);
        let values: Vec<_> = (0..100).map(|_| strat.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().any(Option::is_none));
    }

    proptest! {
        /// The macro itself: bindings, tuple patterns, and multiple args.
        #[test]
        fn macro_smoke((a, b) in (0usize..10, 0usize..10), flag in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(usize::from(flag) <= 1);
        }
    }
}

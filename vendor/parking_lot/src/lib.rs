//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the tiny subset of the `parking_lot` API it
//! uses, implemented over `std::sync` primitives. Poisoning is ignored
//! (matching `parking_lot` semantics): a panicked holder does not poison
//! the lock for later users.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s panic-safe semantics.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-safe semantics.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                f.debug_tuple("RwLock").field(&&*p.into_inner()).finish()
            }
            Err(std::sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 9;
        assert_eq!(*m.lock(), 9);
    }
}

//! Offline stand-in for the `crossbeam` crate.
//!
//! Vendored because the build environment has no crates.io access; only
//! the `channel` subset this workspace uses is provided, implemented over
//! `std::sync::mpsc`.

#![forbid(unsafe_code)]

/// Multi-producer channels (the `crossbeam::channel` subset in use).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders were dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => f.write_str("receiving on a disconnected channel"),
            }
        }
    }

    /// The sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders were dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on a disconnected channel")
                }
            }
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Receives a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receives a message, blocking until one arrives or all senders
        /// are dropped.
        pub fn recv(&self) -> Result<T, TryRecvError> {
            self.inner.recv().map_err(|_| TryRecvError::Disconnected)
        }

        /// Receives a message, blocking at most `timeout` for one to
        /// arrive.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_try_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn dropped_receiver_fails_send() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn recv_timeout_times_out_and_delivers() {
            use std::time::Duration;
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn dropped_senders_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}

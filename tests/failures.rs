//! Integration: failure injection — failing steps, aborted waves, and
//! recovery semantics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use smartflux::{EngineConfig, SmartFluxSession};
use smartflux_datastore::{ContainerRef, DataStore, Value};
use smartflux_wms::{
    FnStep, GraphBuilder, Scheduler, StepContext, StepError, SynchronousPolicy, Workflow,
};

/// A two-step workflow whose second step fails on the given waves.
fn flaky_workflow(store: &DataStore, fail_on: &'static [u64]) -> Workflow {
    store
        .ensure_container(&ContainerRef::family("t", "f"))
        .expect("fresh store");
    let mut g = GraphBuilder::new("flaky");
    let src = g.add_step("src");
    let flaky = g.add_step("flaky");
    g.add_edge(src, flaky).expect("valid edge");
    let mut wf = Workflow::new(g.build().expect("DAG"));
    wf.bind(
        src,
        FnStep::new(|ctx: &StepContext| {
            ctx.put("t", "f", "src", "v", Value::from(ctx.wave() as f64))?;
            Ok(())
        }),
    )
    .source()
    .writes(ContainerRef::family("t", "f"));
    wf.bind(
        flaky,
        FnStep::new(move |ctx: &StepContext| {
            if fail_on.contains(&ctx.wave()) {
                return Err(StepError::msg("injected failure"));
            }
            ctx.put("t", "f", "flaky", "v", Value::from(ctx.wave() as f64))?;
            Ok(())
        }),
    )
    .reads(ContainerRef::family("t", "f"))
    .writes(ContainerRef::family("t", "f"))
    .error_bound(0.1);
    wf
}

#[test]
fn failing_step_reports_wave_and_step() {
    let store = DataStore::new();
    let wf = flaky_workflow(&store, &[2]);
    let mut sched = Scheduler::new(wf, store, Box::new(SynchronousPolicy));
    sched.run_wave().expect("wave 1 is clean");
    let err = sched.run_wave().expect_err("wave 2 fails");
    let msg = err.to_string();
    assert!(msg.contains("flaky"), "{msg}");
    assert!(msg.contains("wave 2"), "{msg}");
    assert!(msg.contains("injected failure"), "{msg}");
}

#[test]
fn scheduler_recovers_after_a_failed_wave() {
    let store = DataStore::new();
    let wf = flaky_workflow(&store, &[2]);
    let mut sched = Scheduler::new(wf, store.clone(), Box::new(SynchronousPolicy));
    sched.run_wave().expect("wave 1");
    assert!(sched.run_wave().is_err());
    // The failed wave consumed its number; processing continues at wave 3.
    let outcome = sched.run_wave().expect("wave 3 is clean");
    assert_eq!(outcome.wave, 3);
    assert_eq!(
        store.get("t", "f", "flaky", "v").expect("family exists"),
        Some(Value::from(3.0))
    );
    // Executions of the failed attempt were not recorded for the failing step.
    let flaky_id = sched.workflow().graph().step_id("flaky").expect("exists");
    assert_eq!(sched.stats().executions(flaky_id), 2); // waves 1 and 3
}

#[test]
fn failure_aborts_remaining_steps_of_the_wave() {
    let store = DataStore::new();
    store
        .ensure_container(&ContainerRef::family("t", "f"))
        .expect("fresh store");
    let mut g = GraphBuilder::new("abort");
    let a = g.add_step("a");
    let boom = g.add_step("boom");
    let c = g.add_step("c");
    g.add_chain(&[a, boom, c]).expect("valid chain");
    let mut wf = Workflow::new(g.build().expect("DAG"));
    let c_runs = Arc::new(AtomicU64::new(0));
    let c_runs2 = Arc::clone(&c_runs);
    wf.bind(a, FnStep::new(|_: &StepContext| Ok(()))).source();
    wf.bind(
        boom,
        FnStep::new(|_: &StepContext| Err(StepError::msg("boom"))),
    );
    wf.bind(
        c,
        FnStep::new(move |_: &StepContext| {
            c_runs2.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }),
    );
    let mut sched = Scheduler::new(wf, store, Box::new(SynchronousPolicy));
    assert!(sched.run_wave().is_err());
    assert_eq!(
        c_runs.load(Ordering::SeqCst),
        0,
        "steps after the failure must not run"
    );
}

#[test]
fn smartflux_session_surfaces_training_phase_failures() {
    let store = DataStore::new();
    let wf = flaky_workflow(&store, &[3]);
    let config = EngineConfig::new()
        .with_training_waves(10)
        .with_quality_gates(0.0, 0.0);
    let mut session = SmartFluxSession::new(wf, store, config).expect("bounded steps exist");
    session.run_wave().expect("wave 1");
    session.run_wave().expect("wave 2");
    let err = session.run_wave().expect_err("wave 3 fails");
    assert!(err.to_string().contains("injected failure"));
    // The session remains usable afterwards.
    session.run_wave().expect("wave 4");
}

#[test]
fn store_level_errors_become_step_failures() {
    let store = DataStore::new();
    let mut g = GraphBuilder::new("bad-table");
    let a = g.add_step("a");
    let mut wf = Workflow::new(g.build().expect("DAG"));
    wf.bind(
        a,
        FnStep::new(|ctx: &StepContext| {
            // The table was never created.
            ctx.put("ghost", "f", "r", "q", Value::from(1.0))?;
            Ok(())
        }),
    )
    .source();
    let mut sched = Scheduler::new(wf, store, Box::new(SynchronousPolicy));
    let err = sched.run_wave().expect_err("missing table fails the step");
    assert!(err.to_string().contains("data store"), "{err}");
}

//! Integration: the full SmartFlux life-cycle — training phase, test phase,
//! application phase — over the AQHI workload.

use smartflux::eval::WorkloadFactory;
use smartflux::{EngineConfig, ImpactCombiner, ModelKind, Phase, QodSpec, SmartFluxSession};
use smartflux_datastore::DataStore;
use smartflux_workloads::aqhi::{AqhiConfig, AqhiFactory};

fn small_factory(bound: f64) -> AqhiFactory {
    AqhiFactory {
        config: AqhiConfig {
            grid: 4,
            zone_size: 2,
            bound,
            ..AqhiConfig::default()
        },
    }
}

fn session(bound: f64, training_waves: usize) -> SmartFluxSession {
    let factory = small_factory(bound);
    let store = DataStore::new();
    let workflow = factory.build(&store);
    let spec = QodSpec::new().with_combiner(ImpactCombiner::Max);
    let config = EngineConfig::new()
        .with_training_waves(training_waves)
        .with_model(ModelKind::RandomForest {
            trees: 30,
            max_depth: 10,
            threshold: 0.4,
        })
        .with_quality_gates(0.0, 0.0)
        .with_default_spec(spec)
        .with_seed(5);
    SmartFluxSession::new(workflow, store, config).expect("aqhi declares QoD steps")
}

#[test]
fn training_collects_knowledge_and_builds_a_model() {
    let mut s = session(0.10, 96);
    assert!(matches!(s.phase(), Phase::Training { .. }));
    let waves = s.run_training().expect("training succeeds");
    assert!(waves >= 96);
    assert_eq!(s.phase(), Phase::Application);

    let kb = s.knowledge_base();
    assert_eq!(kb.len() as u64, waves);
    assert_eq!(kb.step_names().len(), 5);
    // Labels must be informative: some steps execute sometimes, not never
    // and not always across the board.
    let rates: Vec<f64> = (0..5).map(|j| kb.positive_rate(j)).collect();
    assert!(
        rates.iter().any(|&r| r > 0.05 && r < 0.95),
        "degenerate label rates: {rates:?}"
    );
    let quality = s.predictor_quality().expect("model was built");
    assert!(quality.accuracy > 0.6, "accuracy {}", quality.accuracy);
}

#[test]
fn application_phase_skips_executions() {
    let mut s = session(0.10, 96);
    s.run_training().expect("training succeeds");
    s.run_waves(72).expect("application waves succeed");
    let stats = s.scheduler().stats();
    assert!(
        stats.total_skips() > 0,
        "adaptive phase should skip some executions"
    );
    // Diagnostics cover training + application waves.
    let diags = s.diagnostics();
    let app = diags.iter().filter(|d| !d.training).count();
    assert_eq!(app, 72);
}

#[test]
fn retraining_resets_the_knowledge_base() {
    let mut s = session(0.10, 48);
    s.run_training().expect("training succeeds");
    let first_len = s.knowledge_base().len();
    assert!(first_len >= 48);

    s.request_training(24);
    assert!(matches!(s.phase(), Phase::Training { .. }));
    s.run_training().expect("retraining succeeds");
    let second_len = s.knowledge_base().len();
    assert!(second_len >= 24 && second_len < first_len);
    assert_eq!(s.phase(), Phase::Application);
}

#[test]
fn knowledge_base_exports_csv() {
    let mut s = session(0.10, 48);
    s.run_training().expect("training succeeds");
    let csv = s.knowledge_base().to_csv();
    let mut lines = csv.lines();
    let header = lines.next().expect("has header");
    assert!(header.starts_with("wave,impact_"));
    assert!(header.contains("exec_index"));
    assert_eq!(lines.count(), s.knowledge_base().len());
}

#[test]
fn pretrained_knowledge_skips_the_training_phase() {
    // Collect a knowledge base the normal way…
    let mut donor = session(0.10, 96);
    donor.run_training().expect("training succeeds");
    let kb = donor.knowledge_base();
    let csv = kb.to_csv();

    // …ship it as CSV and boot a fresh deployment straight into the
    // application phase (§3.2 "Unless a training set is given beforehand").
    let restored = smartflux::KnowledgeBase::from_csv(&csv).expect("csv parses");
    assert_eq!(restored, kb);

    let factory = small_factory(0.10);
    let store = DataStore::new();
    let workflow = factory.build(&store);
    let spec = QodSpec::new().with_combiner(ImpactCombiner::Max);
    let config = EngineConfig::new()
        .with_model(ModelKind::RandomForest {
            trees: 30,
            max_depth: 10,
            threshold: 0.4,
        })
        .with_quality_gates(0.0, 0.0)
        .with_default_spec(spec)
        .with_initial_knowledge(restored)
        .with_seed(5);
    let mut s = SmartFluxSession::new(workflow, store, config).expect("valid config");
    assert_eq!(s.phase(), Phase::Application, "no synchronous phase needed");
    s.run_waves(24).expect("adaptive waves succeed");
    assert!(s.predictor_quality().is_some());
}

#[test]
fn mismatched_initial_knowledge_is_rejected() {
    let factory = small_factory(0.10);
    let store = DataStore::new();
    let workflow = factory.build(&store);
    let mut alien = smartflux::KnowledgeBase::new(vec!["other".into()]);
    for w in 0..16 {
        alien.append(w, vec![w as f64], vec![w % 2 == 0]).unwrap();
    }
    let config = EngineConfig::new().with_initial_knowledge(alien);
    let err = SmartFluxSession::new(workflow, store, config).unwrap_err();
    assert!(err.to_string().contains("per-step values"));
}

#[test]
fn periodic_retraining_reenters_the_training_phase() {
    let factory = small_factory(0.10);
    let store = DataStore::new();
    let workflow = factory.build(&store);
    let spec = QodSpec::new().with_combiner(ImpactCombiner::Max);
    let config = EngineConfig::new()
        .with_training_waves(24)
        .with_model(ModelKind::RandomForest {
            trees: 20,
            max_depth: 8,
            threshold: 0.4,
        })
        .with_quality_gates(0.0, 0.0)
        .with_default_spec(spec)
        .with_retraining_interval(12) // retrain every 12 application waves
        .with_seed(5);
    let mut s = SmartFluxSession::new(workflow, store, config).expect("valid config");
    s.run_training().expect("initial training succeeds");
    assert_eq!(s.phase(), Phase::Application);

    // Run past the retraining interval: the engine flips back to training
    // by itself and, after another full training window, returns to the
    // application phase with a fresh knowledge base.
    s.run_waves(12).expect("application waves succeed");
    assert!(
        matches!(s.phase(), Phase::Training { .. }),
        "schedule should have re-entered training"
    );
    s.run_training().expect("retraining succeeds");
    assert_eq!(s.phase(), Phase::Application);
    assert_eq!(s.knowledge_base().len(), 24, "fresh training log");
    // The cycle repeats.
    s.run_waves(12).expect("second application window");
    assert!(matches!(s.phase(), Phase::Training { .. }));
}

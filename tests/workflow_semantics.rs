//! Integration: paper §2 triggering semantics across the WMS, datastore and
//! core crates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use smartflux::{EngineConfig, SmartFluxSession};
use smartflux_datastore::{ContainerRef, DataStore, Value};
use smartflux_wms::{
    FnStep, GraphBuilder, Scheduler, StepContext, SynchronousPolicy, TriggerPolicy, Workflow,
};

/// Builds a two-branch workflow: source → {fast, slow} → join.
fn diamond(store: &DataStore) -> (Workflow, smartflux_wms::StepId, smartflux_wms::StepId) {
    for fam in ["src", "fast", "slow", "join"] {
        store
            .ensure_container(&ContainerRef::family("t", fam))
            .expect("fresh store");
    }
    let mut g = GraphBuilder::new("diamond");
    let source = g.add_step("source");
    let fast = g.add_step("fast");
    let slow = g.add_step("slow");
    let join = g.add_step("join");
    g.add_edge(source, fast).expect("valid");
    g.add_edge(source, slow).expect("valid");
    g.add_edge(fast, join).expect("valid");
    g.add_edge(slow, join).expect("valid");
    let mut wf = Workflow::new(g.build().expect("DAG"));

    wf.bind(
        source,
        FnStep::new(|ctx: &StepContext| {
            // A fast-moving and a slow-moving signal.
            let w = ctx.wave() as f64;
            ctx.put(
                "t",
                "src",
                "r",
                "fast",
                Value::from((w * 0.9).sin() * 50.0 + 100.0),
            )?;
            ctx.put("t", "src", "r", "slow", Value::from(100.0 + w * 0.01))?;
            Ok(())
        }),
    )
    .source()
    .writes(ContainerRef::family("t", "src"));
    wf.bind(
        fast,
        FnStep::new(|ctx: &StepContext| {
            let v = ctx.get_f64("t", "src", "r", "fast", 0.0)?;
            ctx.put("t", "fast", "r", "v", Value::from(v * 2.0))?;
            Ok(())
        }),
    )
    .reads(ContainerRef::column("t", "src", "fast"))
    .writes(ContainerRef::family("t", "fast"))
    .error_bound(0.05);
    wf.bind(
        slow,
        FnStep::new(|ctx: &StepContext| {
            let v = ctx.get_f64("t", "src", "r", "slow", 0.0)?;
            ctx.put("t", "slow", "r", "v", Value::from(v * 2.0))?;
            Ok(())
        }),
    )
    .reads(ContainerRef::column("t", "src", "slow"))
    .writes(ContainerRef::family("t", "slow"))
    .error_bound(0.05);
    wf.bind(
        join,
        FnStep::new(|ctx: &StepContext| {
            let a = ctx.get_f64("t", "fast", "r", "v", 0.0)?;
            let b = ctx.get_f64("t", "slow", "r", "v", 0.0)?;
            ctx.put("t", "join", "r", "v", Value::from(a + b))?;
            Ok(())
        }),
    )
    .reads(ContainerRef::family("t", "fast"))
    .reads(ContainerRef::family("t", "slow"))
    .writes(ContainerRef::family("t", "join"))
    .error_bound(0.05);
    (wf, fast, slow)
}

#[test]
fn adaptive_engine_discriminates_fast_from_slow_branches() {
    let store = DataStore::new();
    let (wf, fast, slow) = diamond(&store);
    let config = EngineConfig::new()
        .with_training_waves(120)
        .with_quality_gates(0.0, 0.0)
        .with_seed(2);
    let mut session = SmartFluxSession::new(wf, store, config).expect("bounded steps exist");
    session.run_training().expect("training succeeds");
    session.run_waves(80).expect("application succeeds");

    let stats = session.scheduler().stats();
    // The volatile branch must be recomputed much more often than the
    // near-constant one.
    assert!(
        stats.skips(slow) > stats.skips(fast),
        "slow skipped {} vs fast skipped {}",
        stats.skips(slow),
        stats.skips(fast)
    );
}

#[test]
fn skipped_steps_leave_last_output_available() {
    let store = DataStore::new();
    let (wf, _fast, _slow) = diamond(&store);

    /// Skips everything except sources.
    struct SkipAll;
    impl TriggerPolicy for SkipAll {
        fn should_trigger(
            &mut self,
            _wave: u64,
            _step: smartflux_wms::StepId,
            _wf: &Workflow,
        ) -> bool {
            false
        }
    }

    let mut sched = Scheduler::new(wf, store.clone(), Box::new(SynchronousPolicy));
    sched.run_waves(3).expect("warm-up succeeds");
    let before = store
        .snapshot(&ContainerRef::family("t", "join"))
        .expect("exists");
    sched.swap_policy(Box::new(SkipAll));
    sched.run_waves(5).expect("skipping waves succeed");
    let after = store
        .snapshot(&ContainerRef::family("t", "join"))
        .expect("exists");
    assert_eq!(before, after, "skipped outputs must remain untouched");
}

#[test]
fn observers_see_every_step_write() {
    let store = DataStore::new();
    let (wf, ..) = diamond(&store);
    let writes = Arc::new(AtomicU64::new(0));
    let w2 = Arc::clone(&writes);
    store.register_observer(Arc::new(move |_e: &smartflux_datastore::WriteEvent| {
        w2.fetch_add(1, Ordering::SeqCst);
    }));
    let mut sched = Scheduler::new(wf, store, Box::new(SynchronousPolicy));
    sched.run_waves(2).expect("waves succeed");
    // 2 waves × (2 source writes + 1 fast + 1 slow + 1 join).
    assert_eq!(writes.load(Ordering::SeqCst), 10);
}

#[test]
fn engine_requires_at_least_one_bounded_step() {
    let store = DataStore::new();
    store
        .ensure_container(&ContainerRef::family("t", "f"))
        .expect("fresh store");
    let mut g = GraphBuilder::new("plain");
    let only = g.add_step("only");
    let mut wf = Workflow::new(g.build().expect("DAG"));
    wf.bind(only, FnStep::new(|_: &StepContext| Ok(())))
        .source();
    let err = SmartFluxSession::new(wf, store, EngineConfig::new())
        .expect_err("no QoD steps should be rejected");
    assert!(err.to_string().contains("no QoD-managed steps"));
}

#[test]
fn parallel_adaptive_execution_matches_sequential() {
    // Two sessions over identical feeds: one runs waves sequentially, one
    // with level-parallel execution. Decisions are made sequentially in
    // both, and no same-level steps share written containers, so outcomes
    // and container state must agree exactly.
    let build = || {
        let store = DataStore::new();
        let (wf, ..) = diamond(&store);
        let config = EngineConfig::new()
            .with_training_waves(60)
            .with_quality_gates(0.0, 0.0)
            .with_seed(5);
        (
            SmartFluxSession::new(wf, store.clone(), config).expect("bounded steps exist"),
            store,
        )
    };
    let (mut seq, seq_store) = build();
    let (mut par, par_store) = build();
    seq.run_training().expect("training succeeds");
    while matches!(par.phase(), smartflux::Phase::Training { .. }) {
        par.run_wave_parallel().expect("parallel training wave");
    }
    for _ in 0..40 {
        let a = seq.run_wave().expect("sequential wave");
        let b = par.run_wave_parallel().expect("parallel wave");
        assert_eq!(a.wave, b.wave);
        let mut ae = a.executed.clone();
        let mut be = b.executed.clone();
        ae.sort_unstable();
        be.sort_unstable();
        assert_eq!(ae, be, "wave {} decisions diverged", a.wave);
    }
    for fam in ["fast", "slow", "join"] {
        let c = ContainerRef::family("t", fam);
        assert_eq!(
            seq_store.snapshot(&c).expect("exists"),
            par_store.snapshot(&c).expect("exists"),
            "{fam} containers diverged"
        );
    }
}

//! Integration: §2.1/§2.2 accumulation semantics — cancel vs accumulate —
//! observed through the engine's training-phase labels.

use smartflux::{AccumulationMode, EngineConfig, MetricKind, Phase, QodSpec, SmartFluxSession};
use smartflux_datastore::{ContainerRef, DataStore, Value};
use smartflux_wms::{FnStep, GraphBuilder, StepContext, Workflow};

/// A workflow whose source oscillates: the value returns to its baseline
/// every second wave, so cancel-mode errors collapse while accumulate-mode
/// errors keep growing.
fn oscillating_workflow(store: &DataStore, amplitude: f64) -> Workflow {
    let raw = ContainerRef::family("t", "raw");
    let out = ContainerRef::family("t", "out");
    store.ensure_container(&raw).expect("fresh store");
    store.ensure_container(&out).expect("fresh store");
    let mut g = GraphBuilder::new("oscillator");
    let feed = g.add_step("feed");
    let copy = g.add_step("copy");
    g.add_edge(feed, copy).expect("valid edge");
    let mut wf = Workflow::new(g.build().expect("DAG"));
    wf.bind(
        feed,
        FnStep::new(move |ctx: &StepContext| {
            // 100, 100+a, 100, 100+a, … an exact period-2 oscillation.
            let v = if ctx.wave().is_multiple_of(2) {
                100.0 + amplitude
            } else {
                100.0
            };
            ctx.put("t", "raw", "r", "v", Value::from(v))?;
            Ok(())
        }),
    )
    .source()
    .writes(raw.clone());
    wf.bind(
        copy,
        FnStep::new(|ctx: &StepContext| {
            let v = ctx.get_f64("t", "raw", "r", "v", 0.0)?;
            ctx.put("t", "out", "r", "v", Value::from(v))?;
            Ok(())
        }),
    )
    .reads(raw)
    .writes(out)
    .error_bound(0.05);
    wf
}

fn label_rate(mode: AccumulationMode, amplitude: f64) -> f64 {
    let store = DataStore::new();
    let wf = oscillating_workflow(&store, amplitude);
    let spec = QodSpec::new().with_mode(mode);
    let config = EngineConfig::new()
        .with_training_waves(60)
        .with_quality_gates(0.0, 0.0)
        .with_default_spec(spec)
        .with_seed(1);
    let mut session = SmartFluxSession::new(wf, store, config).expect("bounded step exists");
    session.run_training().expect("training succeeds");
    assert_eq!(session.phase(), Phase::Application);
    session.knowledge_base().positive_rate(0)
}

#[test]
fn cancel_mode_lets_oscillations_cancel() {
    // A 2% oscillation: each single wave's change is below the 5% bound,
    // and in cancel mode the value returns to the baseline so the error
    // never accumulates past it — the step rarely needs to execute.
    let rate = label_rate(AccumulationMode::Cancel, 2.0);
    assert!(rate < 0.2, "cancel-mode label rate {rate}");
}

#[test]
fn accumulate_mode_counts_every_change() {
    // The same 2% oscillation in accumulate mode: per-wave errors add up
    // (|+2| then |−2| …), crossing the 5% bound every few waves.
    let rate = label_rate(AccumulationMode::Accumulate, 2.0);
    assert!(rate > 0.3, "accumulate-mode label rate {rate}");
}

#[test]
fn both_modes_fire_on_large_changes() {
    // A 20% oscillation exceeds the bound on every wave in either mode.
    for mode in [AccumulationMode::Cancel, AccumulationMode::Accumulate] {
        let rate = label_rate(mode, 20.0);
        assert!(rate > 0.9, "{mode:?} label rate {rate}");
    }
}

#[test]
fn rmse_error_metric_works_through_the_engine() {
    // Eq. 4 scaled by the value range: the same oscillation measured with
    // RMSE/scale instead of the relative error.
    let store = DataStore::new();
    let wf = oscillating_workflow(&store, 10.0);
    let spec = QodSpec::new()
        .with_impact(MetricKind::RelativeImpact) // Eq. 2 features
        .with_error(MetricKind::Rmse { scale: 100.0 }); // Eq. 4, range-scaled
    let config = EngineConfig::new()
        .with_training_waves(40)
        .with_quality_gates(0.0, 0.0)
        .with_default_spec(spec)
        .with_seed(2);
    let mut session = SmartFluxSession::new(wf, store, config).expect("bounded step exists");
    session.run_training().expect("training succeeds");
    // RMSE of a ±10 swing over a 100 scale is 0.1 > 0.05: fires regularly.
    let rate = session.knowledge_base().positive_rate(0);
    assert!(rate > 0.4, "rmse label rate {rate}");
    // Eq. 2 impact features stay within [0, 1].
    for row in session.knowledge_base().rows() {
        assert!((0.0..=1.0).contains(&row.impacts[0]));
    }
}

//! Integration: the twin-run evaluation harness across trigger policies.

use smartflux::eval::{evaluate, EvalPolicy};
use smartflux::{EngineConfig, ImpactCombiner, MetricKind, ModelKind, QodSpec};
use smartflux_workloads::aqhi::{AqhiConfig, AqhiFactory};
use smartflux_workloads::lrb::{classify_qod_spec, LrbConfig, LrbFactory};

fn aqhi(bound: f64) -> AqhiFactory {
    AqhiFactory {
        config: AqhiConfig {
            grid: 4,
            zone_size: 2,
            bound,
            ..AqhiConfig::default()
        },
    }
}

fn lrb(bound: f64) -> LrbFactory {
    LrbFactory {
        config: LrbConfig {
            xways: 2,
            segments: 10,
            vehicles: 60,
            query_slots: 6,
            bound,
            ..LrbConfig::default()
        },
    }
}

fn smartflux_config() -> EngineConfig {
    let spec = QodSpec::new().with_combiner(ImpactCombiner::Max);
    EngineConfig::new()
        .with_training_waves(168)
        .with_model(ModelKind::RandomForest {
            trees: 30,
            max_depth: 10,
            threshold: 0.4,
        })
        .with_quality_gates(0.0, 0.0)
        .with_default_spec(spec)
        .with_seed(11)
}

#[test]
fn sync_policy_never_deviates() {
    let report = evaluate(&aqhi(0.05), EvalPolicy::Sync, 48, MetricKind::MeanRelative)
        .expect("evaluation succeeds");
    assert!(report.waves.iter().all(|w| w.measured_error == 0.0));
    assert_eq!(report.confidence.confidence(), 1.0);
    assert_eq!(report.normalized_executions(), 1.0);
}

#[test]
fn seq_policies_save_their_nominal_fraction() {
    for n in [2u64, 5] {
        let report = evaluate(
            &aqhi(0.05),
            EvalPolicy::EveryN { n },
            100,
            MetricKind::MeanRelative,
        )
        .expect("evaluation succeeds");
        let expected = 1.0 / n as f64;
        assert!(
            (report.normalized_executions() - expected).abs() < 0.05,
            "seq{n}: {}",
            report.normalized_executions()
        );
    }
}

#[test]
fn oracle_dominates_naive_policies_on_confidence() {
    let waves = 168;
    let oracle = evaluate(
        &aqhi(0.05),
        EvalPolicy::Oracle,
        waves,
        MetricKind::MeanRelative,
    )
    .expect("oracle run succeeds");
    let seq3 = evaluate(
        &aqhi(0.05),
        EvalPolicy::EveryN { n: 3 },
        waves,
        MetricKind::MeanRelative,
    )
    .expect("seq3 run succeeds");
    assert!(
        oracle.confidence.confidence() >= seq3.confidence.confidence(),
        "oracle {} vs seq3 {}",
        oracle.confidence.confidence(),
        seq3.confidence.confidence()
    );
    assert!(
        oracle.normalized_executions() < 1.0,
        "oracle should save something"
    );
}

#[test]
fn smartflux_saves_resources_with_bounded_error_on_aqhi() {
    // The full-size grid is exercised by the benchmark harness; a 6×6 grid
    // keeps this integration test quick while staying above the regime
    // where single zone flips dominate the index.
    let factory = AqhiFactory {
        config: AqhiConfig {
            grid: 6,
            zone_size: 2,
            bound: 0.10,
            ..AqhiConfig::default()
        },
    };
    let report = evaluate(
        &factory,
        EvalPolicy::SmartFlux(Box::new(smartflux_config())),
        168,
        MetricKind::MeanRelative,
    )
    .expect("smartflux run succeeds");
    assert!(
        report.normalized_executions() < 1.0,
        "no savings: {}",
        report.normalized_executions()
    );
    assert!(
        report.confidence.confidence() > 0.75,
        "confidence {}",
        report.confidence.confidence()
    );
}

#[test]
fn smartflux_beats_random_on_lrb_confidence() {
    let mut config = smartflux_config();
    config = config.with_step_spec("classify", classify_qod_spec());
    config.training_waves = 240;
    let waves = 120;
    let smart = evaluate(
        &lrb(0.05),
        EvalPolicy::SmartFlux(Box::new(config)),
        waves,
        MetricKind::MeanRelative,
    )
    .expect("smartflux run succeeds");
    let random = evaluate(
        &lrb(0.05),
        EvalPolicy::Random { seed: 3 },
        waves,
        MetricKind::MeanRelative,
    )
    .expect("random run succeeds");
    assert!(
        smart.confidence.confidence() >= random.confidence.confidence(),
        "smartflux {} vs random {}",
        smart.confidence.confidence(),
        random.confidence.confidence()
    );
}

#[test]
fn higher_bounds_do_not_cost_more_executions() {
    let strict = evaluate(
        &aqhi(0.05),
        EvalPolicy::Oracle,
        168,
        MetricKind::MeanRelative,
    )
    .expect("strict run succeeds");
    let loose = evaluate(
        &aqhi(0.20),
        EvalPolicy::Oracle,
        168,
        MetricKind::MeanRelative,
    )
    .expect("loose run succeeds");
    assert!(
        loose.normalized_executions() <= strict.normalized_executions() + 0.02,
        "loose {} vs strict {}",
        loose.normalized_executions(),
        strict.normalized_executions()
    );
}

#[test]
fn evaluation_is_deterministic() {
    let run = || {
        evaluate(
            &aqhi(0.10),
            EvalPolicy::SmartFlux(Box::new(smartflux_config())),
            48,
            MetricKind::MeanRelative,
        )
        .expect("run succeeds")
    };
    let a = run();
    let b = run();
    assert_eq!(a.waves, b.waves);
    assert_eq!(a.confidence.series(), b.confidence.series());
}

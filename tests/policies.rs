//! Integration: the twin-run evaluation harness across trigger policies,
//! plus a simulation-harness case pinning the QoD→SDF revert path under
//! crash recovery.

use smartflux::eval::{evaluate, EvalPolicy};
use smartflux::{EngineConfig, ImpactCombiner, MetricKind, ModelKind, QodSpec};
use smartflux_sim::{harness, oracles, Scenario};
use smartflux_workloads::aqhi::{AqhiConfig, AqhiFactory};
use smartflux_workloads::lrb::{classify_qod_spec, LrbConfig, LrbFactory};

fn aqhi(bound: f64) -> AqhiFactory {
    AqhiFactory {
        config: AqhiConfig {
            grid: 4,
            zone_size: 2,
            bound,
            ..AqhiConfig::default()
        },
    }
}

fn lrb(bound: f64) -> LrbFactory {
    LrbFactory {
        config: LrbConfig {
            xways: 2,
            segments: 10,
            vehicles: 60,
            query_slots: 6,
            bound,
            ..LrbConfig::default()
        },
    }
}

fn smartflux_config() -> EngineConfig {
    let spec = QodSpec::new().with_combiner(ImpactCombiner::Max);
    EngineConfig::new()
        .with_training_waves(168)
        .with_model(ModelKind::RandomForest {
            trees: 30,
            max_depth: 10,
            threshold: 0.4,
        })
        .with_quality_gates(0.0, 0.0)
        .with_default_spec(spec)
        .with_seed(11)
}

#[test]
fn sync_policy_never_deviates() {
    let report = evaluate(&aqhi(0.05), EvalPolicy::Sync, 48, MetricKind::MeanRelative)
        .expect("evaluation succeeds");
    assert!(report.waves.iter().all(|w| w.measured_error == 0.0));
    assert_eq!(report.confidence.confidence(), 1.0);
    assert_eq!(report.normalized_executions(), 1.0);
}

#[test]
fn seq_policies_save_their_nominal_fraction() {
    for n in [2u64, 5] {
        let report = evaluate(
            &aqhi(0.05),
            EvalPolicy::EveryN { n },
            100,
            MetricKind::MeanRelative,
        )
        .expect("evaluation succeeds");
        let expected = 1.0 / n as f64;
        assert!(
            (report.normalized_executions() - expected).abs() < 0.05,
            "seq{n}: {}",
            report.normalized_executions()
        );
    }
}

#[test]
fn oracle_dominates_naive_policies_on_confidence() {
    let waves = 168;
    let oracle = evaluate(
        &aqhi(0.05),
        EvalPolicy::Oracle,
        waves,
        MetricKind::MeanRelative,
    )
    .expect("oracle run succeeds");
    let seq3 = evaluate(
        &aqhi(0.05),
        EvalPolicy::EveryN { n: 3 },
        waves,
        MetricKind::MeanRelative,
    )
    .expect("seq3 run succeeds");
    assert!(
        oracle.confidence.confidence() >= seq3.confidence.confidence(),
        "oracle {} vs seq3 {}",
        oracle.confidence.confidence(),
        seq3.confidence.confidence()
    );
    assert!(
        oracle.normalized_executions() < 1.0,
        "oracle should save something"
    );
}

#[test]
fn smartflux_saves_resources_with_bounded_error_on_aqhi() {
    // The full-size grid is exercised by the benchmark harness; a 6×6 grid
    // keeps this integration test quick while staying above the regime
    // where single zone flips dominate the index.
    let factory = AqhiFactory {
        config: AqhiConfig {
            grid: 6,
            zone_size: 2,
            bound: 0.10,
            ..AqhiConfig::default()
        },
    };
    let report = evaluate(
        &factory,
        EvalPolicy::SmartFlux(Box::new(smartflux_config())),
        168,
        MetricKind::MeanRelative,
    )
    .expect("smartflux run succeeds");
    assert!(
        report.normalized_executions() < 1.0,
        "no savings: {}",
        report.normalized_executions()
    );
    assert!(
        report.confidence.confidence() > 0.75,
        "confidence {}",
        report.confidence.confidence()
    );
}

#[test]
fn smartflux_beats_random_on_lrb_confidence() {
    let mut config = smartflux_config();
    config = config.with_step_spec("classify", classify_qod_spec());
    config.training_waves = 240;
    let waves = 120;
    let smart = evaluate(
        &lrb(0.05),
        EvalPolicy::SmartFlux(Box::new(config)),
        waves,
        MetricKind::MeanRelative,
    )
    .expect("smartflux run succeeds");
    let random = evaluate(
        &lrb(0.05),
        EvalPolicy::Random { seed: 3 },
        waves,
        MetricKind::MeanRelative,
    )
    .expect("random run succeeds");
    assert!(
        smart.confidence.confidence() >= random.confidence.confidence(),
        "smartflux {} vs random {}",
        smart.confidence.confidence(),
        random.confidence.confidence()
    );
}

#[test]
fn higher_bounds_do_not_cost_more_executions() {
    let strict = evaluate(
        &aqhi(0.05),
        EvalPolicy::Oracle,
        168,
        MetricKind::MeanRelative,
    )
    .expect("strict run succeeds");
    let loose = evaluate(
        &aqhi(0.20),
        EvalPolicy::Oracle,
        168,
        MetricKind::MeanRelative,
    )
    .expect("loose run succeeds");
    assert!(
        loose.normalized_executions() <= strict.normalized_executions() + 0.02,
        "loose {} vs strict {}",
        loose.normalized_executions(),
        strict.normalized_executions()
    );
}

/// The QoD engine's graceful degradation — reverting a failed step (and
/// its downstream QoD steps) to synchronous SDF execution until each
/// completes a wave again — must survive a crash landing in the middle
/// of the revert window.
///
/// Driven end-to-end by the simulation harness from a pinned repro
/// line: source step 0 aborts its wave every 7th wave (`failures=1`
/// against a retry budget of 1 — sources always execute, so the fault
/// fires in the application phase too), training ends after wave 8, and
/// the session is crash-killed right after the wave-14 abort — so the
/// recovered session must re-establish the fallback from the replayed
/// abort before serving wave 15 synchronously.
#[test]
fn qod_to_sdf_revert_survives_crash_recovery() {
    const REPRO: &str = "sfsim1;seed=0x51af;steps=4;edges=0;waves=24;train=8;wpw=2;rows=3;\
                         drift=0.01;spike=0@0.0;shards=auto;retry=1;faults=ekw@0:7x1;\
                         dur=5+14;net=none";
    let pinned = REPRO.replace(char::is_whitespace, "");
    let scenario: Scenario = pinned.parse().expect("pinned repro must parse");
    assert_eq!(scenario.repro(), pinned, "pinned repro must round-trip");

    let dir = std::env::temp_dir().join(format!("sfsim-policies-{}", std::process::id()));
    let crash = harness::run_scenario(&scenario, &dir, "crash").expect("crash run succeeds");
    let reference =
        harness::run_uninterrupted(&scenario, &dir, "ref").expect("reference run succeeds");
    let _ = std::fs::remove_dir_all(&dir);

    // The session was killed once and recovered once.
    assert_eq!(crash.segments, 2, "expected exactly one crash/recover");
    // The scripted fault aborted a post-training wave (seen in both the
    // pre-crash segment and the recovery replay)...
    assert!(
        crash.aborted_waves.contains(&14),
        "wave 14 did not abort: {:?}",
        crash.aborted_waves
    );
    // ...and the engine reverted to synchronous execution afterwards.
    let fallbacks = crash.counters["engine.sdf_fallbacks"];
    assert!(fallbacks > 0, "no SDF fallback recorded after the abort");
    assert!(
        reference.counters["engine.sdf_fallbacks"] > 0,
        "the uninterrupted run must revert too"
    );
    // The wave after the post-crash abort forced execution (the revert
    // is visible in the decision trail, not just the counter).
    let after = crash
        .decisions
        .iter()
        .rev()
        .find(|d| d.wave == 15)
        .expect("wave 15 must be observed by the recovered segment");
    assert!(!after.training, "wave 15 must be in the application phase");
    assert!(
        after.decisions.iter().any(|&d| d),
        "the revert wave must execute at least one QoD step"
    );
    // Recovery mid-revert converges to the uninterrupted truth: same
    // final store, clock, and per-wave decisions.
    let violations = oracles::check_crash_equivalence(&crash, &reference);
    assert!(
        violations.is_empty(),
        "crash/recover diverged from the uninterrupted run:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn evaluation_is_deterministic() {
    let run = || {
        evaluate(
            &aqhi(0.10),
            EvalPolicy::SmartFlux(Box::new(smartflux_config())),
            48,
            MetricKind::MeanRelative,
        )
        .expect("run succeeds")
    };
    let a = run();
    let b = run();
    assert_eq!(a.waves, b.waves);
    assert_eq!(a.confidence.series(), b.confidence.series());
}
